#!/bin/sh
# Tier-1 verification, run exactly as CI would: the full test suite under
# both a single worker domain and four, proving parallel == sequential,
# then the end-to-end JSON manifest + span-trace validation (make validate).
set -eu
cd "$(dirname "$0")"
exec make check
