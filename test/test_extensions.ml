open Helpers

(* Tests for the extension modules: ablation hooks (flat schedules,
   restricted seeds, no call-following), the function inliner, and the
   multiprocessor tracer. *)

let small_ctx () = Lazy.force small_context

(* ------------------------------------------------------------------ *)
(* Schedule ablation hooks                                            *)
(* ------------------------------------------------------------------ *)

let test_schedule_flat () =
  check_int "one pass per seed" Service.count (List.length Schedule.flat);
  List.iter
    (fun (p : Schedule.pass) ->
      check_close 1e-12 "exhaustive exec" 0.0 p.Schedule.exec_thresh;
      check_close 1e-12 "exhaustive branch" 0.0 p.Schedule.branch_thresh)
    Schedule.flat;
  let services = List.map (fun p -> p.Schedule.service) Schedule.flat in
  check_int "all seeds present" Service.count
    (List.length (List.sort_uniq compare services))

let test_schedule_restrict () =
  let only_intr = Schedule.restrict [ Service.Interrupt ] Schedule.paper in
  check_bool "non-empty" true (only_intr <> []);
  List.iter
    (fun (p : Schedule.pass) ->
      check_bool "interrupt only" true (p.Schedule.service = Service.Interrupt))
    only_intr;
  check_int "nothing for empty restriction" 0
    (List.length (Schedule.restrict [] Schedule.paper))

let test_sequence_no_follow_calls () =
  let lc = loop_call () in
  let arcs b = Array.to_list (Graph.out_arcs lc.g b) in
  let arc_between src dst =
    List.find (fun a -> (Graph.arc lc.g a).Arc.dst = dst) (arcs src)
  in
  let p =
    profile_of lc.g
      [
        (lc.c0, 10.0); (lc.c1, 30.0); (lc.c2, 30.0); (lc.c3, 30.0); (lc.c4, 10.0);
        (lc.l0, 30.0); (lc.l1, 30.0);
      ]
      [
        (arc_between lc.c0 lc.c1, 10.0);
        (arc_between lc.c1 lc.c2, 30.0);
        (arc_between lc.c2 lc.c3, 30.0);
        (lc.back_edge, 20.0);
        (arc_between lc.c3 lc.c4, 10.0);
        (arc_between lc.l0 lc.l1, 30.0);
      ]
  in
  let build follow_calls =
    Sequence.build ~graph:lc.g ~profile:p
      ~seed_entry:(fun _ -> lc.c0)
      ~schedule:[ { Schedule.service = Service.Interrupt; exec_thresh = 0.0; branch_thresh = 0.0 } ]
      ~follow_calls ()
  in
  let pos blocks x =
    match Array.find_index (fun b -> b = x) blocks with
    | Some i -> i
    | None -> Alcotest.failf "block %d missing from sequence" x
  in
  (match build true with
  | [ s ] ->
      (* Interleaved: the callee body sits between the call site and the
         caller's continuation. *)
      check_bool "callee placed before the caller's continuation" true
        (pos s.Sequence.blocks lc.l0 < pos s.Sequence.blocks lc.c3)
  | _ -> Alcotest.fail "expected one sequence");
  match build false with
  | [ s ] ->
      (* Without call-following the caller stays contiguous; the callee is
         placed by the final sweep, after the caller's last block. *)
      check_bool "callee after the whole caller" true
        (pos s.Sequence.blocks lc.l0 > pos s.Sequence.blocks lc.c4)
  | _ -> Alcotest.fail "expected one sequence"

(* ------------------------------------------------------------------ *)
(* Inline                                                             *)
(* ------------------------------------------------------------------ *)

let inlined_small () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let inlined, stats =
    Inline.transform ~model ~profile:ctx.Context.avg_os_profile ()
  in
  (ctx, model, inlined, stats)

let test_inline_finds_sites () =
  let _, _, _, stats = inlined_small () in
  check_bool "some sites inlined" true (stats.Inline.sites > 0);
  check_bool "some callees involved" true
    (stats.Inline.callees > 0 && stats.Inline.callees <= stats.Inline.sites);
  check_bool "code grew" true (stats.Inline.added_bytes > 0)

let test_inline_graph_shape () =
  let _, model, inlined, stats = inlined_small () in
  let g0 = model.Model.graph and g1 = inlined.Model.graph in
  check_int "routine population preserved" (Graph.routine_count g0)
    (Graph.routine_count g1);
  check_bool "blocks added" true (Graph.block_count g1 > Graph.block_count g0);
  check_int "code growth matches stats"
    (Graph.code_bytes g0 + stats.Inline.added_bytes)
    (Graph.code_bytes g1)

let test_inline_no_remaining_hot_leaf_calls () =
  (* Every inlined site lost its call field. *)
  let ctx, _, inlined, _ = inlined_small () in
  let p = ctx.Context.avg_os_profile in
  ignore p;
  let g = inlined.Model.graph in
  (* The transform's invariant: graph is well formed and seed/dispatch
     remaps are consistent. *)
  Array.iter
    (fun (s : Model.seed_info) ->
      check_int "seed entry is its routine's entry"
        (Graph.entry_of g s.Model.routine)
        s.Model.entry)
    inlined.Model.seeds;
  Array.iter
    (fun (d : Model.dispatch) ->
      Array.iter
        (fun (a, _) ->
          check_int "dispatch arcs leave the dispatch block" d.Model.block
            (Graph.arc g a).Arc.src)
        d.Model.arcs)
    inlined.Model.dispatches

let test_inline_arc_probabilities () =
  let _, _, inlined, _ = inlined_small () in
  let g = inlined.Model.graph in
  Graph.iter_blocks g (fun b ->
      let arcs = Graph.out_arcs g b.Block.id in
      if Array.length arcs > 0 then begin
        let sum =
          Array.fold_left (fun acc a -> acc +. inlined.Model.arc_prob.(a)) 0.0 arcs
        in
        if sum > 1.0 +. 1e-6 then
          Alcotest.failf "inlined block %d arc probabilities sum to %f" b.Block.id sum
      end)

let test_inline_model_traces () =
  (* The inlined model must drive the engine exactly like a normal one. *)
  let _, _, inlined, _ = inlined_small () in
  let pairs = Workload.standard_programs inlined in
  let w, p = pairs.(0) in
  let _, stats = Engine.capture ~program:p ~workload:w ~words:30_000 ~seed:3 in
  check_bool "engine runs on the inlined kernel" true
    (stats.Engine.total_words >= 30_000);
  check_bool "OS invocations happen" true
    (Array.fold_left ( + ) 0 stats.Engine.invocations > 0)

let test_inline_thresholds () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let _, none =
    Inline.transform ~model ~profile:ctx.Context.avg_os_profile
      ~min_site_rate:1e9 ()
  in
  check_int "impossible rate inlines nothing" 0 none.Inline.sites;
  let _, tiny =
    Inline.transform ~model ~profile:ctx.Context.avg_os_profile
      ~max_callee_bytes:0 ()
  in
  check_int "zero byte budget inlines nothing" 0 tiny.Inline.sites

(* ------------------------------------------------------------------ *)
(* Multiproc                                                          *)
(* ------------------------------------------------------------------ *)

let mp_result ?(xcall_prob = 0.4) ?(which = 0) () =
  let ctx = small_ctx () in
  let w, p = ctx.Context.pairs.(which) in
  Multiproc.run ~program:p ~workload:w ~cpus:4 ~words_per_cpu:20_000 ~seed:5
    ~xcall_prob ()

let test_mp_word_budget () =
  let r = mp_result () in
  check_int "four cpus" 4 (Array.length r.Multiproc.cpus);
  Array.iter
    (fun (c : Multiproc.cpu) ->
      check_bool "per-cpu budget met" true (Multiproc.words c >= 20_000))
    r.Multiproc.cpus

let test_mp_invalid_cpus () =
  let ctx = small_ctx () in
  let w, p = ctx.Context.pairs.(0) in
  check_raises_invalid "zero cpus" (fun () ->
      Multiproc.run ~program:p ~workload:w ~cpus:0 ~words_per_cpu:100 ~seed:1 ())

let test_mp_xcalls_served () =
  let r = mp_result ~xcall_prob:0.5 () in
  check_bool "broadcasts happened" true (r.Multiproc.xcalls_sent > 0);
  let served =
    Array.fold_left (fun acc (c : Multiproc.cpu) -> acc + c.Multiproc.forced) 0
      r.Multiproc.cpus
  in
  (* Each broadcast enqueues cpus-1 forced invocations; the tail may still
     be pending when the budget is reached. *)
  check_bool "forced invocations served" true (served > 0);
  check_bool "served at most sent*(cpus-1)" true
    (served <= r.Multiproc.xcalls_sent * 3)

let test_mp_no_xcalls () =
  let r = mp_result ~xcall_prob:0.0 () in
  check_int "no broadcasts" 0 r.Multiproc.xcalls_sent;
  Array.iter
    (fun (c : Multiproc.cpu) -> check_int "no forced invocations" 0 c.Multiproc.forced)
    r.Multiproc.cpus

let test_mp_determinism () =
  let a = mp_result () and b = mp_result () in
  Array.iteri
    (fun i (c : Multiproc.cpu) ->
      check_int "same trace length" (Trace.length c.Multiproc.trace)
        (Trace.length b.Multiproc.cpus.(i).Multiproc.trace))
    a.Multiproc.cpus

let test_mp_traces_are_balanced_invocations () =
  let r = mp_result () in
  Array.iter
    (fun (c : Multiproc.cpu) ->
      let depth = ref 0 and bad = ref false in
      Trace.iter c.Multiproc.trace (fun e ->
          match e with
          | Trace.Invocation_start _ ->
              incr depth;
              if !depth > 1 then bad := true
          | Trace.Invocation_end ->
              decr depth;
              if !depth < 0 then bad := true
          | Trace.Exec _ -> ());
      check_bool "invocation markers balanced" false !bad)
    r.Multiproc.cpus

let test_mp_replayable () =
  let ctx = small_ctx () in
  let r = mp_result () in
  let layout = (Levels.build ctx Levels.Base).(0) in
  let map = Program_layout.code_map layout in
  Array.iter
    (fun (c : Multiproc.cpu) ->
      let system = System.unified (Config.make ~size_kb:8 ()) in
      Replay.run ~trace:c.Multiproc.trace ~map ~systems:[| system |];
      let cnt = System.counters system in
      check_bool "cpu trace replays" true (Counters.refs cnt > 0);
      check_bool "misses bounded" true (Counters.misses cnt <= Counters.refs cnt))
    r.Multiproc.cpus

(* ------------------------------------------------------------------ *)
(* Pettis-Hansen                                                      *)
(* ------------------------------------------------------------------ *)

let test_ph_chain_order_merges_heaviest () =
  (* 0-1 heavy, 1-2 light: 0 and 1 must be adjacent. *)
  let order = Pettis_hansen.chain_order ~n:4 ~edges:[ (0, 1, 10.0); (1, 2, 1.0) ] in
  check_int "permutation" 4 (List.length (List.sort_uniq compare order));
  let pos x = Option.get (List.find_index (fun y -> y = x) order) in
  check_int "0 and 1 adjacent" 1 (abs (pos 0 - pos 1));
  check_bool "2 adjacent to 1 too" true (abs (pos 1 - pos 2) = 1)

let test_ph_chain_order_closest_is_best () =
  (* Chains [0;1] and [2;3] built first; then edge 1-2 must join them with
     1 and 2 adjacent, whatever the chain orientations. *)
  let order =
    Pettis_hansen.chain_order ~n:4
      ~edges:[ (0, 1, 10.0); (2, 3, 9.0); (1, 2, 5.0) ]
  in
  let pos x = Option.get (List.find_index (fun y -> y = x) order) in
  check_int "edge endpoints adjacent after merge" 1 (abs (pos 1 - pos 2))

let test_ph_chain_order_permutation () =
  let order = Pettis_hansen.chain_order ~n:7 ~edges:[] in
  Alcotest.(check (list int)) "no edges: identity-ish permutation"
    [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.sort compare order)

let test_ph_routine_order () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let order = Pettis_hansen.routine_order g ctx.Context.avg_os_profile in
  check_int "permutation of routines" (Graph.routine_count g)
    (List.length (List.sort_uniq compare order))

let test_ph_intra_order () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let p = ctx.Context.avg_os_profile in
  Graph.iter_routines g (fun r ->
      let order = Pettis_hansen.intra_routine_order g p r in
      if List.length order <> Routine.block_count r then
        Alcotest.failf "routine %s: order not a permutation" r.Routine.name;
      (* The entry block leads whenever the routine executed at all. *)
      if Profile.executed p r.Routine.entry then
        match order with
        | first :: _ when first = r.Routine.entry -> ()
        | _ -> Alcotest.failf "routine %s: entry not first" r.Routine.name)

let test_ph_layout_valid () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let map = Pettis_hansen.layout g ctx.Context.avg_os_profile in
  check_int "all blocks placed" (Graph.block_count g) (Address_map.placed_count map)

let test_ph_in_ch_league () =
  let ctx = small_ctx () in
  let rows = Exp_ph.compute ctx in
  Array.iter
    (fun (r : Exp_ph.row) ->
      let rate name = List.assoc name r.Exp_ph.rates in
      check_bool "P-H beats Base" true (rate "P-H" < rate "Base");
      check_bool "P-H within 2x of C-H" true (rate "P-H" <= 2.0 *. rate "C-H"))
    rows

(* ------------------------------------------------------------------ *)
(* Experiment smoke: compute functions of the new experiments          *)
(* ------------------------------------------------------------------ *)

let test_ablation_compute () =
  let ctx = small_ctx () in
  let base, variants = Exp_ablation.compute ctx in
  check_bool "base has misses" true (base > 0);
  check_int "five variants" 5 (List.length variants);
  List.iter
    (fun (v : Exp_ablation.variant) ->
      check_bool "every variant beats Base" true (v.Exp_ablation.vs_base < 1.0))
    variants

let test_policy_compute () =
  let ctx = small_ctx () in
  let rows = Exp_policy.compute ctx in
  check_int "four workloads" 4 (Array.length rows);
  Array.iter
    (fun (r : Exp_policy.row) ->
      check_int "three policies" 3 (Array.length r.Exp_policy.rates);
      Array.iter
        (fun (_, base, opt) ->
          check_bool "OptS at or below Base under every policy" true
            (opt <= base +. 1e-9))
        r.Exp_policy.rates)
    rows

let test_robust_budgets () =
  let budgets = Exp_robust.budgets_of 2_000_000 in
  check_bool "budgets ascend" true
    (Array.for_all2 ( < )
       (Array.sub budgets 0 (Array.length budgets - 1))
       (Array.sub budgets 1 (Array.length budgets - 1)));
  check_int "committed budget is the context budget" 2_000_000 budgets.(2)

let test_victim_compute () =
  let ctx = small_ctx () in
  let rows = Exp_victim.compute ctx in
  Array.iter
    (fun (r : Exp_victim.row) ->
      let rate n = List.assoc n r.Exp_victim.rates in
      check_bool "victim buffer helps Base" true (rate "Base+V8" <= rate "Base");
      check_bool "bigger buffers help more" true (rate "Base+V16" <= rate "Base+V4");
      check_bool "OptS+victim composes" true (rate "OptS+V8" <= rate "OptS" +. 1e-9))
    rows

let test_crossval_compute () =
  let ctx = small_ctx () in
  let r = Exp_crossval.compute ctx in
  let n = Array.length r.Exp_crossval.names in
  for i = 0 to n - 1 do
    check_close 1e-9 "diagonal is 1" 1.0 r.Exp_crossval.matrix.(i).(i)
  done;
  (* On the mini-kernel per-workload miss counts are small, so individual
     ratios are noisy; the average-profile layout must still be in the
     right league overall. *)
  Array.iter
    (fun v -> check_bool "ratios finite and positive" true (v > 0.0 && v < 20.0))
    r.Exp_crossval.average_row;
  check_bool "competitive on most workloads" true
    (Array.fold_left (fun acc v -> if v < 2.0 then acc + 1 else acc) 0
       r.Exp_crossval.average_row
    >= Array.length r.Exp_crossval.average_row / 2)

let test_fallthrough_layouts_raise_rate () =
  let ctx = small_ctx () in
  let rows = Exp_fallthrough.compute ctx in
  Array.iter
    (fun (r : Exp_fallthrough.row) ->
      let rate n = List.assoc n r.Exp_fallthrough.rates in
      check_bool "rates in range" true (rate "Base" >= 0.0 && rate "OptS" <= 1.0);
      check_bool "OptS raises the fall-through rate" true
        (rate "OptS" > rate "Base"))
    rows

let test_fallthrough_golden () =
  (* Two blocks placed adjacently fall through; placed apart they do not. *)
  let lc = loop_call () in
  let trace = Trace.create () in
  List.iter
    (fun b -> Trace.append trace (Trace.Exec { image = 0; block = b }))
    [ lc.c0; lc.c1 ];
  let n = Graph.block_count lc.g in
  let adjacent =
    { Replay.addr = [| Array.init n (fun b -> b * 16) |]; bytes = [| Array.make n 16 |] }
  in
  check_close 1e-9 "adjacent placement falls through" 1.0
    (Exp_fallthrough.rate ~trace ~map:adjacent);
  let apart =
    { Replay.addr = [| Array.init n (fun b -> b * 64) |]; bytes = [| Array.make n 16 |] }
  in
  check_close 1e-9 "gapped placement does not" 0.0
    (Exp_fallthrough.rate ~trace ~map:apart)

let test_mp_compute () =
  let ctx = small_ctx () in
  let rows = Exp_mp.compute ctx in
  check_int "four workloads" 4 (Array.length rows);
  Array.iter
    (fun (r : Exp_mp.row) ->
      check_int "four cpus" Exp_mp.cpus (Array.length r.Exp_mp.base_rates);
      check_bool "OptS wins on average" true
        (Stats.mean r.Exp_mp.opt_rates < Stats.mean r.Exp_mp.base_rates))
    rows

let () =
  Alcotest.run "extensions"
    [
      ( "schedule-ablation",
        [
          case "flat" test_schedule_flat;
          case "restrict" test_schedule_restrict;
          case "no call-following" test_sequence_no_follow_calls;
        ] );
      ( "inline",
        [
          case "finds sites" test_inline_finds_sites;
          case "graph shape" test_inline_graph_shape;
          case "model consistency" test_inline_no_remaining_hot_leaf_calls;
          case "arc probabilities" test_inline_arc_probabilities;
          case "traces" test_inline_model_traces;
          case "thresholds" test_inline_thresholds;
        ] );
      ( "multiproc",
        [
          case "word budget" test_mp_word_budget;
          case "invalid cpus" test_mp_invalid_cpus;
          case "xcalls served" test_mp_xcalls_served;
          case "no xcalls" test_mp_no_xcalls;
          case "determinism" test_mp_determinism;
          case "balanced invocations" test_mp_traces_are_balanced_invocations;
          case "replayable" test_mp_replayable;
        ] );
      ( "pettis-hansen",
        [
          case "heaviest edge adjacency" test_ph_chain_order_merges_heaviest;
          case "closest is best" test_ph_chain_order_closest_is_best;
          case "permutation" test_ph_chain_order_permutation;
          case "routine order" test_ph_routine_order;
          case "intra order" test_ph_intra_order;
          case "layout valid" test_ph_layout_valid;
          case "C-H league" test_ph_in_ch_league;
        ] );
      ( "experiments",
        [
          case "ablation compute" test_ablation_compute;
          case "policy compute" test_policy_compute;
          case "victim compute" test_victim_compute;
          case "crossval compute" test_crossval_compute;
          case "fallthrough rates" test_fallthrough_layouts_raise_rate;
          case "fallthrough golden" test_fallthrough_golden;
          case "robust budgets" test_robust_budgets;
          case "mp compute" test_mp_compute;
        ] );
    ]
