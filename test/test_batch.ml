open Helpers

(* Fused multi-configuration replay: [Runner.simulate_batch] must be
   bit-identical to simulating every member alone, whatever mixture of
   layouts, geometries, policies, duplicates and cache temperatures the
   caller throws at it.  This is the safety net under the experiment
   conversions: if fan-out through a shared Replay pass ever diverges
   from the solo path, these properties fail before any golden does. *)

(* A pool of (layout level, geometry) combinations spanning the dispatch
   kernels: direct-mapped (the specialized fast path), LRU / FIFO with
   real associativity, and the seeded Random policy. *)
let combos =
  [|
    (Levels.Base, Config.make ~size_kb:4 ());
    (Levels.Base, Config.make ~size_kb:8 ~assoc:2 ());
    (Levels.Base, Config.make ~size_kb:8 ~assoc:4 ~policy:Config.Fifo ());
    (Levels.CH, Config.make ~size_kb:8 ());
    (Levels.CH, Config.make ~size_kb:4 ~assoc:4 ~policy:(Config.Random 1234) ());
    (Levels.OptS, Config.make ~size_kb:8 ());
    (Levels.OptS, Config.make ~size_kb:16 ~assoc:2 ~policy:Config.Fifo ());
    (Levels.OptS, Config.make ~size_kb:4 ~line:16 ())
  |]

let members_of ctx picks =
  Array.of_list
    (List.map
       (fun i ->
         let level, config = combos.(i mod Array.length combos) in
         (Levels.build ctx level, config))
       picks)

let same_runs (a : Runner.run array) (b : Runner.run array) =
  Array.for_all2
    (fun (x : Runner.run) (y : Runner.run) ->
      x.Runner.counters = y.Runner.counters
      && x.Runner.os_block_misses = y.Runner.os_block_misses)
    a b

(* Cold cache on both sides: the batch replays everything through fused
   passes, the reference replays each member alone. *)
let prop_batch_equals_sequential =
  QCheck.Test.make
    ~name:"simulate_batch == per-member simulate_config (cold cache)" ~count:6
    QCheck.(pair (list_of_size Gen.(1 -- 8) (int_bound 100)) bool)
    (fun (picks, attribute_os) ->
      let ctx = Lazy.force small_context in
      let members = members_of ctx picks in
      Sim_cache.clear ();
      let batch = Runner.simulate_batch ctx ~members ~attribute_os () in
      Sim_cache.clear ();
      let seq =
        Array.map
          (fun (layouts, config) ->
            Runner.simulate_config ctx ~layouts ~config ~attribute_os ())
          members
      in
      Array.for_all2 same_runs batch seq)

(* Warm cache: every member was already simulated solo, so the batch must
   serve pure Sim_cache hits (no new misses) and return identical runs. *)
let prop_batch_serves_warm_entries =
  QCheck.Test.make ~name:"simulate_batch serves warm Sim_cache entries" ~count:4
    QCheck.(list_of_size Gen.(1 -- 5) (int_bound 100))
    (fun picks ->
      let ctx = Lazy.force small_context in
      let members = members_of ctx picks in
      Sim_cache.clear ();
      let seq =
        Array.map
          (fun (layouts, config) -> Runner.simulate_config ctx ~layouts ~config ())
          members
      in
      let m0 = Sim_cache.misses () in
      let batch = Runner.simulate_batch ctx ~members () in
      Sim_cache.misses () = m0 && Array.for_all2 same_runs batch seq)

(* The direct-mapped fast path must agree with the generic kernel.  A
   Random policy at associativity 1 stays on the generic path but has no
   actual choice to make (the only way is always the victim), so its
   counters must coincide with the specialized LRU/assoc=1 dispatch. *)
let prop_direct_fast_path_matches_generic =
  QCheck.Test.make ~name:"direct-mapped fast path == generic assoc=1 kernel"
    ~count:6
    QCheck.(pair (oneofl [ 4; 8; 16 ]) (oneofl [ 16; 32 ]))
    (fun (size_kb, line) ->
      let ctx = Lazy.force small_context in
      let layouts = Levels.build ctx Levels.Base in
      Sim_cache.clear ();
      let direct =
        Runner.simulate_config ctx ~layouts
          ~config:(Config.make ~size_kb ~line ()) ()
      in
      let generic =
        Runner.simulate_config ctx ~layouts
          ~config:(Config.make ~size_kb ~line ~policy:(Config.Random 7) ()) ()
      in
      Array.for_all2
        (fun (x : Runner.run) (y : Runner.run) ->
          x.Runner.counters = y.Runner.counters)
        direct generic)

(* Duplicate members must come back as independent deep copies: mutating
   one result cannot leak into its twin. *)
let test_duplicates_are_copies () =
  let ctx = Lazy.force small_context in
  let member = (Levels.build ctx Levels.Base, Config.make ~size_kb:8 ()) in
  Sim_cache.clear ();
  let batch = Runner.simulate_batch ctx ~members:[| member; member |] () in
  check_bool "duplicate members agree" true (same_runs batch.(0) batch.(1));
  batch.(0).(0).Runner.counters.Counters.os_self <- min_int;
  check_bool "results are independent copies" true
    (batch.(1).(0).Runner.counters.Counters.os_self <> min_int)

let () =
  Alcotest.run "batch"
    [
      ( "equivalence",
        [
          qcheck prop_batch_equals_sequential;
          qcheck prop_batch_serves_warm_entries;
          qcheck prop_direct_fast_path_matches_generic;
          case "duplicate members are deep copies" test_duplicates_are_copies;
        ] );
    ]
