open Helpers

(* ------------------------------------------------------------------ *)
(* Config                                                             *)
(* ------------------------------------------------------------------ *)

let test_config_make () =
  let c = Config.make ~size_kb:8 () in
  check_int "size" 8192 c.Config.size;
  check_int "direct-mapped default" 1 c.Config.assoc;
  check_int "32B lines default" 32 c.Config.line;
  check_int "sets" 256 (Config.sets c)

let test_config_assoc_sets () =
  let c = Config.v ~size:8192 ~assoc:4 ~line:32 in
  check_int "sets with associativity" 64 (Config.sets c)

let test_config_validation () =
  check_raises_invalid "non-power-of-two size" (fun () ->
      Config.v ~size:3000 ~assoc:1 ~line:32);
  check_raises_invalid "non-power-of-two assoc" (fun () ->
      Config.v ~size:8192 ~assoc:3 ~line:32);
  check_raises_invalid "non-power-of-two line" (fun () ->
      Config.v ~size:8192 ~assoc:1 ~line:24);
  check_raises_invalid "line bigger than cache" (fun () ->
      Config.v ~size:32 ~assoc:1 ~line:64)

let test_config_addr_math () =
  let c = Config.v ~size:8192 ~assoc:1 ~line:32 in
  check_int "line of addr" 3 (Config.line_of_addr c 96);
  check_int "line of addr mid-line" 3 (Config.line_of_addr c 100);
  check_int "set wraps" 0 (Config.set_of_line c 256);
  check_bool "to_string mentions size" true
    (String.length (Config.to_string c) > 0)

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_counters_arith () =
  let c = Counters.create () in
  c.Counters.refs_os <- 100;
  c.Counters.refs_app <- 50;
  c.Counters.os_cold <- 1;
  c.Counters.os_self <- 2;
  c.Counters.os_cross <- 3;
  c.Counters.app_cold <- 4;
  c.Counters.app_self <- 5;
  c.Counters.app_cross <- 6;
  check_int "refs" 150 (Counters.refs c);
  check_int "os misses" 6 (Counters.os_misses c);
  check_int "app misses" 15 (Counters.app_misses c);
  check_int "misses" 21 (Counters.misses c);
  check_close 1e-9 "miss rate" (21.0 /. 150.0) (Counters.miss_rate c);
  check_close 1e-9 "os miss rate" (6.0 /. 100.0) (Counters.os_miss_rate c);
  let d = Counters.copy c in
  Counters.add d c;
  check_int "add doubles" 42 (Counters.misses d);
  Counters.reset d;
  check_int "reset zeroes" 0 (Counters.misses d);
  check_close 1e-9 "empty miss rate" 0.0 (Counters.miss_rate d)

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let dm_1kb () = Sim.create (Config.v ~size:1024 ~assoc:1 ~line:32)

let test_sim_miss_then_hit () =
  let s = dm_1kb () in
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:16;
  let c = Sim.counters s in
  check_int "first access misses once" 1 (Counters.misses c);
  check_int "cold classified" 1 c.Counters.os_cold;
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:16;
  check_int "second access hits" 1 (Counters.misses (Sim.counters s));
  check_int "refs counted in words" 8 (Counters.refs (Sim.counters s))

let test_sim_block_spanning_lines () =
  let s = dm_1kb () in
  (* Bytes 16..95 span lines 0, 1 and 2 of 32 bytes. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:16 ~bytes:80;
  check_int "three line misses" 3 (Counters.misses (Sim.counters s));
  check_bool "all three resident" true
    (Sim.probe s ~addr:0 && Sim.probe s ~addr:32 && Sim.probe s ~addr:95)

let test_sim_conflict_direct_mapped () =
  let s = dm_1kb () in
  (* Addresses 0 and 1024 share set 0 in a 1 KB direct-mapped cache. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:1 ~addr:1024 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  let c = Sim.counters s in
  check_int "three misses" 3 (Counters.misses c);
  check_int "last one is self-interference" 1 c.Counters.os_self;
  check_bool "victim no longer resident" false (Sim.probe s ~addr:1024)

let test_sim_no_conflict_different_sets () =
  let s = dm_1kb () in
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:1 ~addr:32 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  check_int "only two cold misses" 2 (Counters.misses (Sim.counters s))

let test_sim_lru_two_way () =
  let s = Sim.create (Config.v ~size:1024 ~assoc:2 ~line:32) in
  (* Set 0 of a 2-way 1 KB cache: lines at 0, 512, 1024 all map there. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:1 ~addr:512 ~bytes:4;
  (* Touch 0 so 512 becomes LRU. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:2 ~addr:1024 ~bytes:4;
  check_bool "0 still resident (MRU)" true (Sim.probe s ~addr:0);
  check_bool "512 evicted (LRU)" false (Sim.probe s ~addr:512);
  check_bool "1024 resident" true (Sim.probe s ~addr:1024)

let test_sim_fifo_no_refresh () =
  (* Set 0 of a 2-way cache under FIFO: hits do not refresh, so the oldest
     insertion is evicted even if it was just used. *)
  let s = Sim.create (Config.with_policy (Config.v ~size:1024 ~assoc:2 ~line:32) Config.Fifo) in
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:1 ~addr:512 ~bytes:4;
  (* Touch 0: under LRU this would protect it; FIFO ignores the hit. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:2 ~addr:1024 ~bytes:4;
  check_bool "oldest insertion (0) evicted despite the hit" false
    (Sim.probe s ~addr:0);
  check_bool "512 survives" true (Sim.probe s ~addr:512)

let test_sim_random_deterministic () =
  let run () =
    let s =
      Sim.create
        (Config.with_policy (Config.v ~size:512 ~assoc:4 ~line:32) (Config.Random 7))
    in
    let g = Prng.of_int 99 in
    for _ = 1 to 2000 do
      Sim.access s ~os:true ~image:0 ~block:0 ~addr:(32 * Prng.int g 64) ~bytes:4
    done;
    Counters.misses (Sim.counters s)
  in
  check_int "same seed, same misses" (run ()) (run ());
  let other =
    let s =
      Sim.create
        (Config.with_policy (Config.v ~size:512 ~assoc:4 ~line:32) (Config.Random 8))
    in
    let g = Prng.of_int 99 in
    for _ = 1 to 2000 do
      Sim.access s ~os:true ~image:0 ~block:0 ~addr:(32 * Prng.int g 64) ~bytes:4
    done;
    Counters.misses (Sim.counters s)
  in
  check_bool "replacement-seed sensitivity" true (other <> run () || other = run ())

let test_sim_random_fills_invalid_first () =
  let s =
    Sim.create
      (Config.with_policy (Config.v ~size:1024 ~assoc:4 ~line:32) (Config.Random 3))
  in
  (* Four lines into one set of a 4-way cache: all must be resident. *)
  List.iter
    (fun addr -> Sim.access s ~os:true ~image:0 ~block:0 ~addr ~bytes:4)
    [ 0; 256; 512; 768 ];
  List.iter
    (fun addr -> check_bool "resident" true (Sim.probe s ~addr))
    [ 0; 256; 512; 768 ]

let test_sim_policy_in_to_string () =
  let c = Config.with_policy (Config.v ~size:8192 ~assoc:2 ~line:32) Config.Fifo in
  check_bool "FIFO shown" true
    (String.length (Config.to_string c) > String.length "8KB/2way/32B")

let test_sim_cross_interference () =
  let s = dm_1kb () in
  Sim.access s ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  (* OS evicts the app line. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:1024 ~bytes:4;
  (* App misses again: cross-interference. *)
  Sim.access s ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  let c = Sim.counters s in
  check_int "app cross" 1 c.Counters.app_cross;
  check_int "app cold" 1 c.Counters.app_cold;
  check_int "os cold" 1 c.Counters.os_cold;
  (* Now the app evicts the OS line back: OS cross. *)
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:1024 ~bytes:4;
  check_int "os cross" 1 c.Counters.os_cross

let test_sim_attribution () =
  let s = dm_1kb () in
  Sim.enable_block_attribution s ~images:2 ~blocks:[| 4; 4 |];
  Sim.access s ~os:true ~image:0 ~block:2 ~addr:0 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:3 ~addr:1024 ~bytes:4;
  Sim.access s ~os:true ~image:0 ~block:2 ~addr:0 ~bytes:4;
  check_int "block 2 missed twice" 2 (Sim.block_misses s ~image:0).(2);
  check_int "block 3 missed once" 1 (Sim.block_misses s ~image:0).(3);
  check_int "block 2 self misses" 1 (Sim.block_misses_self s ~image:0).(2);
  check_int "block 3 no self misses" 0 (Sim.block_misses_self s ~image:0).(3);
  check_int "no cross misses" 0 (Sim.block_misses_cross s ~image:0).(2)

let test_sim_attribution_disabled () =
  let s = dm_1kb () in
  check_raises_invalid "attribution off" (fun () -> Sim.block_misses s ~image:0)

let test_sim_reset_counters_keeps_contents () =
  let s = dm_1kb () in
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.reset_counters s;
  check_int "counters zeroed" 0 (Counters.misses (Sim.counters s));
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  check_int "line still resident after reset_counters" 0
    (Counters.misses (Sim.counters s))

let test_sim_reset_empties () =
  let s = dm_1kb () in
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  Sim.reset s;
  check_bool "line gone" false (Sim.probe s ~addr:0);
  Sim.access s ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  check_int "misses again, as cold" 1 (Sim.counters s).Counters.os_cold

let prop_misses_bounded_by_refs =
  QCheck.Test.make ~name:"misses never exceed word references" ~count:100
    QCheck.(pair small_int (list_of_size Gen.(1 -- 200) (pair (int_bound 4095) bool)))
    (fun (_, accesses) ->
      let s = Sim.create (Config.v ~size:512 ~assoc:2 ~line:16) in
      List.iter
        (fun (addr, os) ->
          Sim.access s ~os ~image:(if os then 0 else 1) ~block:0
            ~addr:(addr land lnot 3) ~bytes:4)
        accesses;
      let c = Sim.counters s in
      Counters.misses c <= Counters.refs c)

let prop_large_cache_no_conflicts =
  QCheck.Test.make ~name:"cache larger than footprint only misses cold" ~count:50
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 1023))
    (fun addrs ->
      let s = Sim.create (Config.v ~size:65536 ~assoc:1 ~line:32) in
      List.iter
        (fun addr -> Sim.access s ~os:true ~image:0 ~block:0 ~addr ~bytes:4)
        addrs;
      let c = Sim.counters s in
      c.Counters.os_self = 0 && c.Counters.os_cross = 0)

(* ------------------------------------------------------------------ *)
(* System                                                             *)
(* ------------------------------------------------------------------ *)

let test_system_unified () =
  let sys = System.unified (Config.v ~size:1024 ~assoc:1 ~line:32) in
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  let c = System.counters sys in
  check_int "one miss" 1 (Counters.misses c);
  check_int "two word refs" 2 (Counters.refs c)

let test_system_split_routes () =
  let sys =
    System.split
      ~os:(Config.v ~size:1024 ~assoc:1 ~line:32)
      ~app:(Config.v ~size:1024 ~assoc:1 ~line:32)
  in
  (* Same address from OS and app: separate caches, no interference. *)
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  let c = System.counters sys in
  check_int "two cold misses only" 2 (Counters.misses c);
  check_int "no cross interference" 0 (c.Counters.os_cross + c.Counters.app_cross)

let test_system_reserved_routes () =
  let sys =
    System.reserved
      ~hot:(Config.v ~size:512 ~assoc:1 ~line:32)
      ~rest:(Config.v ~size:1024 ~assoc:1 ~line:32)
      ~hot_limit:1024
  in
  (* OS below hot_limit goes to the hot cache; the same set in the rest
     cache is untouched, so an app line there survives. *)
  System.access sys ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  let c = System.counters sys in
  check_int "no app re-miss" 2 (Counters.misses c);
  (* OS above hot_limit goes to the rest cache and does evict the app. *)
  System.access sys ~os:true ~image:0 ~block:1 ~addr:1024 ~bytes:4;
  System.access sys ~os:false ~image:1 ~block:0 ~addr:0 ~bytes:4;
  let c = System.counters sys in
  check_int "app cross after rest-cache eviction" 1 c.Counters.app_cross

let test_system_reset () =
  let sys = System.unified (Config.v ~size:1024 ~assoc:1 ~line:32) in
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.reset_counters sys;
  check_int "counters zero" 0 (Counters.misses (System.counters sys));
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  check_int "contents kept" 0 (Counters.misses (System.counters sys));
  System.reset sys;
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  check_int "reset empties" 1 (Counters.misses (System.counters sys))

let test_system_attribution () =
  let sys = System.unified (Config.v ~size:1024 ~assoc:1 ~line:32) in
  System.enable_block_attribution sys ~images:1 ~blocks:[| 2 |];
  System.access sys ~os:true ~image:0 ~block:1 ~addr:0 ~bytes:4;
  check_int "attributed" 1 (System.block_misses sys ~image:0).(1);
  check_bool "describe non-empty" true (String.length (System.describe sys) > 0)

let test_system_victim_swap () =
  (* 1 KB direct-mapped main (32 sets) with a 2-line victim buffer.
     Lines 0 and 1024 conflict in set 0: the ping-pong that costs the
     plain cache a miss each time is absorbed by the buffer. *)
  let main = Config.v ~size:1024 ~assoc:1 ~line:32 in
  let sys = System.victim ~main ~entries:2 in
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.access sys ~os:true ~image:0 ~block:1 ~addr:1024 ~bytes:4;
  (* Both cold so far; from now on the two lines swap via the buffer. *)
  for _ = 1 to 10 do
    System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
    System.access sys ~os:true ~image:0 ~block:1 ~addr:1024 ~bytes:4
  done;
  let c = System.counters sys in
  check_int "only the two cold misses" 2 (Counters.misses c);
  check_int "all references counted" 22 (Counters.refs c)

let test_system_victim_capacity () =
  (* Three conflicting lines against a 1-line buffer: the buffer cannot
     hold the ping-pong set, so conflict misses persist. *)
  let main = Config.v ~size:1024 ~assoc:1 ~line:32 in
  let sys = System.victim ~main ~entries:1 in
  let addrs = [ 0; 1024; 2048 ] in
  List.iter (fun addr -> System.access sys ~os:true ~image:0 ~block:0 ~addr ~bytes:4) addrs;
  for _ = 1 to 5 do
    List.iter
      (fun addr -> System.access sys ~os:true ~image:0 ~block:0 ~addr ~bytes:4)
      addrs
  done;
  let c = System.counters sys in
  check_bool "self-interference persists" true (c.Counters.os_self > 0)

let test_system_victim_validation () =
  check_raises_invalid "set-associative main rejected" (fun () ->
      System.victim ~main:(Config.v ~size:1024 ~assoc:2 ~line:32) ~entries:4);
  check_raises_invalid "zero entries rejected" (fun () ->
      System.victim ~main:(Config.v ~size:1024 ~assoc:1 ~line:32) ~entries:0);
  let sys = System.victim ~main:(Config.v ~size:1024 ~assoc:1 ~line:32) ~entries:4 in
  check_raises_invalid "attribution unsupported" (fun () ->
      System.enable_block_attribution sys ~images:1 ~blocks:[| 1 |])

let test_system_victim_reset () =
  let sys = System.victim ~main:(Config.v ~size:1024 ~assoc:1 ~line:32) ~entries:2 in
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  System.reset sys;
  System.access sys ~os:true ~image:0 ~block:0 ~addr:0 ~bytes:4;
  check_int "cold again after reset" 1 (System.counters sys).Counters.os_cold;
  check_bool "victim described" true
    (String.length (System.describe sys) > 0)

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

let replay_fixture () =
  let lc = loop_call () in
  let t = Trace.create () in
  List.iter
    (fun b -> Trace.append t (Trace.Exec { image = 0; block = b }))
    [ lc.c0; lc.c1; lc.c2; lc.l0; lc.l1; lc.c3; lc.c4 ];
  let n = Graph.block_count lc.g in
  let map =
    {
      Replay.addr = [| Array.init n (fun b -> b * 16) |];
      bytes = [| Array.make n 16 |];
    }
  in
  (lc, t, map)

let test_replay_run () =
  let _, t, map = replay_fixture () in
  let sys = System.unified (Config.v ~size:1024 ~assoc:1 ~line:32) in
  Replay.run ~trace:t ~map ~systems:[| sys |];
  let c = System.counters sys in
  check_int "words fetched" (7 * 4) (Counters.refs c);
  (* 7 blocks of 16 bytes over 32-byte lines from address 0: 4 lines. *)
  check_int "cold misses only" 4 (Counters.misses c)

let test_replay_multiple_systems () =
  let _, t, map = replay_fixture () in
  let a = System.unified (Config.v ~size:1024 ~assoc:1 ~line:32) in
  let b = System.unified (Config.v ~size:1024 ~assoc:1 ~line:16) in
  Replay.run ~trace:t ~map ~systems:[| a; b |];
  check_int "both systems see all refs" (Counters.refs (System.counters a))
    (Counters.refs (System.counters b));
  check_int "16B lines mean more line misses" 7
    (Counters.misses (System.counters b))

let test_replay_warmup () =
  let _, t, map = replay_fixture () in
  let sys = System.unified (Config.v ~size:1024 ~assoc:1 ~line:32) in
  (* Warm up over the whole trace: a second pass has no cold misses. *)
  Replay.run_range ~trace:t ~map ~systems:[| sys |] ~warmup:(Trace.exec_count t);
  check_int "warmup discards all misses" 0 (Counters.misses (System.counters sys));
  check_int "and all refs" 0 (Counters.refs (System.counters sys))

let () =
  Alcotest.run "cache"
    [
      ( "config",
        [
          case "make" test_config_make;
          case "associative sets" test_config_assoc_sets;
          case "validation" test_config_validation;
          case "address math" test_config_addr_math;
        ] );
      ("counters", [ case "arithmetic" test_counters_arith ]);
      ( "sim",
        [
          case "miss then hit" test_sim_miss_then_hit;
          case "block spanning lines" test_sim_block_spanning_lines;
          case "direct-mapped conflict" test_sim_conflict_direct_mapped;
          case "different sets no conflict" test_sim_no_conflict_different_sets;
          case "2-way LRU" test_sim_lru_two_way;
          case "FIFO no refresh" test_sim_fifo_no_refresh;
          case "random deterministic" test_sim_random_deterministic;
          case "random fills invalid first" test_sim_random_fills_invalid_first;
          case "policy in to_string" test_sim_policy_in_to_string;
          case "cross interference" test_sim_cross_interference;
          case "attribution" test_sim_attribution;
          case "attribution disabled" test_sim_attribution_disabled;
          case "reset_counters keeps contents" test_sim_reset_counters_keeps_contents;
          case "reset empties" test_sim_reset_empties;
          qcheck prop_misses_bounded_by_refs;
          qcheck prop_large_cache_no_conflicts;
        ] );
      ( "system",
        [
          case "unified" test_system_unified;
          case "split routes" test_system_split_routes;
          case "reserved routes" test_system_reserved_routes;
          case "reset" test_system_reset;
          case "attribution" test_system_attribution;
          case "victim swap" test_system_victim_swap;
          case "victim capacity" test_system_victim_capacity;
          case "victim validation" test_system_victim_validation;
          case "victim reset" test_system_victim_reset;
        ] );
      ( "replay",
        [
          case "run" test_replay_run;
          case "multiple systems" test_replay_multiple_systems;
          case "warmup" test_replay_warmup;
        ] );
    ]
