open Helpers

(* Layout serialization, Graphviz export, and the cache-theory properties
   DESIGN.md promises (LRU inclusion, miss-classification partition). *)

let small_ctx () = Lazy.force small_context

(* ------------------------------------------------------------------ *)
(* Layout_file                                                        *)
(* ------------------------------------------------------------------ *)

let opt_map ctx =
  (Opt.os_layout ~model:ctx.Context.model ~profile:ctx.Context.avg_os_profile
     ~loops:(Context.os_loops ctx) (Opt.params ()))
    .Opt.map

let test_layout_file_roundtrip () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let map = opt_map ctx in
  let s = Layout_file.to_string ~graph:g map in
  let map' = Layout_file.of_string ~graph:g s in
  check_int "same placed count" (Address_map.placed_count map)
    (Address_map.placed_count map');
  check_int "same extent" (Address_map.extent map) (Address_map.extent map');
  Graph.iter_blocks g (fun b ->
      if Address_map.addr map b.Block.id <> Address_map.addr map' b.Block.id then
        Alcotest.failf "block %d address changed across round-trip" b.Block.id;
      if Address_map.region map b.Block.id <> Address_map.region map' b.Block.id then
        Alcotest.failf "block %d region changed across round-trip" b.Block.id)

let test_layout_file_file_io () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let map = opt_map ctx in
  let path = Filename.temp_file "icache_layout" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Layout_file.save path ~graph:g map;
      let map' = Layout_file.load path ~graph:g in
      check_int "file round-trip preserves extent" (Address_map.extent map)
        (Address_map.extent map'))

let test_layout_file_rejects_garbage () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  check_raises_invalid "malformed line" (fun () ->
      Layout_file.of_string ~graph:g "0x0 not-a-layout");
  check_raises_invalid "bad region" (fun () ->
      Layout_file.of_string ~graph:g "0x0 16 0 Nonsense foo");
  check_raises_invalid "block out of range" (fun () ->
      Layout_file.of_string ~graph:g "0x0 16 99999999 Cold foo")

let test_layout_file_rejects_size_mismatch () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let size = (Graph.block g 0).Block.size in
  let line = Printf.sprintf "0x0 %d 0 Cold foo" (size + 4) in
  check_raises_invalid "size mismatch" (fun () ->
      Layout_file.of_string ~graph:g line)

let test_layout_file_incomplete_rejected () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let size = (Graph.block g 0).Block.size in
  let s = Printf.sprintf "0x0 %d 0 Cold foo" size in
  (* Only one block placed: validation must fail. *)
  match Layout_file.of_string ~graph:g s with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "incomplete layout accepted"

(* ------------------------------------------------------------------ *)
(* Profile_file                                                       *)
(* ------------------------------------------------------------------ *)

let test_profile_file_roundtrip () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let p = ctx.Context.avg_os_profile in
  let p' = Profile_file.of_string ~graph:g (Profile_file.to_string ~graph:g p) in
  check_close 1e-6 "total preserved" p.Profile.total_blocks p'.Profile.total_blocks;
  check_close 1e-6 "invocations preserved" p.Profile.invocations
    p'.Profile.invocations;
  Graph.iter_blocks g (fun b ->
      if abs_float (p.Profile.block.(b.Block.id) -. p'.Profile.block.(b.Block.id))
         > 1e-9 *. (1.0 +. p.Profile.block.(b.Block.id))
      then Alcotest.failf "block %d count changed" b.Block.id);
  Graph.iter_arcs g (fun a ->
      if abs_float (p.Profile.arc.(a.Arc.id) -. p'.Profile.arc.(a.Arc.id)) > 1e-6
      then Alcotest.failf "arc %d count changed" a.Arc.id)

let test_profile_file_same_layout () =
  (* The round-tripped profile must produce the identical OptS layout. *)
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let model = ctx.Context.model in
  let p = ctx.Context.avg_os_profile in
  let p' = Profile_file.of_string ~graph:g (Profile_file.to_string ~graph:g p) in
  let map_of profile =
    (Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx) (Opt.params ()))
      .Opt.map
  in
  let a = map_of p and b = map_of p' in
  Graph.iter_blocks g (fun blk ->
      if Address_map.addr a blk.Block.id <> Address_map.addr b blk.Block.id then
        Alcotest.failf "layouts diverge at block %d" blk.Block.id)

let test_profile_file_file_io () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let p = ctx.Context.os_profiles.(0) in
  let path = Filename.temp_file "icache_profile" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_file.save path ~graph:g p;
      let p' = Profile_file.load path ~graph:g in
      check_close 1e-6 "file round-trip" p.Profile.total_blocks
        p'.Profile.total_blocks)

let test_profile_file_rejects () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  check_raises_invalid "shape mismatch" (fun () ->
      Profile_file.of_string ~graph:g "shape 1 1");
  check_raises_invalid "bad index" (fun () ->
      Profile_file.of_string ~graph:g "b 99999999 5");
  check_raises_invalid "negative count" (fun () ->
      Profile_file.of_string ~graph:g "b 0 -3");
  check_raises_invalid "malformed" (fun () ->
      Profile_file.of_string ~graph:g "what is this")

(* ------------------------------------------------------------------ *)
(* Dot                                                                *)
(* ------------------------------------------------------------------ *)

let test_dot_structure () =
  let lc = loop_call () in
  let r = Graph.routine lc.g lc.caller in
  let s = Dot.routine_to_string lc.g ~loops:(Loops.find lc.g) r in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "digraph header" true (contains "digraph");
  check_bool "call stub present" true (contains "callee");
  check_bool "back edge highlighted" true (contains "color=red");
  check_bool "dashed call edge" true (contains "style=dashed")

let test_dot_weights_shading () =
  let lc = loop_call () in
  let weights = Array.make (Graph.block_count lc.g) 0.0 in
  weights.(lc.c1) <- 42.0;
  let r = Graph.routine lc.g lc.caller in
  let s = Dot.routine_to_string lc.g ~weights r in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "weight annotation" true (contains "42x");
  check_bool "executed shading" true (contains "lightyellow")

let test_dot_save () =
  let lc = loop_call () in
  let r = Graph.routine lc.g lc.caller in
  let path = Filename.temp_file "icache_dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.save_routine path lc.g r;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      check_bool "non-empty file" true (len > 0))

(* ------------------------------------------------------------------ *)
(* Stack distances                                                    *)
(* ------------------------------------------------------------------ *)

let test_stack_cyclic () =
  (* Cycling over 4 lines: after the cold pass every access has stack
     distance 3, so any capacity >= 4 lines only takes the cold misses and
     any capacity <= 2 (power-of-two resolution) misses everything. *)
  let t = Stack_dist.create ~line:32 () in
  for _ = 1 to 10 do
    for l = 0 to 3 do
      Stack_dist.access t ~addr:(l * 32) ~bytes:4
    done
  done;
  check_int "refs" 40 (Stack_dist.refs t);
  check_int "cold" 4 (Stack_dist.cold t);
  check_int "large cache: cold only" 4 (Stack_dist.misses_at t ~lines:4);
  check_int "huge cache same" 4 (Stack_dist.misses_at t ~lines:1024);
  check_int "tiny cache: everything misses" 40 (Stack_dist.misses_at t ~lines:2);
  check_raises_invalid "lines < 1" (fun () ->
      ignore (Stack_dist.misses_at t ~lines:0))

let test_stack_curve_monotone () =
  let t = Stack_dist.create ~line:32 () in
  let g = Prng.of_int 7 in
  for _ = 1 to 3000 do
    Stack_dist.access t ~addr:(32 * Prng.int g 600) ~bytes:4
  done;
  let curve = Stack_dist.curve t ~max_lines:1024 in
  check_int "eleven points" 11 (List.length curve);
  ignore
    (List.fold_left
       (fun prev (_, m) ->
         check_bool "monotone non-increasing" true (m <= prev);
         m)
       max_int curve);
  let _, last = List.nth curve (List.length curve - 1) in
  check_int "converges to cold misses" (Stack_dist.cold t) last

let test_stack_spanning_blocks () =
  let t = Stack_dist.create ~line:32 () in
  (* One 64-byte block touches two lines. *)
  Stack_dist.access t ~addr:0 ~bytes:64;
  check_int "two line refs" 2 (Stack_dist.refs t);
  check_int "both cold" 2 (Stack_dist.cold t)

let test_stack_matches_fa_simulation () =
  (* The stack-distance count at a power-of-two capacity must equal a
     fully-associative LRU simulation of the same stream. *)
  let g = Prng.of_int 21 in
  let addrs = Array.init 4000 (fun _ -> 32 * Prng.int g 700) in
  let t = Stack_dist.create ~line:32 () in
  Array.iter (fun addr -> Stack_dist.access t ~addr ~bytes:4) addrs;
  let lines = 64 in
  let sim = Sim.create (Config.v ~size:(lines * 32) ~assoc:lines ~line:32) in
  Array.iter
    (fun addr -> Sim.access sim ~os:true ~image:0 ~block:0 ~addr ~bytes:4)
    addrs;
  check_int "stack distances = fully-associative LRU"
    (Counters.misses (Sim.counters sim))
    (Stack_dist.misses_at t ~lines)

let test_stack_from_trace () =
  let ctx = small_ctx () in
  let layout = (Levels.build ctx Levels.Base).(0) in
  let t =
    Stack_dist.from_trace ~trace:ctx.Context.traces.(0)
      ~map:(Program_layout.code_map layout) ()
  in
  check_bool "saw references" true (Stack_dist.refs t > 0);
  check_bool "cold bounded by refs" true (Stack_dist.cold t < Stack_dist.refs t);
  let os_only =
    Stack_dist.from_trace ~trace:ctx.Context.traces.(0)
      ~map:(Program_layout.code_map layout) ~os_only:true ()
  in
  check_bool "os_only sees fewer refs" true
    (Stack_dist.refs os_only <= Stack_dist.refs t)

(* ------------------------------------------------------------------ *)
(* Trace_file                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_file_roundtrip () =
  let ctx = small_ctx () in
  let t0 = ctx.Context.traces.(0) in
  let path = Filename.temp_file "icache_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_file.save path t0;
      let t1 = Trace_file.load path in
      check_int "length preserved" (Trace.length t0) (Trace.length t1);
      let same = ref true in
      for i = 0 to Trace.length t0 - 1 do
        if Trace.get t0 i <> Trace.get t1 i then same := false
      done;
      check_bool "events identical" true !same)

let test_trace_file_replay_equivalent () =
  let ctx = small_ctx () in
  let t0 = ctx.Context.traces.(1) in
  let layout = (Levels.build ctx Levels.Base).(1) in
  let map = Program_layout.code_map layout in
  let misses trace =
    let system = System.unified (Config.make ~size_kb:8 ()) in
    Replay.run ~trace ~map ~systems:[| system |];
    Counters.misses (System.counters system)
  in
  let path = Filename.temp_file "icache_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_file.save path t0;
      check_int "round-tripped trace simulates identically" (misses t0)
        (misses (Trace_file.load path)))

let test_trace_file_bad_magic () =
  let path = Filename.temp_file "icache_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRAC";
      close_out oc;
      check_raises_invalid "bad magic rejected" (fun () ->
          ignore (Trace_file.load path)))

let test_trace_raw_roundtrip () =
  let t = Trace.create () in
  Trace.append t (Trace.Exec { image = 2; block = 99 });
  let v = Trace.raw t 0 in
  let t2 = Trace.create () in
  Trace.append_raw t2 v;
  check_bool "raw round-trips" true (Trace.get t2 0 = Trace.get t 0);
  check_raises_invalid "raw bounds" (fun () -> ignore (Trace.raw t 5))

(* ------------------------------------------------------------------ *)
(* Profile noise (Exp_noise)                                          *)
(* ------------------------------------------------------------------ *)

let test_noise_perturb () =
  let ctx = small_ctx () in
  let p = ctx.Context.avg_os_profile in
  let q = Exp_noise.perturb ~seed:5 ~spread:0.5 p in
  check_bool "zero counts stay zero" true
    (Array.for_all2
       (fun a b -> a > 0.0 || b = 0.0)
       p.Profile.block q.Profile.block);
  check_bool "positive counts stay positive" true
    (Array.for_all2 (fun a b -> a = 0.0 || b > 0.0) p.Profile.block q.Profile.block);
  let id = Exp_noise.perturb ~seed:5 ~spread:0.0 p in
  check_close 1e-6 "zero spread is the identity" p.Profile.total_blocks
    id.Profile.total_blocks

(* ------------------------------------------------------------------ *)
(* Cache-theory properties                                            *)
(* ------------------------------------------------------------------ *)

(* LRU inclusion: with the same number of sets and the same line size, a
   cache with more ways never misses more on the same access stream. *)
let prop_lru_inclusion =
  QCheck.Test.make ~name:"LRU inclusion in associativity" ~count:100
    QCheck.(list_of_size Gen.(1 -- 300) (int_bound 8191))
    (fun addrs ->
      let misses assoc =
        (* 8 sets of 32-byte lines. *)
        let s = Sim.create (Config.v ~size:(8 * 32 * assoc) ~assoc ~line:32) in
        List.iter
          (fun addr -> Sim.access s ~os:true ~image:0 ~block:0 ~addr ~bytes:4)
          addrs;
        Counters.misses (Sim.counters s)
      in
      let m1 = misses 1 and m2 = misses 2 and m4 = misses 4 in
      m2 <= m1 && m4 <= m2)

(* The miss classification partitions the misses. *)
let prop_classification_partitions =
  QCheck.Test.make ~name:"miss classes partition total misses" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (pair (int_bound 4095) bool))
    (fun accesses ->
      let s = Sim.create (Config.v ~size:512 ~assoc:2 ~line:16) in
      List.iter
        (fun (addr, os) ->
          Sim.access s ~os ~image:(if os then 0 else 1) ~block:0 ~addr ~bytes:4)
        accesses;
      let c = Sim.counters s in
      Counters.misses c
      = c.Counters.os_cold + c.Counters.os_self + c.Counters.os_cross
        + c.Counters.app_cold + c.Counters.app_self + c.Counters.app_cross)

(* Replaying the same trace twice without reset: the second pass has no
   cold misses (all lines were classified on the first pass). *)
let prop_second_pass_not_cold =
  QCheck.Test.make ~name:"second replay pass has no cold misses" ~count:50
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 2047))
    (fun addrs ->
      let s = Sim.create (Config.v ~size:256 ~assoc:1 ~line:32) in
      let replay () =
        List.iter
          (fun addr -> Sim.access s ~os:true ~image:0 ~block:0 ~addr ~bytes:4)
          addrs
      in
      replay ();
      let cold_first = (Sim.counters s).Counters.os_cold in
      Sim.reset_counters s;
      replay ();
      let cold_second = (Sim.counters s).Counters.os_cold in
      cold_second = 0 || cold_second < cold_first)

(* Profile conservation under averaging: the average of identical copies
   is the same distribution. *)
let prop_average_identity =
  QCheck.Test.make ~name:"averaging identical profiles is the identity" ~count:50
    QCheck.(list_of_size Gen.(1 -- 4) (int_range 1 1000))
    (fun scales ->
      let lc = loop_call () in
      let base =
        profile_of lc.g
          [ (lc.c0, 3.0); (lc.c1, 9.0); (lc.l0, 9.0) ]
          []
      in
      let copies =
        List.map (fun k -> Profile.scale_to base (float_of_int k)) scales
      in
      let avg = Profile.average copies in
      abs_float (Profile.block_fraction avg lc.c1 -. Profile.block_fraction base lc.c1)
      < 1e-9)

let () =
  Alcotest.run "tools"
    [
      ( "layout_file",
        [
          case "round-trip" test_layout_file_roundtrip;
          case "file io" test_layout_file_file_io;
          case "rejects garbage" test_layout_file_rejects_garbage;
          case "rejects size mismatch" test_layout_file_rejects_size_mismatch;
          case "rejects incomplete" test_layout_file_incomplete_rejected;
        ] );
      ( "profile_file",
        [
          case "round-trip" test_profile_file_roundtrip;
          case "same layout" test_profile_file_same_layout;
          case "file io" test_profile_file_file_io;
          case "rejects" test_profile_file_rejects;
        ] );
      ( "dot",
        [
          case "structure" test_dot_structure;
          case "weights shading" test_dot_weights_shading;
          case "save" test_dot_save;
        ] );
      ( "stack_dist",
        [
          case "cyclic pattern" test_stack_cyclic;
          case "curve monotone" test_stack_curve_monotone;
          case "block spans lines" test_stack_spanning_blocks;
          case "matches FA simulation" test_stack_matches_fa_simulation;
          case "from trace" test_stack_from_trace;
        ] );
      ( "trace_file",
        [
          case "round-trip" test_trace_file_roundtrip;
          case "replay equivalent" test_trace_file_replay_equivalent;
          case "bad magic" test_trace_file_bad_magic;
          case "raw round-trip" test_trace_raw_roundtrip;
        ] );
      ("noise", [ case "perturb" test_noise_perturb ]);
      ( "cache-theory",
        [
          qcheck prop_lru_inclusion;
          qcheck prop_classification_partitions;
          qcheck prop_second_pass_not_cold;
          qcheck prop_average_identity;
        ] );
    ]
