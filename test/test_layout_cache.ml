open Helpers

(* The staged, memoized, parallel layout pipeline must be observationally
   identical to the monolithic uncached construction: for any level,
   geometry and job count, the per-workload `Program_layout.digest`s (the
   exact placement the simulator consumes) must match a build with every
   Layout_cache stage disabled — cold caches, warm caches and
   cross-parameter cache-hit paths included. *)

let digests layouts = Array.map Program_layout.digest layouts

let check_digests name a b =
  Alcotest.(check (array string)) name (digests a) (digests b)

(* Monolithic reference: every stage cache bypassed, strictly sequential. *)
let monolithic ctx ~params level =
  Layout_cache.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Layout_cache.set_enabled true)
    (fun () -> Levels.build_uncached ctx ~jobs:1 ~params level)

let stage name = List.assoc name (Layout_cache.stage_stats ())

(* --- staged == monolithic over a randomized grid ------------------- *)

let level_gen =
  QCheck.oneofl [ Levels.Base; Levels.CH; Levels.OptS; Levels.OptL; Levels.OptA ]

let prop_staged_equals_monolithic =
  QCheck.Test.make ~count:12 ~name:"staged+cached == monolithic digests"
    QCheck.(
      quad level_gen
        (oneofl [ 2048; 4096; 8192; 16384 ])
        (oneofl [ None; Some 0.25; Some 0.5; Some 1.0 ])
        (oneofl [ 1; 4 ]))
    (fun (level, cache_size, scf_cutoff, jobs) ->
      let ctx = Lazy.force small_context in
      let params = Opt.params ~cache_size ~scf_cutoff () in
      let reference = monolithic ctx ~params level in
      (* Cold staged build (fresh caches), then a warm rebuild that must be
         served entirely from the placement stage. *)
      Layout_cache.clear ();
      let cold = Levels.build_uncached ctx ~jobs ~params level in
      let cold_totals = Layout_cache.totals () in
      let warm = Levels.build_uncached ctx ~jobs ~params level in
      digests reference = digests cold
      && digests cold = digests warm
      (* Base touches no cached stage; every other level must have built
         something into the cold caches. *)
      && (level = Levels.Base || cold_totals.Layout_cache.misses > 0))

(* --- cross-parameter sharing: the sweep paths ---------------------- *)

(* A cache-size sweep changes only placement inputs: the sequence and SCF
   stages must be served from cache, and the resulting layouts must still
   equal their monolithic references. *)
let test_geometry_sweep_shares_sequences () =
  let ctx = Lazy.force small_context in
  Layout_cache.clear ();
  ignore (Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.OptS);
  let seq0 = stage "sequences" in
  let scf0 = stage "scf" in
  let params = Opt.params ~cache_size:4096 () in
  let swept = Levels.build_uncached ctx ~jobs:1 ~params Levels.OptS in
  let seq1 = stage "sequences" in
  let scf1 = stage "scf" in
  check_int "cache-size sweep builds no new sequences" seq0.Layout_cache.misses
    seq1.Layout_cache.misses;
  check_bool "cache-size sweep hits the sequence cache" true
    (seq1.Layout_cache.hits > seq0.Layout_cache.hits);
  check_int "cache-size sweep reruns no SCF selection" scf0.Layout_cache.misses
    scf1.Layout_cache.misses;
  check_digests "swept geometry == monolithic" swept (monolithic ctx ~params Levels.OptS)

(* A SelfConfFree-cutoff sweep reruns selection but not sequences. *)
let test_cutoff_sweep_shares_sequences () =
  let ctx = Lazy.force small_context in
  Layout_cache.clear ();
  ignore (Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.OptS);
  let seq0 = stage "sequences" in
  let scf0 = stage "scf" in
  let params = Opt.params ~scf_cutoff:(Some 0.25) () in
  let swept = Levels.build_uncached ctx ~jobs:1 ~params Levels.OptS in
  let seq1 = stage "sequences" in
  let scf1 = stage "scf" in
  check_int "cutoff sweep builds no new sequences" seq0.Layout_cache.misses
    seq1.Layout_cache.misses;
  check_bool "cutoff sweep reruns SCF selection" true
    (scf1.Layout_cache.misses > scf0.Layout_cache.misses);
  check_digests "swept cutoff == monolithic" swept (monolithic ctx ~params Levels.OptS)

(* OptS and OptL share sequences (loop extraction only affects marking and
   placement); OptA's OS placement is OptS's, physically. *)
let test_cross_level_sharing () =
  let ctx = Lazy.force small_context in
  Layout_cache.clear ();
  let opt_s = Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.OptS in
  let seq0 = stage "sequences" in
  let opt_l = Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.OptL in
  let seq1 = stage "sequences" in
  check_int "OptL reuses OptS's sequences" seq0.Layout_cache.misses
    seq1.Layout_cache.misses;
  check_digests "OptL == its monolithic reference" opt_l
    (monolithic ctx ~params:(Opt.params ()) Levels.OptL);
  let opt_a = Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.OptA in
  check_bool "OptA's OS placement is physically OptS's" true
    (opt_a.(0).Program_layout.os_map == opt_s.(0).Program_layout.os_map)

(* Base application images are physically shared across workloads and
   levels: the same app appears in several programs, and rebuilding it
   per (workload, level) was pure waste. *)
let test_base_app_maps_shared () =
  let ctx = Lazy.force small_context in
  let base = Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.Base in
  let ch = Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.CH in
  (* Workloads 0 (trfd_4) and 1 (trfd_make) both run the trfd image. *)
  check_bool "same app image shares one map across workloads" true
    (base.(0).Program_layout.app_maps.(0) == base.(1).Program_layout.app_maps.(0));
  check_bool "same app image shares one map across levels" true
    (base.(0).Program_layout.app_maps.(0) == ch.(0).Program_layout.app_maps.(0))

(* --- loop detection under parallelism ------------------------------ *)

(* The old Program_layout.loops_cache was an unsynchronized global ref;
   Layout_cache.loops must hand every domain the same list. *)
let test_loops_race_free () =
  let model = Lazy.force small_model in
  Layout_cache.clear ();
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Program_layout.os_loops model))
  in
  let results = List.map Domain.join domains in
  let canonical = Program_layout.os_loops model in
  List.iteri
    (fun i l ->
      check_bool (Printf.sprintf "domain %d sees the canonical loop list" i) true
        (l == canonical))
    results

(* --- counter invariants (what `icache-opt validate` enforces) ------ *)

let test_counter_invariants () =
  let ctx = Lazy.force small_context in
  Layout_cache.clear ();
  ignore (Levels.build_uncached ctx ~jobs:4 ~params:(Opt.params ()) Levels.OptA);
  ignore (Levels.build_uncached ctx ~jobs:1 ~params:(Opt.params ()) Levels.OptA);
  List.iter
    (fun (name, (s : Layout_cache.stats)) ->
      check_bool (name ^ ": hits >= 0") true (s.Layout_cache.hits >= 0);
      check_bool (name ^ ": misses >= 0") true (s.Layout_cache.misses >= 0);
      check_bool (name ^ ": seconds >= 0") true (s.Layout_cache.seconds >= 0.0))
    (Layout_cache.stage_stats ());
  let t = Layout_cache.totals () in
  let by_stage =
    List.fold_left
      (fun (h, m) (_, (s : Layout_cache.stats)) ->
        (h + s.Layout_cache.hits, m + s.Layout_cache.misses))
      (0, 0) (Layout_cache.stage_stats ())
  in
  check_int "totals.hits = sum of stage hits" (fst by_stage) t.Layout_cache.hits;
  check_int "totals.misses = sum of stage misses" (snd by_stage) t.Layout_cache.misses;
  Layout_cache.reset_stats ();
  let z = Layout_cache.totals () in
  check_int "reset_stats zeroes hits" 0 z.Layout_cache.hits;
  check_int "reset_stats zeroes misses" 0 z.Layout_cache.misses

let () =
  Alcotest.run "layout_cache"
    [
      ( "equivalence",
        [
          qcheck prop_staged_equals_monolithic;
          case "cache-size sweep shares sequences" test_geometry_sweep_shares_sequences;
          case "cutoff sweep shares sequences" test_cutoff_sweep_shares_sequences;
          case "cross-level sharing (OptS/OptL/OptA)" test_cross_level_sharing;
          case "base app maps shared across workloads/levels"
            test_base_app_maps_shared;
        ] );
      ( "concurrency",
        [
          case "loop detection race-free" test_loops_race_free;
          case "counter invariants" test_counter_invariants;
        ] );
    ]
