open Helpers

(* Trace_log + Metrics_registry: the observability layer must (a) emit
   well-formed Chrome traces — balanced begin/end, non-negative durations,
   proper nesting per track — that round-trip through the Json parser,
   (b) record the same span/metric *structure* regardless of the worker
   domain count (timestamps and track assignment may differ; counts may
   not), and (c) cost nothing but a branch when disabled. *)

(* ------------------------------------------------------------------ *)
(* Span-stream well-formedness helpers                                *)
(* ------------------------------------------------------------------ *)

(* Replay the event stream against per-track stacks; returns the list of
   completed (name, duration_us) spans.  Fails the test on unbalanced or
   badly nested events. *)
let check_stream events =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref [] in
  List.iter
    (fun (e : Trace_log.event) ->
      let stack =
        match Hashtbl.find_opt stacks e.Trace_log.track with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks e.Trace_log.track s;
            s
      in
      if e.Trace_log.begin_ then stack := (e.name, e.ts) :: !stack
      else
        match !stack with
        | (n, t0) :: rest ->
            if n <> e.Trace_log.name then
              Alcotest.failf "track %d: end %S does not match open span %S"
                e.Trace_log.track e.Trace_log.name n;
            stack := rest;
            spans := (n, e.Trace_log.ts -. t0) :: !spans
        | [] ->
            Alcotest.failf "track %d: end %S with no open span" e.Trace_log.track
              e.Trace_log.name)
    events;
  Hashtbl.iter
    (fun track s ->
      if !s <> [] then Alcotest.failf "track %d: unclosed span(s)" track)
    stacks;
  List.rev !spans

let fresh () =
  Trace_log.reset ();
  Trace_log.set_enabled true

let quiesce () = Trace_log.set_enabled false

(* ------------------------------------------------------------------ *)
(* Unit: disabled fast path                                           *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  Trace_log.reset ();
  Trace_log.set_enabled false;
  let r = Trace_log.with_span "ghost" (fun () -> 41 + 1) in
  check_int "result passes through" 42 r;
  check_int "no events" 0 (List.length (Trace_log.events ()));
  check_int "no spans" 0 (Trace_log.span_count ())

let test_disabled_propagates_exceptions () =
  Trace_log.reset ();
  Trace_log.set_enabled false;
  (match Trace_log.with_span "ghost" (fun () -> failwith "boom") with
  | exception Failure m -> check_string "exception surfaces" "boom" m
  | _ -> Alcotest.fail "expected Failure");
  check_int "still no events" 0 (List.length (Trace_log.events ()))

(* ------------------------------------------------------------------ *)
(* Unit: span recording                                               *)
(* ------------------------------------------------------------------ *)

let test_span_records_pair () =
  fresh ();
  let r =
    Trace_log.with_span "outer" ~args:[ ("k", Json.Int 7) ] (fun () ->
        Trace_log.with_span "inner" (fun () -> "v"))
  in
  quiesce ();
  check_string "result" "v" r;
  let events = Trace_log.events () in
  check_int "four events" 4 (List.length events);
  (match events with
  | [ b_out; b_in; e_in; e_out ] ->
      check_string "outer begins first" "outer" b_out.Trace_log.name;
      check_bool "is begin" true b_out.Trace_log.begin_;
      check_string "inner nested" "inner" b_in.Trace_log.name;
      check_bool "inner end before outer end" true
        (e_in.Trace_log.name = "inner" && not e_in.Trace_log.begin_);
      check_bool "outer end last" true
        (e_out.Trace_log.name = "outer" && not e_out.Trace_log.begin_);
      check_bool "args preserved" true
        (b_out.Trace_log.args = [ ("k", Json.Int 7) ])
  | _ -> Alcotest.fail "unexpected event shape");
  let spans = check_stream events in
  check_int "two completed spans" 2 (List.length spans);
  List.iter
    (fun (n, d) -> check_bool (n ^ " duration >= 0") true (d >= 0.0))
    spans;
  check_int "span_count agrees" 2 (Trace_log.span_count ())

let test_span_end_recorded_on_raise () =
  fresh ();
  (try Trace_log.with_span "bang" (fun () -> failwith "x") with Failure _ -> ());
  quiesce ();
  ignore (check_stream (Trace_log.events ()));
  check_int "span completed despite raise" 1 (Trace_log.span_count ())

(* ------------------------------------------------------------------ *)
(* QCheck: random span forests are well-formed and round-trip          *)
(* ------------------------------------------------------------------ *)

type tree = Node of string * tree list

let tree_gen =
  QCheck.Gen.(
    sized_size (int_bound 20)
    @@ fix (fun self n ->
           let name = map (fun i -> "s" ^ string_of_int i) (int_bound 5) in
           if n = 0 then map (fun s -> Node (s, [])) name
           else
             map2
               (fun s kids -> Node (s, kids))
               name
               (list_size (int_bound 3) (self (n / 2)))))

let forest_arb =
  QCheck.make
    ~print:(fun f ->
      let rec pp (Node (s, kids)) =
        s ^ "(" ^ String.concat "," (List.map pp kids) ^ ")"
      in
      String.concat ";" (List.map pp f))
    QCheck.Gen.(list_size (int_bound 4) tree_gen)

let rec exec (Node (s, kids)) =
  Trace_log.with_span s (fun () -> List.iter exec kids)

let rec tree_size (Node (_, kids)) =
  1 + List.fold_left (fun acc k -> acc + tree_size k) 0 kids

let prop_forest_well_formed =
  QCheck.Test.make ~count:50 ~name:"random span forest: balanced, nested, json round-trips"
    forest_arb (fun forest ->
      fresh ();
      List.iter exec forest;
      quiesce ();
      let events = Trace_log.events () in
      let spans = check_stream events in
      let expected = List.fold_left (fun acc t -> acc + tree_size t) 0 forest in
      if List.length spans <> expected then
        QCheck.Test.fail_reportf "expected %d spans, got %d" expected
          (List.length spans);
      if not (List.for_all (fun (_, d) -> d >= 0.0) spans) then
        QCheck.Test.fail_report "negative span duration";
      (* The Chrome document must survive the Json emitter/parser pair
         both pretty-printed and minified. *)
      let doc = Trace_log.to_chrome () in
      (match Json.of_string (Json.to_string doc) with
      | Ok doc' when doc' = doc -> ()
      | Ok _ -> QCheck.Test.fail_report "chrome json drifted through round-trip"
      | Error e -> QCheck.Test.fail_reportf "chrome json does not parse: %s" e);
      (match Json.of_string (Json.to_string ~minify:true doc) with
      | Ok doc' when doc' = doc -> ()
      | _ -> QCheck.Test.fail_report "minified chrome json drifted");
      true)

(* ------------------------------------------------------------------ *)
(* Structure is identical under 1 and 4 worker domains                *)
(* ------------------------------------------------------------------ *)

(* A fixed fan-out workload with nested spans and metrics.  Timestamps
   and track ids legitimately differ between job counts; the span-name
   multiset and every metric count must not.  (parallel.* registry
   counters are excluded by construction: they measure the fan-out
   itself, which is exactly what varies.) *)
let parity_counter = Metrics_registry.counter "test.parity_items"
let parity_hist = Metrics_registry.histogram ~unit_:"units" "test.parity_obs"

let run_parity_workload ~jobs =
  let items = Array.init 12 (fun i -> i) in
  ignore
    (Parallel.map_array ~jobs
       (fun i x ->
         Trace_log.with_span "parity_outer" (fun () ->
             Metrics_registry.incr parity_counter;
             Metrics_registry.observe parity_hist (float_of_int (x + 1));
             Trace_log.with_span "parity_inner" (fun () -> (x * 2) + i)))
       items)

let span_name_counts () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace_log.event) ->
      if e.Trace_log.begin_ then
        Hashtbl.replace tbl e.Trace_log.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.Trace_log.name)))
    (Trace_log.events ());
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let hist_count name =
  match Json.member "histograms" (Metrics_registry.to_json ()) with
  | Some hs -> (
      match Option.bind (Json.member name hs) (Json.member "count") with
      | Some j -> Option.value ~default:(-1) (Json.to_int j)
      | None -> -1)
  | None -> -1

let test_jobs_parity () =
  let snapshot jobs =
    Metrics_registry.reset ();
    fresh ();
    run_parity_workload ~jobs;
    quiesce ();
    ignore (check_stream (Trace_log.events ()));
    ( span_name_counts (),
      Option.value ~default:(-1) (Metrics_registry.find_counter "test.parity_items"),
      hist_count "test.parity_obs" )
  in
  let spans1, counter1, hist1 = snapshot 1 in
  let spans4, counter4, hist4 = snapshot 4 in
  check_bool "span name counts identical under 1 and 4 jobs" true (spans1 = spans4);
  check_int "counter count identical" counter1 counter4;
  check_int "histogram count identical" hist1 hist4;
  check_int "counter saw every item" 12 counter1;
  check_bool "both span kinds present" true
    (spans1 = [ ("parity_inner", 12); ("parity_outer", 12) ])

let test_tracks_under_four_jobs () =
  fresh ();
  run_parity_workload ~jobs:4;
  quiesce ();
  let tracks =
    List.sort_uniq compare
      (List.map (fun (e : Trace_log.event) -> e.Trace_log.track) (Trace_log.events ()))
  in
  (* 12 items over 4 workers: every worker slot gets items, so all four
     worker tracks (1-4) record; the main domain records nothing here. *)
  check_bool "four worker tracks" true (tracks = [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Folded flamegraph export                                           *)
(* ------------------------------------------------------------------ *)

let test_folded_export () =
  fresh ();
  Trace_log.with_span "a" (fun () ->
      Trace_log.with_span "b" (fun () -> ());
      Trace_log.with_span "b" (fun () -> ()));
  quiesce ();
  let folded = Trace_log.to_folded () in
  let lines = String.split_on_char '\n' (String.trim folded) in
  check_int "two distinct stacks" 2 (List.length lines);
  check_bool "has a;b stack" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "a;b ") lines);
  check_bool "has root a stack" true
    (List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "a ") lines)

(* ------------------------------------------------------------------ *)
(* Histogram.percentile                                               *)
(* ------------------------------------------------------------------ *)

let test_percentile_linear () =
  let h = Histogram.linear ~lo:0 ~hi:100 ~bucket:1 in
  for v = 1 to 100 do
    Histogram.add h v
  done;
  check_close 1.0 "p50 of 1..100" 50.0 (Histogram.percentile h 0.5);
  check_close 1.0 "p90 of 1..100" 90.0 (Histogram.percentile h 0.9);
  check_close 1.0 "p99 of 1..100" 99.0 (Histogram.percentile h 0.99);
  check_close 1.0 "p0 clamps" 1.0 (Histogram.percentile h 0.0);
  check_close 1.0 "p100 clamps" 100.0 (Histogram.percentile h 1.0)

let test_percentile_edges () =
  let h = Histogram.linear ~lo:0 ~hi:10 ~bucket:1 in
  check_float "empty histogram is 0" 0.0 (Histogram.percentile h 0.5);
  Histogram.add_many h 3 1000;
  let p50 = Histogram.percentile h 0.5 in
  check_bool "single-bucket p50 inside [3,4)" true (p50 >= 3.0 && p50 < 4.0);
  (* p clamps into [0,1]; p=1 interpolates to the bucket's upper edge. *)
  check_bool "out-of-range p clamps" true
    (Histogram.percentile h (-1.0) >= 3.0 && Histogram.percentile h 2.0 <= 4.0)

let prop_percentile_monotone =
  QCheck.Test.make ~count:100 ~name:"percentiles are monotone in p"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 10_000))
    (fun samples ->
      let h = Histogram.log2 ~max_exp:20 in
      List.iter (Histogram.add h) samples;
      let p50 = Histogram.percentile h 0.5 in
      let p90 = Histogram.percentile h 0.9 in
      let p99 = Histogram.percentile h 0.99 in
      p50 <= p90 && p90 <= p99)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_registry_get_or_create () =
  let a = Metrics_registry.counter "test.reg_counter" in
  let b = Metrics_registry.counter "test.reg_counter" in
  Metrics_registry.incr a;
  Metrics_registry.incr ~by:4 b;
  check_int "one underlying counter" 5 (Metrics_registry.counter_value a);
  check_bool "find_counter sees it" true
    (Metrics_registry.find_counter "test.reg_counter" = Some 5);
  check_bool "unknown name is None" true
    (Metrics_registry.find_counter "test.no_such" = None);
  check_raises_invalid "kind clash rejected" (fun () ->
      Metrics_registry.histogram "test.reg_counter")

let test_registry_json_shape () =
  let h = Metrics_registry.histogram ~unit_:"widgets" "test.shape_hist" in
  List.iter (fun v -> Metrics_registry.observe h (float_of_int v)) [ 1; 2; 3; 4 ];
  let g = Metrics_registry.gauge "test.shape_gauge" in
  Metrics_registry.set_gauge g 2.5;
  let j = Metrics_registry.to_json () in
  let dig path =
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
  in
  check_bool "gauge exported" true
    (dig [ "gauges"; "test.shape_gauge" ] = Some (Json.Float 2.5));
  check_bool "hist count" true
    (dig [ "histograms"; "test.shape_hist"; "count" ] = Some (Json.Int 4));
  check_bool "hist unit" true
    (dig [ "histograms"; "test.shape_hist"; "unit" ] = Some (Json.String "widgets"));
  (match Option.bind (dig [ "histograms"; "test.shape_hist"; "mean" ]) Json.to_float with
  | Some m -> check_close 1e-9 "hist mean exact" 2.5 m
  | None -> Alcotest.fail "missing mean");
  (match Option.bind (dig [ "histograms"; "test.shape_hist"; "max" ]) Json.to_float with
  | Some m -> check_close 1e-9 "hist max exact" 4.0 m
  | None -> Alcotest.fail "missing max");
  (* The snapshot itself must round-trip like any manifest fragment. *)
  check_bool "metrics json round-trips" true
    (Json.of_string (Json.to_string j) = Ok j)

let test_observe_clamps_negative () =
  let h = Metrics_registry.histogram "test.clamp_hist" in
  Metrics_registry.observe h (-5.0);
  (* A clamped observation lands in the [0, 1) micro-unit bucket, so the
     interpolated percentile is at most one micro-unit. *)
  let p = Metrics_registry.percentile h 0.5 in
  check_bool "negative clamps to 0" true (p >= 0.0 && p <= 1e-6)

let () =
  Alcotest.run "trace_log"
    [
      ( "disabled",
        [
          case "records nothing" test_disabled_records_nothing;
          case "propagates exceptions" test_disabled_propagates_exceptions;
        ] );
      ( "spans",
        [
          case "begin/end pair with nesting and args" test_span_records_pair;
          case "end recorded when f raises" test_span_end_recorded_on_raise;
          case "folded flamegraph export" test_folded_export;
          qcheck prop_forest_well_formed;
        ] );
      ( "parallel",
        [
          case "span/metric counts identical under 1 and 4 jobs" test_jobs_parity;
          case "one track per worker under 4 jobs" test_tracks_under_four_jobs;
        ] );
      ( "percentiles",
        [
          case "linear 1..100" test_percentile_linear;
          case "edge cases" test_percentile_edges;
          qcheck prop_percentile_monotone;
        ] );
      ( "registry",
        [
          case "get-or-create and kind clash" test_registry_get_or_create;
          case "json snapshot shape" test_registry_json_shape;
          case "negative observations clamp" test_observe_clamps_negative;
        ] );
    ]
