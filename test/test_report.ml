open Helpers

(* Properties of the structured report layer: the JSON codec round-trips
   (both the generic Json printer/parser and the Result report codec),
   the CSV renderer honours its quoting rules, and the run Manifest
   upholds the invariants the `icache-opt validate` subcommand checks. *)

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

(* Finite floats only: NaN is not equal to itself and infinities have no
   JSON literal, so the codec contract excludes them. *)
let finite_float =
  QCheck.map
    (fun (mantissa, exp) -> mantissa *. (10.0 ** float_of_int exp))
    QCheck.(pair (float_bound_inclusive 1.0) (int_range (-6) 6))

let string_gen =
  (* Printable strings plus the CSV-hostile characters. *)
  QCheck.(string_gen_of_size Gen.(int_bound 12) Gen.(oneof [
    char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9';
    oneofl [ ' '; ','; '"'; '\n'; '%'; '-'; '_'; '.'; '|' ] ]))

let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
            map (fun f -> Json.Float f) (QCheck.gen finite_float);
            map (fun s -> Json.String s) (QCheck.gen string_gen);
          ]
      in
      if n <= 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4)
                   (pair (QCheck.gen string_gen) (self (n / 2)))) );
          ])

let json_arb = QCheck.make ~print:(fun j -> Json.to_string j) json_gen

let item_gen =
  let open QCheck.Gen in
  let cells = list_size (int_bound 4) (QCheck.gen string_gen) in
  oneof
    [
      map (fun s -> Result.Note s) (QCheck.gen string_gen);
      map (fun s -> Result.Paper_ref s) (QCheck.gen string_gen);
      map3
        (fun label value text -> Result.Scalar { label; value; text })
        (QCheck.gen string_gen) (QCheck.gen finite_float) (QCheck.gen string_gen);
      map2
        (fun label points -> Result.Series { label; points })
        (QCheck.gen string_gen)
        (list_size (int_bound 5)
           (pair (QCheck.gen string_gen) (QCheck.gen finite_float)));
      map3
        (fun title columns rows ->
          Result.Table { title; columns; rows })
        (opt (QCheck.gen string_gen))
        (list_size (int_bound 4)
           (pair (QCheck.gen string_gen) (oneofl [ Table.Left; Table.Right ])))
        (list_size (int_bound 4)
           (frequency
              [
                (4, map (fun c -> Table.Cells c) cells);
                (1, return Table.Separator);
              ]));
    ]

let report_gen =
  let open QCheck.Gen in
  map3
    (fun id section items -> Result.report ~id ~section items)
    (QCheck.gen string_gen) (QCheck.gen string_gen)
    (list_size (int_bound 6) item_gen)

let report_arb =
  QCheck.make ~print:(fun r -> Json.to_string (Result.to_json r)) report_gen

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                              *)
(* ------------------------------------------------------------------ *)

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Json.of_string inverts to_string" json_arb
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> j' = j
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let prop_json_roundtrip_minified =
  QCheck.Test.make ~count:300 ~name:"Json round-trip survives minify" json_arb
    (fun j ->
      match Json.of_string (Json.to_string ~minify:true j) with
      | Ok j' -> j' = j
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let prop_report_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Result.of_json inverts to_json" report_arb
    (fun r ->
      match Result.of_json (Result.to_json r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let prop_report_roundtrip_via_text =
  QCheck.Test.make ~count:300 ~name:"report JSON survives print/re-parse"
    report_arb (fun r ->
      let text = Result.render Result.Json r in
      match Json.of_string text with
      | Ok j -> (
          match Result.of_json j with
          | Ok r' -> r' = r
          | Error e -> QCheck.Test.fail_reportf "of_json: %s" e)
      | Error e -> QCheck.Test.fail_reportf "of_string: %s" e)

(* ------------------------------------------------------------------ *)
(* Renderer unit checks                                               *)
(* ------------------------------------------------------------------ *)

let test_text_rendering () =
  let r =
    Result.report ~id:"x" ~section:"demo section"
      [ Result.note "hello %d" 42; Result.paper "paper says 3" ]
  in
  let expect =
    Result.section_banner "demo section" ^ "  hello 42\n  [paper] paper says 3\n"
  in
  check_string "banner + note + paper" expect (Result.render_text r)

let test_scalar_text_is_verbatim () =
  let r =
    Result.report ~id:"x" ~section:"s"
      [ Result.scalar ~label:"peak" ~value:12.5 ~text:"peak share: 12.5%" ]
  in
  check_bool "scalar renders its text line" true
    (String.ends_with ~suffix:"  peak share: 12.5%\n" (Result.render_text r))

let test_csv_bare_table_undecorated () =
  let r =
    Result.report ~id:"sweep" ~section:"whatever"
      [
        Result.Table
          {
            title = None;
            columns = [ ("a", Table.Left); ("b", Table.Right) ];
            rows = [ Table.Cells [ "1"; "2" ]; Table.Cells [ "3"; "4" ] ];
          };
      ]
  in
  check_string "bare single table renders as plain CSV" "a,b\n1,2\n3,4\n"
    (Result.render Result.Csv r)

let test_csv_quoting () =
  let r =
    Result.report ~id:"q" ~section:"s"
      [
        Result.Table
          {
            title = None;
            columns = [ ("h", Table.Left) ];
            rows = [ Table.Cells [ "a,b" ]; Table.Cells [ "say \"hi\"" ] ];
          };
      ]
  in
  check_string "commas and quotes get quoted" "h\n\"a,b\"\n\"say \"\"hi\"\"\"\n"
    (Result.render Result.Csv r)

let test_format_of_string () =
  check_bool "text" true (Result.format_of_string "text" = Ok Result.Text);
  check_bool "JSON case-insensitive" true
    (Result.format_of_string "JSON" = Ok Result.Json);
  check_bool "csv" true (Result.format_of_string "csv" = Ok Result.Csv);
  check_bool "unknown rejected" true
    (match Result.format_of_string "yaml" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Manifest invariants                                                *)
(* ------------------------------------------------------------------ *)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "manifest: missing %s" name

let test_manifest_invariants () =
  (* Build a real context so the trace/levels/simulate stages and the
     Sim_cache counters are populated, then check exactly what
     `icache-opt validate` checks. *)
  let ctx = Lazy.force small_context in
  ignore
    (Runner.simulate ctx
       ~layouts:(Levels.build ctx Levels.Base)
       ~system:(fun () -> System.unified (Config.make ~size_kb:8 ()))
       ());
  let m = Manifest.to_json () in
  let version = Json.to_int (member "schema_version" m) in
  check_bool "schema_version >= 1" true (match version with Some v -> v >= 1 | None -> false);
  let stages =
    match member "stages" m with
    | Json.List l -> l
    | _ -> Alcotest.fail "stages is not a list"
  in
  check_bool "at least trace/levels/simulate stages" true
    (List.length stages >= 3);
  let stage_names =
    List.filter_map (fun s -> Json.to_str (member "name" s)) stages
  in
  List.iter
    (fun n ->
      check_bool (n ^ " stage present") true (List.mem n stage_names))
    [ "trace_capture"; "levels_build"; "simulate" ];
  List.iter
    (fun s ->
      let seconds = Json.to_float (member "seconds" s) in
      let count = Json.to_int (member "count" s) in
      check_bool "stage seconds >= 0" true
        (match seconds with Some x -> x >= 0.0 | None -> false);
      check_bool "stage count >= 1" true
        (match count with Some c -> c >= 1 | None -> false))
    stages;
  let sc = member "sim_cache" m in
  let geti n = match Json.to_int (member n sc) with
    | Some v -> v
    | None -> Alcotest.failf "sim_cache %s not an int" n
  in
  check_int "hits + misses = lookups" (geti "lookups") (geti "hits" + geti "misses");
  (* Schema v3: the layout object mirrors Layout_cache per stage. *)
  let lay = member "layout" m in
  (match member "stages" lay with
  | Json.List l ->
      List.iter
        (fun s ->
          let geti n =
            match Json.to_int (member n s) with
            | Some v -> v
            | None -> Alcotest.failf "layout stage %s not an int" n
          in
          check_int "layout hits + misses = lookups" (geti "lookups")
            (geti "hits" + geti "misses");
          check_bool "layout stage seconds >= 0" true
            (match Json.to_float (member "seconds" s) with
            | Some x -> x >= 0.0
            | None -> false))
        l
  | _ -> Alcotest.fail "layout stages is not a list")

let test_manifest_experiment_timing () =
  let ctx = Lazy.force small_context in
  let e = Experiments.find "fig9" in
  ignore (Experiments.compute e ctx);
  let m = Manifest.to_json () in
  let exps =
    match member "experiments" m with
    | Json.List l -> l
    | _ -> Alcotest.fail "experiments is not a list"
  in
  let entry =
    List.find_opt
      (fun e -> Json.to_str (member "id" e) = Some "fig9")
      exps
  in
  match entry with
  | None -> Alcotest.fail "fig9 missing from manifest experiments"
  | Some e ->
      check_bool "experiment seconds >= 0" true
        (match Json.to_float (member "seconds" e) with
        | Some s -> s >= 0.0
        | None -> false)

let () =
  Alcotest.run "report"
    [
      ( "roundtrip",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_json_roundtrip;
            prop_json_roundtrip_minified;
            prop_report_roundtrip;
            prop_report_roundtrip_via_text;
          ] );
      ( "renderers",
        [
          case "text banner/note/paper" test_text_rendering;
          case "scalar text verbatim" test_scalar_text_is_verbatim;
          case "csv bare table" test_csv_bare_table_undecorated;
          case "csv quoting" test_csv_quoting;
          case "format_of_string" test_format_of_string;
        ] );
      ( "manifest",
        [
          case "stage and sim-cache invariants" test_manifest_invariants;
          case "per-experiment timing" test_manifest_experiment_timing;
        ] );
    ]
