open Helpers

(* End-to-end tests over a traced context on the small kernel.  These
   exercise the whole pipeline (generation -> tracing -> profiling ->
   layout -> cache simulation) and pin down the paper's headline results
   in miniature. *)

let ctx () = Lazy.force small_context

let total_misses ctx level =
  let layouts = Levels.build ctx level in
  let runs =
    Runner.simulate ctx ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ()
  in
  Counters.misses (Runner.total runs)

(* ------------------------------------------------------------------ *)
(* Context                                                            *)
(* ------------------------------------------------------------------ *)

let test_context_shape () =
  let c = ctx () in
  check_int "four workloads" 4 (Context.workload_count c);
  check_int "four traces" 4 (Array.length c.Context.traces);
  check_int "four stats" 4 (Array.length c.Context.stats);
  Alcotest.(check (array string))
    "paper workload names"
    [| "TRFD_4"; "TRFD+Make"; "ARC2D+Fsck"; "Shell" |]
    (Context.workload_names c)

let test_context_profiles_match_traces () =
  let c = ctx () in
  Array.iteri
    (fun i trace ->
      let profile = c.Context.os_profiles.(i) in
      let execs = ref 0.0 in
      Trace.iter_exec trace (fun ~image ~block:_ ->
          if Program.is_os image then execs := !execs +. 1.0);
      check_close 1e-6 "profile counts the OS trace events" !execs
        profile.Profile.total_blocks)
    c.Context.traces

let test_context_determinism () =
  let a = Context.create ~spec:Spec.small ~words:30_000 ~seed:5 () in
  let b = Context.create ~spec:Spec.small ~words:30_000 ~seed:5 () in
  Array.iteri
    (fun i ta ->
      check_int "same trace length" (Trace.length ta)
        (Trace.length b.Context.traces.(i)))
    a.Context.traces;
  check_close 1e-9 "same average profile total"
    a.Context.avg_os_profile.Profile.total_blocks
    b.Context.avg_os_profile.Profile.total_blocks

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let test_runner_counters_consistent () =
  let c = ctx () in
  let layouts = Levels.build c Levels.Base in
  let runs =
    Runner.simulate c ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ()
  in
  check_int "one run per workload" 4 (Array.length runs);
  Array.iter
    (fun (r : Runner.run) ->
      let cnt = r.Runner.counters in
      check_bool "refs recorded" true (Counters.refs cnt > 0);
      check_bool "misses bounded" true (Counters.misses cnt <= Counters.refs cnt))
    runs;
  let total = Runner.total runs in
  check_int "total aggregates all runs"
    (Array.fold_left (fun acc (r : Runner.run) -> acc + Counters.misses r.Runner.counters) 0 runs)
    (Counters.misses total)

let test_runner_attribution () =
  let c = ctx () in
  let layouts = Levels.build c Levels.Base in
  let runs =
    Runner.simulate c ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ~attribute_os:true ()
  in
  Array.iter
    (fun (r : Runner.run) ->
      let attributed = Array.fold_left ( + ) 0 r.Runner.os_block_misses in
      check_int "attributed misses equal the OS miss counters"
        (Counters.os_misses r.Runner.counters)
        attributed)
    runs

let test_runner_warmup_reduces_cold () =
  let c = ctx () in
  let layouts = Levels.build c Levels.Base in
  let no_warm =
    Runner.simulate c ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ~warmup_fraction:0.0 ()
  in
  let warm =
    Runner.simulate c ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ~warmup_fraction:0.3 ()
  in
  Array.iteri
    (fun i (r : Runner.run) ->
      let cold_w = r.Runner.counters in
      let cold_n = no_warm.(i).Runner.counters in
      check_bool "warm-up removes cold misses" true
        (cold_w.Counters.os_cold <= cold_n.Counters.os_cold))
    warm

(* ------------------------------------------------------------------ *)
(* Headline results in miniature                                      *)
(* ------------------------------------------------------------------ *)

let test_opt_s_beats_base () =
  let c = ctx () in
  let base = total_misses c Levels.Base in
  let opt_s = total_misses c Levels.OptS in
  check_bool "OptS removes at least 25% of Base misses" true
    (float_of_int opt_s < 0.75 *. float_of_int base)

let test_ch_beats_base () =
  let c = ctx () in
  let base = total_misses c Levels.Base in
  let ch = total_misses c Levels.CH in
  check_bool "C-H removes misses too" true (ch < base)

let test_opt_s_comparable_to_ch () =
  let c = ctx () in
  let ch = total_misses c Levels.CH in
  let opt_s = total_misses c Levels.OptS in
  (* On the mini-kernel the margin is noisy; OptS must at least be in the
     same league as C-H (the full benchmark shows it winning). *)
  check_bool "OptS within 20% of C-H or better" true
    (float_of_int opt_s <= 1.2 *. float_of_int ch)

let test_opt_a_beats_opt_s () =
  (* On the mini-kernel, per-workload set alignment is noisy: OptA must be
     in the same league overall and strictly better somewhere (the
     full-size benchmark shows it at or below OptS for every workload). *)
  let c = ctx () in
  let per_level level =
    let layouts = Levels.build c level in
    let runs =
      Runner.simulate c ~layouts ~system:(fun () ->
          System.unified (Config.make ~size_kb:8 ()))
        ()
    in
    Array.map (fun (r : Runner.run) -> Counters.misses r.Runner.counters) runs
  in
  let s = per_level Levels.OptS and a = per_level Levels.OptA in
  let total arr = Array.fold_left ( + ) 0 arr in
  check_bool "OptA within 10% of OptS overall" true
    (float_of_int (total a) <= 1.1 *. float_of_int (total s));
  let better = ref false in
  Array.iteri (fun i ai -> if ai < s.(i) then better := true) a;
  check_bool "OptA strictly better for some workload" true !better

let test_larger_cache_fewer_misses () =
  let c = ctx () in
  let layouts = Levels.build c Levels.Base in
  let misses kb =
    let runs =
      Runner.simulate c ~layouts ~system:(fun () ->
          System.unified (Config.make ~size_kb:kb ()))
        ()
    in
    Counters.misses (Runner.total runs)
  in
  let m4 = misses 4 and m8 = misses 8 and m16 = misses 16 in
  check_bool "4KB worst" true (m4 > m8);
  check_bool "8KB worse than 16KB" true (m8 > m16)

let test_associativity_helps_base () =
  let c = ctx () in
  let layouts = Levels.build c Levels.Base in
  let misses assoc =
    let runs =
      Runner.simulate c ~layouts ~system:(fun () ->
          System.unified (Config.make ~size_kb:8 ~assoc ()))
        ()
    in
    Counters.misses (Runner.total runs)
  in
  check_bool "2-way below direct-mapped" true (misses 2 < misses 1)

let test_simulate_config_shortcut () =
  let c = ctx () in
  let layouts = Levels.build c Levels.Base in
  let a = Runner.simulate_config c ~layouts ~config:(Config.make ~size_kb:8 ()) () in
  let b =
    Runner.simulate c ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ()
  in
  Array.iteri
    (fun i (ra : Runner.run) ->
      check_int "same misses both ways"
        (Counters.misses b.(i).Runner.counters)
        (Counters.misses ra.Runner.counters))
    a

(* ------------------------------------------------------------------ *)
(* Seqstat (Table 2)                                                  *)
(* ------------------------------------------------------------------ *)

let test_seqstat_sets () =
  let c = ctx () in
  let model = c.Context.model in
  let g = Context.os_graph c in
  let seqs =
    Sequence.build ~graph:g ~profile:c.Context.avg_os_profile
      ~seed_entry:(fun s -> (Model.seed_for model s).Model.entry)
      ~schedule:Schedule.paper ()
  in
  let core = Seqstat.of_sequences g seqs ~budget_bytes:(8 * 1024) in
  let regular = Seqstat.of_sequences g seqs ~budget_bytes:(16 * 1024) in
  check_bool "budget respected" true (core.Seqstat.bytes <= 8 * 1024);
  check_bool "regular is a superset" true
    (regular.Seqstat.block_count >= core.Seqstat.block_count);
  Array.iteri
    (fun b in_core ->
      if in_core then
        check_bool "core subset of regular" true regular.Seqstat.member.(b))
    core.Seqstat.member;
  check_bool "spans routines" true (core.Seqstat.routine_count > 1)

let test_seqstat_predictability () =
  let c = ctx () in
  let model = c.Context.model in
  let g = Context.os_graph c in
  let seqs =
    Sequence.build ~graph:g ~profile:c.Context.avg_os_profile
      ~seed_entry:(fun s -> (Model.seed_for model s).Model.entry)
      ~schedule:Schedule.paper ()
  in
  let core = Seqstat.of_sequences g seqs ~budget_bytes:(8 * 1024) in
  let pred = Seqstat.predictability core ~trace:c.Context.traces.(0) in
  check_bool "probabilities in range" true
    (pred.Seqstat.to_any >= 0.0 && pred.Seqstat.to_any <= 1.0
   && pred.Seqstat.to_next >= 0.0 && pred.Seqstat.to_next <= 1.0);
  check_bool "to_any dominates to_next" true
    (pred.Seqstat.to_any >= pred.Seqstat.to_next -. 1e-9);
  (* Paper Table 2: staying inside the core set is near-certain. *)
  check_bool "high self-transition probability" true (pred.Seqstat.to_any > 0.8)

let test_seqstat_weight () =
  let c = ctx () in
  let model = c.Context.model in
  let g = Context.os_graph c in
  let seqs =
    Sequence.build ~graph:g ~profile:c.Context.avg_os_profile
      ~seed_entry:(fun s -> (Model.seed_for model s).Model.entry)
      ~schedule:Schedule.paper ()
  in
  let core = Seqstat.of_sequences g seqs ~budget_bytes:(8 * 1024) in
  let layouts = Levels.build c Levels.Base in
  let runs =
    Runner.simulate c ~layouts ~system:(fun () ->
        System.unified (Config.make ~size_kb:8 ()))
      ~attribute_os:true ()
  in
  let w =
    Seqstat.weight core ~graph:g ~profile:c.Context.os_profiles.(0)
      ~os_block_misses:runs.(0).Runner.os_block_misses
  in
  check_bool "percentages in range" true
    (w.Seqstat.static_pct >= 0.0 && w.Seqstat.static_pct <= 100.0
   && w.Seqstat.refs_pct >= 0.0 && w.Seqstat.refs_pct <= 100.0
   && w.Seqstat.misses_pct >= 0.0 && w.Seqstat.misses_pct <= 100.0);
  (* The paper's core sequences are few blocks but many references. *)
  check_bool "refs share exceeds static share" true
    (w.Seqstat.refs_pct > w.Seqstat.static_pct)

(* ------------------------------------------------------------------ *)
(* Experiments registry                                               *)
(* ------------------------------------------------------------------ *)

let test_experiments_registry () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  check_int "all experiments registered" 31 (List.length ids);
  check_int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      let e = Experiments.find id in
      check_string "find returns the experiment" id e.Experiments.id)
    ids;
  (match Experiments.find "no-such-experiment" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "find must reject unknown ids");
  List.iter
    (fun (e : Experiments.t) ->
      check_bool "titles non-empty" true (String.length e.Experiments.title > 0))
    Experiments.all

(* Run every experiment driver end-to-end on the small context (except
   [robust], which deliberately rebuilds full-size contexts).  Catches
   crashes in any table/figure/extension code path; the printed output
   goes to the test log. *)
let test_experiments_all_run () =
  let c = ctx () in
  List.iter
    (fun (e : Experiments.t) ->
      if e.Experiments.id <> "robust" then
        try Experiments.run e c
        with exn ->
          Alcotest.failf "experiment %s raised %s" e.Experiments.id
            (Printexc.to_string exn))
    Experiments.all

let () =
  Alcotest.run "integration"
    [
      ( "context",
        [
          case "shape" test_context_shape;
          case "profiles match traces" test_context_profiles_match_traces;
          case "determinism" test_context_determinism;
        ] );
      ( "runner",
        [
          case "counters consistent" test_runner_counters_consistent;
          case "attribution" test_runner_attribution;
          case "warmup" test_runner_warmup_reduces_cold;
          case "simulate_config" test_simulate_config_shortcut;
        ] );
      ( "headline",
        [
          case "OptS beats Base" test_opt_s_beats_base;
          case "C-H beats Base" test_ch_beats_base;
          case "OptS comparable to C-H" test_opt_s_comparable_to_ch;
          case "OptA beats OptS" test_opt_a_beats_opt_s;
          case "bigger caches help" test_larger_cache_fewer_misses;
          case "associativity helps" test_associativity_helps_base;
        ] );
      ( "seqstat",
        [
          case "sets" test_seqstat_sets;
          case "predictability" test_seqstat_predictability;
          case "weight" test_seqstat_weight;
        ] );
      ( "experiments",
        [
          case "registry" test_experiments_registry;
          case "all drivers run" test_experiments_all_run;
        ] );
    ]
