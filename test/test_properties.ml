open Helpers

(* Whole-pipeline property tests: random kernel specifications and random
   profiles must never break the generator's structural invariants or any
   layout algorithm's placement invariants. *)

(* Random scaled-down specs (kept small so each case is fast). *)
let spec_gen =
  QCheck.Gen.(
    let* seed = 0 -- 10_000 in
    let* leaf = 12 -- 16 in
    let* sub = 6 -- 20 in
    let* mid = 8 -- 30 in
    let* h0 = 2 -- 5 and* h1 = 1 -- 4 and* h2 = 2 -- 8 and* h3 = 1 -- 3 in
    let* cold = 10 -- 80 in
    return
      {
        Spec.small with
        Spec.seed;
        leaf_count = leaf;
        sub_mid_count = sub;
        mid_count = mid;
        handler_counts = [| h0; h1; h2; h3 |];
        cold_count = cold;
      })

let spec_arb = QCheck.make ~print:(fun s -> Printf.sprintf "spec seed=%d" s.Spec.seed) spec_gen

let prop_generator_invariants =
  QCheck.Test.make ~name:"random specs generate well-formed kernels" ~count:30
    spec_arb (fun spec ->
      let m = Generator.generate spec in
      let g = m.Model.graph in
      (* Every routine non-empty with its entry in range. *)
      Graph.iter_routines g (fun r ->
          assert (Routine.block_count r > 0);
          assert (Graph.routine_of_block g r.Routine.entry = r.Routine.id));
      (* Arc probabilities well-formed. *)
      Graph.iter_blocks g (fun b ->
          let arcs = Graph.out_arcs g b.Block.id in
          let sum = Array.fold_left (fun acc a -> acc +. m.Model.arc_prob.(a)) 0.0 arcs in
          assert (Array.length arcs = 0 || sum <= 1.0 +. 1e-6));
      (* Base order is a permutation. *)
      let sorted = Array.copy m.Model.base_order in
      Array.sort compare sorted;
      sorted = Array.init (Graph.routine_count g) Fun.id)

let prop_pipeline_layouts_valid =
  QCheck.Test.make ~name:"random kernels: every layout places every block once"
    ~count:10 spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(0) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:40_000 ~seed:spec.Spec.seed ~sink in
      let p = profiles.(0) in
      let g = m.Model.graph in
      let loops = Loops.find g in
      let check map =
        Address_map.validate map;
        Address_map.placed_count map = Graph.block_count g
      in
      check (Base.layout g ~order:m.Model.base_order)
      && check (Chang_hwu.layout g p)
      && check (Pettis_hansen.layout g p)
      && check (Opt.os_layout ~model:m ~profile:p ~loops (Opt.params ())).Opt.map
      && check
           (Opt.os_layout ~model:m ~profile:p ~loops
              (Opt.params ~extract_loops:true ()))
             .Opt.map
      && check (fst (Call_opt.layout ~model:m ~profile:p ())).Opt.map)

let prop_sequences_cover_executed =
  QCheck.Test.make ~name:"random kernels: sequences cover all executed blocks"
    ~count:10 spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(1) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:40_000 ~seed:spec.Spec.seed ~sink in
      let p = profiles.(0) in
      let g = m.Model.graph in
      let seqs =
        Sequence.build ~graph:g ~profile:p
          ~seed_entry:(fun c -> (Model.seed_for m c).Model.entry)
          ~schedule:Schedule.paper ()
      in
      let covered = Sequence.covered g seqs in
      let ok = ref true in
      Graph.iter_blocks g (fun b ->
          if Profile.executed p b.Block.id && not covered.(b.Block.id) then ok := false);
      !ok)

let prop_inline_engine_runs =
  QCheck.Test.make ~name:"random kernels: inlined models still trace" ~count:8
    spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(0) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:30_000 ~seed:1 ~sink in
      let inlined, _ = Inline.transform ~model:m ~profile:profiles.(0) () in
      let pairs' = Workload.standard_programs inlined in
      let w', program' = pairs'.(0) in
      let _, stats = Engine.capture ~program:program' ~workload:w' ~words:20_000 ~seed:2 in
      stats.Engine.total_words >= 20_000)

let prop_layout_file_roundtrip_random =
  QCheck.Test.make ~name:"random kernels: layout files round-trip" ~count:8
    spec_arb (fun spec ->
      let m = Generator.generate spec in
      let g = m.Model.graph in
      let map = Base.layout g ~order:m.Model.base_order in
      let map' = Layout_file.of_string ~graph:g (Layout_file.to_string ~graph:g map) in
      let ok = ref true in
      Graph.iter_blocks g (fun b ->
          if Address_map.addr map b.Block.id <> Address_map.addr map' b.Block.id then
            ok := false);
      !ok)

(* --- Sim_cache memo-key properties -------------------------------- *)

(* The digest must separate placements exactly: equal iff the placement
   the simulator consumes (absolute addresses and block sizes) is equal.
   Distinct layouts of random kernels must therefore never conflate. *)
let prop_digest_separates_layouts =
  QCheck.Test.make ~name:"random kernels: layout digest equal iff placement equal"
    ~count:10 spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(0) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:40_000 ~seed:spec.Spec.seed ~sink in
      let p = profiles.(0) in
      let layouts =
        [
          Program_layout.base ~model:m ~program;
          Program_layout.chang_hwu ~model:m ~program ~os_profile:p;
          Program_layout.opt_s ~model:m ~program ~os_profile:p ();
          Program_layout.opt_l ~model:m ~program ~os_profile:p ();
        ]
      in
      let placement l =
        let map = Program_layout.code_map l in
        (map.Replay.addr, map.Replay.bytes)
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              String.equal (Program_layout.digest a) (Program_layout.digest b)
              = (placement a = placement b))
            layouts)
        layouts)

(* Re-looking up a key already simulated must always hit and return the
   identical runs, for any cache geometry and layout level. *)
let prop_relookup_always_hits =
  QCheck.Test.make ~name:"sim-cache: identical lookups always hit" ~count:8
    QCheck.(
      quad (oneofl [ 4; 8; 16 ]) (oneofl [ 1; 2 ]) (oneofl [ 16; 32 ])
        (oneofl [ Levels.Base; Levels.CH; Levels.OptS ]))
    (fun (size_kb, assoc, line, level) ->
      let ctx = Lazy.force small_context in
      let layouts = Levels.build ctx level in
      let config = Config.make ~size_kb ~assoc ~line () in
      let r1 = Runner.simulate_config ctx ~layouts ~config () in
      let h0 = Sim_cache.hits () and m0 = Sim_cache.misses () in
      let r2 = Runner.simulate_config ctx ~layouts ~config () in
      Sim_cache.hits () = h0 + 1
      && Sim_cache.misses () = m0
      && Array.for_all2
           (fun (a : Runner.run) (b : Runner.run) ->
             a.Runner.counters = b.Runner.counters
             && a.Runner.os_block_misses = b.Runner.os_block_misses)
           r1 r2)

(* Distinct geometries must key separately even when layouts coincide:
   a geometry change can never return another geometry's runs. *)
let prop_distinct_configs_distinct_keys =
  QCheck.Test.make ~name:"sim-cache: distinct geometries never conflate" ~count:8
    QCheck.(pair (oneofl [ 4; 8; 16; 32 ]) (oneofl [ 1; 2; 4 ]))
    (fun (size_kb, assoc) ->
      let ctx = Lazy.force small_context in
      let layouts = Levels.build ctx Levels.Base in
      let digests = Array.map Program_layout.digest layouts in
      let key config =
        Sim_cache.key ~context:(Context.key ctx) ~layouts:digests ~config
          ~warmup_fraction:0.2 ~attribute_os:false
      in
      let k = key (Config.make ~size_kb ~assoc ()) in
      let k' = key (Config.make ~size_kb:(2 * size_kb) ~assoc ()) in
      let k'' = key (Config.make ~size_kb ~assoc ~policy:Config.Fifo ()) in
      k <> k' && k <> k'' && k' <> k'')

let () =
  Alcotest.run "properties"
    [
      ( "pipeline",
        [
          qcheck prop_generator_invariants;
          qcheck prop_pipeline_layouts_valid;
          qcheck prop_sequences_cover_executed;
          qcheck prop_inline_engine_runs;
          qcheck prop_layout_file_roundtrip_random;
        ] );
      ( "sim-cache",
        [
          qcheck prop_digest_separates_layouts;
          qcheck prop_relookup_always_hits;
          qcheck prop_distinct_configs_distinct_keys;
        ] );
    ]
