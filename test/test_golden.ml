open Helpers

(* Golden regression tests: every experiment, rendered through the typed
   Result reports and the memoized runner, must match the checked-in
   transcripts byte for byte.  The transcripts were captured from the
   pre-Result printing code, so these tests prove the Text renderer (and
   memoization, and parallelism) never silently changes paper numbers.

   To regenerate after an intended change:
     ICACHE_GOLDEN_WRITE=$PWD/test/golden dune exec test/test_golden.exe
   then inspect the diff and commit the new files. *)

let capture f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "icache_golden" ".txt" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do incr i done;
  !i

let golden name run () =
  let out = capture (fun () -> run (Lazy.force small_context)) in
  match Sys.getenv_opt "ICACHE_GOLDEN_WRITE" with
  | Some dir ->
      let path = Filename.concat dir (name ^ ".txt") in
      let oc = open_out_bin path in
      output_string oc out;
      close_out oc;
      Printf.eprintf "wrote %s (%d bytes)\n%!" path (String.length out)
  | None ->
      let path = Filename.concat "golden" (name ^ ".txt") in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "missing %s; regenerate with ICACHE_GOLDEN_WRITE=$PWD/test/golden" path;
      let expect = read_file path in
      if not (String.equal expect out) then begin
        let at = first_diff expect out in
        let context s =
          let lo = max 0 (at - 60) in
          String.sub s lo (min 120 (String.length s - lo))
        in
        Alcotest.failf
          "%s drifted from %s at byte %d (%d vs %d bytes)\n--- golden ---\n%s\n--- got ---\n%s"
          name path at (String.length expect) (String.length out)
          (context expect) (context out)
      end

(* The same run with span tracing enabled.  Tracing must be a pure
   observer: every transcript stays byte-identical to the checked-in
   golden file, which the untraced suite above already equals — so this
   suite proves traced == untraced for all experiments. *)
let traced name run () =
  Trace_log.reset ();
  Trace_log.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace_log.set_enabled false;
      Trace_log.reset ())
    (golden name run)

let () =
  Alcotest.run "golden"
    [
      ( "experiment-output",
        List.map
          (fun (e : Experiments.t) ->
            case
              (e.Experiments.id ^ " matches checked-in transcript")
              (golden e.Experiments.id (fun ctx -> Experiments.run e ctx)))
          Experiments.all );
      ( "experiment-output-traced",
        List.map
          (fun (e : Experiments.t) ->
            case
              (e.Experiments.id ^ " byte-identical with tracing enabled")
              (traced e.Experiments.id (fun ctx -> Experiments.run e ctx)))
          Experiments.all );
    ]
