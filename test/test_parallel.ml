open Helpers

(* The determinism harness for the parallel runner: simulating with 1
   domain and with N domains must be *bit-identical* — same counters,
   same per-block miss arrays, same captured traces event for event.
   Parallelism is only allowed to change wall-clock time, never results;
   these tests are run under both ICACHE_JOBS=1 and =4 by `make check`. *)

let config = Config.make ~size_kb:8 ()

(* Two contexts over the same (spec, words, seed): one captured strictly
   sequentially, one with four worker domains. *)
let ctx_seq = lazy (Context.create ~spec:Spec.small ~words:100_000 ~seed:7 ~jobs:1 ())
let ctx_par = lazy (Context.create ~spec:Spec.small ~words:100_000 ~seed:7 ~jobs:4 ())

let check_counters name (a : Counters.t) (b : Counters.t) =
  check_int (name ^ ": refs_os") a.Counters.refs_os b.Counters.refs_os;
  check_int (name ^ ": refs_app") a.Counters.refs_app b.Counters.refs_app;
  check_int (name ^ ": os_cold") a.Counters.os_cold b.Counters.os_cold;
  check_int (name ^ ": os_self") a.Counters.os_self b.Counters.os_self;
  check_int (name ^ ": os_cross") a.Counters.os_cross b.Counters.os_cross;
  check_int (name ^ ": app_cold") a.Counters.app_cold b.Counters.app_cold;
  check_int (name ^ ": app_self") a.Counters.app_self b.Counters.app_self;
  check_int (name ^ ": app_cross") a.Counters.app_cross b.Counters.app_cross

(* --- Runner.simulate: parallel == sequential ---------------------- *)

let test_runner_determinism () =
  let ctx = Lazy.force ctx_seq in
  let layouts = Levels.build ctx Levels.OptS in
  let simulate jobs =
    (* Through the uncached [simulate] entry point, so every job count
       actually replays rather than hitting Sim_cache. *)
    Runner.simulate ctx ~layouts
      ~system:(fun () -> System.unified config)
      ~attribute_os:true ~jobs ()
  in
  let seq = simulate 1 in
  check_int "one run per workload" (Context.workload_count ctx) (Array.length seq);
  List.iter
    (fun jobs ->
      let par = simulate jobs in
      check_int "same workload count" (Array.length seq) (Array.length par);
      Array.iteri
        (fun i (s : Runner.run) ->
          let p = par.(i) in
          let name = Printf.sprintf "workload %d, %d jobs" i jobs in
          check_counters name s.Runner.counters p.Runner.counters;
          check_bool (name ^ ": os_block_misses bit-identical") true
            (s.Runner.os_block_misses = p.Runner.os_block_misses))
        seq)
    [ 2; 3; 4 ]

let test_runner_totals () =
  let ctx = Lazy.force ctx_seq in
  let layouts = Levels.build ctx Levels.Base in
  let totals jobs =
    Runner.total
      (Runner.simulate ctx ~layouts
         ~system:(fun () -> System.unified config)
         ~jobs ())
  in
  check_counters "merged totals" (totals 1) (totals 4)

(* --- Context.create: parallel capture == sequential capture ------- *)

let test_context_traces_identical () =
  let a = Lazy.force ctx_seq and b = Lazy.force ctx_par in
  check_int "same workload count" (Context.workload_count a)
    (Context.workload_count b);
  check_string "same context key" (Context.key a) (Context.key b);
  Array.iteri
    (fun i ta ->
      let tb = b.Context.traces.(i) in
      let name = Printf.sprintf "workload %d" i in
      check_int (name ^ ": trace length") (Trace.length ta) (Trace.length tb);
      let mismatch = ref (-1) in
      for k = Trace.length ta - 1 downto 0 do
        if Trace.raw ta k <> Trace.raw tb k then mismatch := k
      done;
      if !mismatch >= 0 then
        Alcotest.failf "%s: traces diverge at event %d" name !mismatch)
    a.Context.traces

let test_context_stats_identical () =
  let a = Lazy.force ctx_seq and b = Lazy.force ctx_par in
  Array.iteri
    (fun i (sa : Engine.stats) ->
      let sb = b.Context.stats.(i) in
      let name = Printf.sprintf "workload %d" i in
      check_int (name ^ ": total words") sa.Engine.total_words sb.Engine.total_words;
      check_int (name ^ ": os words") sa.Engine.os_words sb.Engine.os_words;
      check_int (name ^ ": app words") sa.Engine.app_words sb.Engine.app_words;
      check_int (name ^ ": context switches") sa.Engine.context_switches
        sb.Engine.context_switches;
      check_bool (name ^ ": invocation mix") true
        (sa.Engine.invocations = sb.Engine.invocations))
    a.Context.stats

let test_context_profiles_identical () =
  let a = Lazy.force ctx_seq and b = Lazy.force ctx_par in
  Array.iteri
    (fun i (pa : Profile.t) ->
      let pb = b.Context.os_profiles.(i) in
      let name = Printf.sprintf "workload %d" i in
      check_bool (name ^ ": OS block weights") true (pa.Profile.block = pb.Profile.block);
      check_bool (name ^ ": OS arc weights") true (pa.Profile.arc = pb.Profile.arc);
      check_float (name ^ ": invocations") pa.Profile.invocations pb.Profile.invocations)
    a.Context.os_profiles;
  check_bool "averaged OS profile" true
    (a.Context.avg_os_profile.Profile.block = b.Context.avg_os_profile.Profile.block)

(* --- Sim_cache: memoized replay returns the same runs ------------- *)

let test_sim_cache_roundtrip () =
  let ctx = Lazy.force ctx_seq in
  let layouts = Levels.build ctx Levels.CH in
  let cfg = Config.make ~size_kb:4 () in
  let r1 = Runner.simulate_config ctx ~layouts ~config:cfg ~attribute_os:true () in
  let h0 = Sim_cache.hits () and m0 = Sim_cache.misses () in
  let r2 = Runner.simulate_config ctx ~layouts ~config:cfg ~attribute_os:true () in
  check_int "re-lookup is a hit" (h0 + 1) (Sim_cache.hits ());
  check_int "re-lookup is not a miss" m0 (Sim_cache.misses ());
  Array.iteri
    (fun i (a : Runner.run) ->
      let b = r2.(i) in
      let name = Printf.sprintf "cached workload %d" i in
      check_counters name a.Runner.counters b.Runner.counters;
      check_bool (name ^ ": os_block_misses") true
        (a.Runner.os_block_misses = b.Runner.os_block_misses))
    r1

let test_sim_cache_copies () =
  let ctx = Lazy.force ctx_seq in
  let layouts = Levels.build ctx Levels.CH in
  let cfg = Config.make ~size_kb:4 () in
  let r1 = Runner.simulate_config ctx ~layouts ~config:cfg () in
  let refs_before = Counters.refs r1.(0).Runner.counters in
  (* Mutating what a caller got back must not poison the cache. *)
  Counters.reset r1.(0).Runner.counters;
  let r2 = Runner.simulate_config ctx ~layouts ~config:cfg () in
  check_int "cache unaffected by caller mutation" refs_before
    (Counters.refs r2.(0).Runner.counters)

let () =
  Alcotest.run "parallel"
    [
      ( "runner-determinism",
        [
          case "N domains == 1 domain (counters, per-block misses)"
            test_runner_determinism;
          case "merged totals identical across job counts" test_runner_totals;
        ] );
      ( "context-determinism",
        [
          case "parallel trace capture identical event-for-event"
            test_context_traces_identical;
          case "engine stats identical" test_context_stats_identical;
          case "profiles identical" test_context_profiles_identical;
        ] );
      ( "sim-cache",
        [
          case "re-lookup hits and returns identical runs" test_sim_cache_roundtrip;
          case "cached entries are isolated from caller mutation"
            test_sim_cache_copies;
        ] );
    ]
