(* icache-opt: command-line driver for the reproduction pipeline.

   Subcommands:
     list         - list the reproduced tables and figures
     repro        - run experiments (all, or by id); --format text|json|csv
     simulate     - simulate one workload/layout/cache combination
     characterize - print the kernel and workload characterization
     validate     - check a repro JSON document (reports + manifest) *)

open Cmdliner

let words_arg =
  let doc = "Instruction words to trace per workload." in
  Arg.(value & opt int 2_000_000 & info [ "words" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Engine seed (the kernel itself is always built from the spec seed)." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let small_arg =
  let doc = "Use the scaled-down test kernel instead of the calibrated one." in
  Arg.(value & flag & info [ "small" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for trace capture and simulation (default: \
     $(b,ICACHE_JOBS) or the core count).  Results are identical for every \
     value; only wall-clock changes."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Both converters funnel every CLI spelling through the library's single
   parser, so the accepted names cannot drift between subcommands. *)
let level_conv =
  let parse s =
    match Levels.of_string s with Ok l -> Ok l | Error e -> Error (`Msg e)
  in
  let print ppf l = Format.pp_print_string ppf (Levels.to_string l) in
  Arg.conv ~docv:"LEVEL" (parse, print)

let format_conv =
  let parse s =
    match Result.format_of_string s with Ok f -> Ok f | Error e -> Error (`Msg e)
  in
  let print ppf f = Format.pp_print_string ppf (Result.format_to_string f) in
  Arg.conv ~docv:"FORMAT" (parse, print)

(* Malformed --trace document; both trace-summary and validate turn this
   into their own error reporting. *)
exception Trace_error of string

let tfail fmt = Printf.ksprintf (fun s -> raise (Trace_error s)) fmt

(* Decode the traceEvents list of a Chrome trace document into
   (name, phase, ts, tid) tuples, in file order (which is the recording
   order).  Raises {!Trace_error} on shape problems. *)
let chrome_events doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List l) ->
      List.mapi
        (fun i e ->
          let str field =
            match Option.bind (Json.member field e) Json.to_str with
            | Some s -> s
            | None -> tfail "event %d: missing %s" i field
          in
          let name = str "name" in
          let ph = str "ph" in
          let ts =
            match Option.bind (Json.member "ts" e) Json.to_float with
            | Some f -> f
            | None -> tfail "event %d (%s): missing ts" i name
          in
          let tid =
            match Option.bind (Json.member "tid" e) Json.to_int with
            | Some t -> t
            | None -> tfail "event %d (%s): missing tid" i name
          in
          (name, ph, ts, tid))
        l
  | _ -> tfail "trace: missing traceEvents list"

(* Replay a decoded event stream against per-track span stacks, calling
   [on_span name tid dur_us] for every balanced begin/end pair; raises
   {!Trace_error} on malformed nesting.  Returns the open stacks for the
   caller to check emptiness. *)
let fold_spans ~on_span events =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (name, ph, ts, tid) ->
      let stack =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks tid s;
            s
      in
      match ph with
      | "B" -> stack := (name, ts) :: !stack
      | "E" -> (
          match !stack with
          | (n, t0) :: rest when n = name ->
              stack := rest;
              on_span name tid (ts -. t0)
          | (n, _) :: _ ->
              tfail "track %d: end of %S does not match innermost open span %S" tid
                name n
          | [] -> tfail "track %d: end of %S with no open span" tid name)
      | other -> tfail "event %s: unsupported phase %S" name other)
    events;
  stacks

let trace_arg =
  let doc =
    "Record a span timeline of the run and write it to $(docv) as Chrome \
     trace-event JSON (one track per worker domain; open in Perfetto or \
     chrome://tracing, or summarize with $(b,icache-opt trace-summary))."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let make_context ~small ~words ~seed ~jobs =
  Option.iter Parallel.set_jobs jobs;
  let spec = if small then Spec.small else Spec.default in
  Context.create ~spec ~words ~seed ()

let write_manifest path =
  Out.with_file path (fun oc ->
      output_string oc (Json.to_string (Manifest.to_json ()));
      output_char oc '\n')

(* The trace document is the Chrome trace plus the metrics snapshot under
   an extra key viewers ignore, so one artifact carries both the timeline
   and the histogram/counter summary trace-summary prints. *)
let start_trace trace = if trace <> None then Trace_log.set_enabled true

let finish_trace trace =
  Option.iter
    (fun path ->
      Out.with_file path (fun oc ->
          (* Minified: traces carry thousands of events and viewers never
             show the raw text. *)
          output_string oc
            (Json.to_string ~minify:true
               (Trace_log.to_chrome
                  ~extra:[ ("metrics", Metrics_registry.to_json ()) ]
                  ()));
          output_char oc '\n');
      (* stderr: stdout may be a piped JSON report stream. *)
      if path <> "-" then
        Printf.eprintf "wrote %s (%d spans; open in https://ui.perfetto.dev)\n%!"
          path (Trace_log.span_count ()))
    trace

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.t) ->
        Printf.printf "  %-8s %s\n" e.Experiments.id e.Experiments.title)
      Experiments.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the reproduced tables and figures")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* repro                                                              *)
(* ------------------------------------------------------------------ *)

let repro_cmd =
  let ids_arg =
    let doc = "Experiment ids (e.g. table1 fig12); all when omitted." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let format_arg =
    let doc = "Output format: text (the classic transcript), json or csv." in
    Arg.(value & opt format_conv Result.Text & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let out_arg =
    let doc =
      "Write one file per experiment (ID.txt/ID.json/ID.csv) plus \
       manifest.json into this directory instead of printing to stdout."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let run words seed small jobs format out trace ids =
    start_trace trace;
    let ctx = make_context ~small ~words ~seed ~jobs in
    let exps =
      match ids with
      | [] -> Experiments.all
      | ids ->
          List.map
            (fun id ->
              match Experiments.find id with
              | e -> e
              | exception Not_found ->
                  Printf.eprintf "unknown experiment %S; try 'icache-opt list'\n" id;
                  exit 1)
            ids
    in
    (match out with
    | Some dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        List.iter
          (fun e ->
            let r = Experiments.compute e ctx in
            let path =
              Filename.concat dir (r.Result.id ^ "." ^ Result.extension format)
            in
            Out.with_file path (fun oc -> output_string oc (Result.render format r));
            Printf.printf "wrote %s\n%!" path)
          exps;
        let mpath = Filename.concat dir "manifest.json" in
        write_manifest mpath;
        Printf.printf "wrote %s\n%!" mpath
    | None -> (
        match format with
        | Result.Text -> List.iter (fun e -> Experiments.run e ctx) exps
        | Result.Json ->
            (* One document: every report plus the run manifest, so a
               single pipe carries both the results and the provenance. *)
            let reports = List.map (fun e -> Experiments.compute e ctx) exps in
            let doc =
              Json.Obj
                [
                  ("reports", Json.List (List.map Result.to_json reports));
                  ("manifest", Manifest.to_json ());
                ]
            in
            print_string (Json.to_string doc);
            print_newline ()
        | Result.Csv ->
            List.iter
              (fun e ->
                print_string (Result.render Result.Csv (Experiments.compute e ctx)))
              exps));
    finish_trace trace
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Regenerate the paper's tables and figures")
    Term.(
      const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ format_arg
      $ out_arg $ trace_arg $ ids_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let workload_arg =
    let doc = "Workload index 0-3 (TRFD_4, TRFD+Make, ARC2D+Fsck, Shell)." in
    Arg.(value & opt int 0 & info [ "w"; "workload" ] ~docv:"I" ~doc)
  in
  let level_arg =
    let doc = "Layout level: base, ch, opts, optl or opta." in
    Arg.(value & opt level_conv Levels.OptS & info [ "l"; "level" ] ~docv:"LEVEL" ~doc)
  in
  let size_arg =
    let doc = "Cache size in KB (power of two)." in
    Arg.(value & opt int 8 & info [ "size-kb" ] ~docv:"KB" ~doc)
  in
  let assoc_arg =
    let doc = "Associativity (power of two; 1 = direct-mapped)." in
    Arg.(value & opt int 1 & info [ "assoc" ] ~docv:"WAYS" ~doc)
  in
  let line_arg =
    let doc = "Line size in bytes (power of two)." in
    Arg.(value & opt int 32 & info [ "line" ] ~docv:"BYTES" ~doc)
  in
  let run words seed small jobs w level size_kb assoc line =
    let ctx = make_context ~small ~words ~seed ~jobs in
    if w < 0 || w >= Context.workload_count ctx then begin
      Printf.eprintf "workload index out of range\n";
      exit 1
    end;
    let layouts = Levels.build ctx level in
    let config = Config.v ~size:(size_kb * 1024) ~assoc ~line in
    let runs =
      Runner.simulate ctx ~layouts
        ~system:(fun () -> System.unified config)
        ()
    in
    let c = runs.(w).Runner.counters in
    Printf.printf "workload %s, layout %s, cache %s\n"
      (Context.workload_names ctx).(w) (Levels.to_string level)
      (Config.to_string config);
    Printf.printf "  references  %12d words\n" (Counters.refs c);
    Printf.printf "  misses      %12d (%.3f%%)\n" (Counters.misses c)
      (100.0 *. Counters.miss_rate c);
    Printf.printf "    OS:  cold %d, self %d, cross %d\n" c.Counters.os_cold
      c.Counters.os_self c.Counters.os_cross;
    Printf.printf "    app: cold %d, self %d, cross %d\n" c.Counters.app_cold
      c.Counters.app_self c.Counters.app_cross
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one workload / layout / cache combination")
    Term.(
      const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ workload_arg
      $ level_arg $ size_arg $ assoc_arg $ line_arg)

(* ------------------------------------------------------------------ *)
(* layout                                                             *)
(* ------------------------------------------------------------------ *)

let layout_cmd =
  let out_arg =
    let doc = "Write the layout map here ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let level_arg =
    let doc = "Layout to emit: base, ch, opts, optl or opta." in
    Arg.(value & opt level_conv Levels.OptS & info [ "l"; "level" ] ~docv:"LEVEL" ~doc)
  in
  let run words seed small jobs level out =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let model = ctx.Context.model in
    let g = Context.os_graph ctx in
    let profile = ctx.Context.avg_os_profile in
    let map =
      match level with
      | Levels.Base -> Base.layout g ~order:model.Model.base_order
      | Levels.CH -> Chang_hwu.layout g profile
      | Levels.OptS | Levels.OptA ->
          (* OptA differs from OptS only on the application images; the OS
             map this subcommand emits is the same. *)
          (Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx)
             (Opt.params ()))
            .Opt.map
      | Levels.OptL ->
          (Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx)
             (Opt.params ~extract_loops:true ()))
            .Opt.map
    in
    Out.with_file out (fun oc -> Layout_file.write_channel oc ~graph:g map);
    if out <> "-" then
      Printf.printf "wrote %s (%d blocks, extent %d bytes)\n" out
        (Address_map.placed_count map) (Address_map.extent map)
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Emit a kernel code placement as a linker-map-like file")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ level_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let routine_arg =
    let doc = "Routine name to draw (e.g. clock_intr)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ROUTINE" ~doc)
  in
  let out_arg =
    let doc = "Output .dot file ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small jobs name out =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let g = Context.os_graph ctx in
    let found = ref None in
    Graph.iter_routines g (fun r ->
        if r.Routine.name = name then found := Some r);
    match !found with
    | None ->
        Printf.eprintf "no routine named %S\n" name;
        exit 1
    | Some r ->
        let s =
          Dot.routine_to_string g
            ~weights:ctx.Context.avg_os_profile.Profile.block
            ~loops:(Context.os_loops ctx) r
        in
        Out.with_file out (fun oc -> output_string oc s);
        if out <> "-" then Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export one kernel routine's flow graph as Graphviz dot")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ routine_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                              *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let list_arg name default doc =
    Arg.(value & opt (list int) default & info [ name ] ~docv:"N,..." ~doc)
  in
  let sizes_arg = list_arg "sizes" [ 4; 8; 16; 32 ] "Cache sizes in KB." in
  let assocs_arg = list_arg "assocs" [ 1 ] "Associativities." in
  let lines_arg = list_arg "lines" [ 32 ] "Line sizes in bytes." in
  let levels_arg =
    let doc = "Layout levels (base, ch, opts, optl, opta)." in
    Arg.(
      value
      & opt (list level_conv) [ Levels.Base; Levels.OptS ]
      & info [ "levels" ] ~docv:"L,..." ~doc)
  in
  let format_arg =
    let doc = "Output format: csv (default), json or text." in
    Arg.(value & opt format_conv Result.Csv & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let out_arg =
    let doc = "Output file ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small jobs sizes assocs lines levels format out trace =
    start_trace trace;
    let ctx = make_context ~small ~words ~seed ~jobs in
    let columns =
      List.map
        (fun h -> (h, Table.Left))
        [
          "level"; "size_kb"; "assoc"; "line"; "workload"; "refs"; "misses";
          "miss_rate"; "os_self"; "os_cross"; "app_self"; "app_cross";
        ]
    in
    (* The whole cross-product is one batch: every geometry of a level
       shares that level's single replay pass per workload, so the trace
       decode cost is paid (levels x workloads) times, not
       (levels x sizes x assocs x lines x workloads) times. *)
    let specs =
      List.concat_map
        (fun level ->
          let layouts = Levels.build ctx level in
          List.concat_map
            (fun size_kb ->
              List.concat_map
                (fun assoc ->
                  List.map
                    (fun line ->
                      let config = Config.v ~size:(size_kb * 1024) ~assoc ~line in
                      (level, size_kb, assoc, line, (layouts, config)))
                    lines)
                assocs)
            sizes)
        levels
    in
    let batch =
      Runner.simulate_batch ctx
        ~members:(Array.of_list (List.map (fun (_, _, _, _, m) -> m) specs))
        ()
    in
    let rows = ref [] in
    List.iteri
      (fun m (level, size_kb, assoc, line, _member) ->
        Array.iteri
          (fun i (r : Runner.run) ->
            let c = r.Runner.counters in
            rows :=
              Table.Cells
                [
                  Levels.to_string level;
                  string_of_int size_kb;
                  string_of_int assoc;
                  string_of_int line;
                  (Context.workload_names ctx).(i);
                  string_of_int (Counters.refs c);
                  string_of_int (Counters.misses c);
                  Printf.sprintf "%.6f" (Counters.miss_rate c);
                  string_of_int c.Counters.os_self;
                  string_of_int c.Counters.os_cross;
                  string_of_int c.Counters.app_self;
                  string_of_int c.Counters.app_cross;
                ]
              :: !rows)
          batch.(m))
      specs;
    let report =
      Result.report ~id:"sweep" ~section:"cache/layout sweep"
        [ Result.Table { title = None; columns; rows = List.rev !rows } ]
    in
    Out.with_file out (fun oc -> output_string oc (Result.render format report));
    if out <> "-" then Printf.printf "wrote %s\n" out;
    finish_trace trace
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Cross-product cache/layout sweep, one CSV row per cell")
    Term.(
      const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ sizes_arg
      $ assocs_arg $ lines_arg $ levels_arg $ format_arg $ out_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                            *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let out_arg =
    let doc = "Write the averaged OS profile here ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small jobs out =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let g = Context.os_graph ctx in
    let p = ctx.Context.avg_os_profile in
    Out.with_file out (fun oc -> Profile_file.write_channel oc ~graph:g p);
    if out <> "-" then
      Printf.printf "wrote %s (%d executed blocks, %.0f invocations)\n" out
        (Profile.executed_block_count p) p.Profile.invocations
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Trace the four workloads and emit the averaged OS profile")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let workload_arg =
    let doc = "Workload index 0-3 (TRFD_4, TRFD+Make, ARC2D+Fsck, Shell)." in
    Arg.(value & opt int 0 & info [ "w"; "workload" ] ~docv:"I" ~doc)
  in
  let out_arg =
    let doc = "Binary trace output file." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small w out =
    let spec = if small then Spec.small else Spec.default in
    let model = Generator.generate spec in
    let pairs = Workload.standard_programs model in
    if w < 0 || w >= Array.length pairs then begin
      Printf.eprintf "workload index out of range\n";
      exit 1
    end;
    let workload, program = pairs.(w) in
    let trace, stats = Engine.capture ~program ~workload ~words ~seed in
    Trace_file.save out trace;
    Printf.printf "wrote %s: %d events, %d instruction words (%s)\n" out
      (Trace.length trace) stats.Engine.total_words workload.Workload.name
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Capture one workload's instruction trace to a binary file")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ workload_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* characterize                                                       *)
(* ------------------------------------------------------------------ *)

let characterize_cmd =
  let run words seed small jobs =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let g = Context.os_graph ctx in
    Printf.printf "kernel: %d routines, %d blocks, %d bytes of code\n"
      (Graph.routine_count g) (Graph.block_count g) (Graph.code_bytes g);
    Array.iteri
      (fun i ((w : Workload.t), _) ->
        let p = ctx.Context.os_profiles.(i) in
        let s = ctx.Context.stats.(i) in
        Printf.printf "%-12s OS words %9d  invocations %6d  executed %6d bytes (%4.1f%%)\n"
          w.Workload.name s.Engine.os_words
          (Array.fold_left ( + ) 0 s.Engine.invocations)
          (Profile.executed_bytes p g)
          (Stats.pct (Profile.executed_bytes p g) (Graph.code_bytes g)))
      ctx.Context.pairs
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Summarize the kernel and the traced workloads")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* trace-summary                                                      *)
(* ------------------------------------------------------------------ *)

let trace_summary_cmd =
  let file_arg =
    let doc = "Chrome trace JSON written by --trace ('-' = stdin)." in
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "How many spans to print (by total time)." in
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run file top =
    let fail msg =
      Printf.eprintf "trace-summary: %s\n" msg;
      exit 1
    in
    let text =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_bin file In_channel.input_all
    in
    let doc = match Json.of_string text with Ok d -> d | Error e -> fail e in
    let events = try chrome_events doc with Trace_error e -> fail e in
    (* name -> (count, total us, max us) *)
    let totals : (string, int * float * float) Hashtbl.t = Hashtbl.create 32 in
    let tracks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun (_, _, _, tid) -> Hashtbl.replace tracks tid ()) events;
    (try
       ignore
         (fold_spans
            ~on_span:(fun name _tid dur ->
              let c, t, m =
                match Hashtbl.find_opt totals name with
                | Some x -> x
                | None -> (0, 0.0, 0.0)
              in
              Hashtbl.replace totals name (c + 1, t +. dur, Float.max m dur))
            events)
     with Trace_error e -> fail e);
    let rows = Hashtbl.fold (fun n x acc -> (n, x) :: acc) totals [] in
    let rows =
      List.sort (fun (_, (_, a, _)) (_, (_, b, _)) -> compare b a) rows
    in
    let span_total = List.fold_left (fun acc (_, (_, t, _)) -> acc +. t) 0.0 rows in
    Printf.printf "%d events, %d spans on %d track(s), %.2fs of span time\n\n"
      (List.length events)
      (List.fold_left (fun acc (_, (c, _, _)) -> acc + c) 0 rows)
      (Hashtbl.length tracks) (span_total /. 1e6);
    Printf.printf "  %10s %8s %12s %12s  %s\n" "total s" "count" "mean ms" "max ms" "span";
    List.iteri
      (fun i (name, (count, total, max_us)) ->
        if i < top then
          Printf.printf "  %10.3f %8d %12.3f %12.3f  %s\n" (total /. 1e6) count
            (total /. float_of_int count /. 1e3)
            (max_us /. 1e3) name)
      rows;
    match Json.member "metrics" doc with
    | None -> ()
    | Some mx ->
        (match Json.member "counters" mx with
        | Some (Json.Obj kvs) when kvs <> [] ->
            Printf.printf "\ncounters:\n";
            List.iter
              (fun (n, v) ->
                match Json.to_int v with
                | Some i -> Printf.printf "  %-32s %12d\n" n i
                | None -> ())
              kvs
        | _ -> ());
        (match Json.member "histograms" mx with
        | Some (Json.Obj hs) when hs <> [] ->
            Printf.printf "\nhistograms:\n";
            Printf.printf "  %-32s %8s %12s %12s %12s %12s  %s\n" "" "count" "mean"
              "p50" "p90" "p99" "unit";
            List.iter
              (fun (n, h) ->
                let f field =
                  match Option.bind (Json.member field h) Json.to_float with
                  | Some x -> x
                  | None -> 0.0
                in
                let unit_ =
                  Option.value ~default:""
                    (Option.bind (Json.member "unit" h) Json.to_str)
                in
                let count =
                  match Option.bind (Json.member "count" h) Json.to_int with
                  | Some c -> c
                  | None -> 0
                in
                Printf.printf "  %-32s %8d %12.4g %12.4g %12.4g %12.4g  %s\n" n
                  count (f "mean") (f "p50") (f "p90") (f "p99") unit_)
              hs
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Summarize a --trace file: hot spans and metric distributions")
    Term.(const run $ file_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                           *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let file_arg =
    let doc = "JSON document to validate ('-' = stdin)." in
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)
  in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "invalid: %s\n" s;
        exit 1)
      fmt
  in
  let get_int what j =
    match Json.to_int j with Some i -> i | None -> fail "%s: expected an integer" what
  in
  let get_float what j =
    match Json.to_float j with Some f -> f | None -> fail "%s: expected a number" what
  in
  let get_str what j =
    match Json.to_str j with Some s -> s | None -> fail "%s: expected a string" what
  in
  (* Shared by the manifest path (schema v4 embeds a snapshot) and the
     trace path (--trace files carry one under "metrics"). *)
  let check_metrics mx =
    let counters =
      match Json.member "counters" mx with
      | Some (Json.Obj kvs) -> kvs
      | _ -> fail "metrics: missing counters object"
    in
    List.iter
      (fun (n, v) ->
        match Json.to_int v with
        | Some i -> if i < 0 then fail "metrics counter %s: %d < 0" n i
        | None -> fail "metrics counter %s: not an integer" n)
      counters;
    let value n = Option.bind (List.assoc_opt n counters) Json.to_int in
    List.iter
      (fun prefix ->
        match
          ( value (prefix ^ ".hits"),
            value (prefix ^ ".misses"),
            value (prefix ^ ".lookups") )
        with
        | Some h, Some m, Some l ->
            if h + m <> l then
              fail "metrics: %s hits %d + misses %d <> lookups %d" prefix h m l
        | None, None, None -> ()
        | _ -> fail "metrics: incomplete %s hits/misses/lookups trio" prefix)
      [ "sim_cache"; "layout_cache" ];
    match Json.member "histograms" mx with
    | Some (Json.Obj hs) ->
        List.iter
          (fun (n, h) ->
            let gf field =
              match Option.bind (Json.member field h) Json.to_float with
              | Some f -> f
              | None -> fail "metrics histogram %s: missing %s" n field
            in
            let count =
              match Option.bind (Json.member "count" h) Json.to_int with
              | Some c -> c
              | None -> fail "metrics histogram %s: missing count" n
            in
            if count < 0 then fail "metrics histogram %s: count %d < 0" n count;
            let p50 = gf "p50" and p90 = gf "p90" and p99 = gf "p99" in
            if not (p50 <= p90 && p90 <= p99) then
              fail "metrics histogram %s: percentiles not monotone (%g/%g/%g)" n p50
                p90 p99;
            if count > 0 && not (gf "min" <= gf "max") then
              fail "metrics histogram %s: min > max" n)
          hs
    | _ -> fail "metrics: missing histograms object"
  in
  let check_gc g =
    List.iter
      (fun field ->
        match Json.member field g with
        | Some v ->
            let x = get_float ("gc " ^ field) v in
            if not (x >= 0.0) then fail "gc %s: %g < 0" field x
        | None -> fail "gc: missing %s" field)
      [
        "minor_collections"; "major_collections"; "compactions"; "minor_words";
        "promoted_words"; "major_words"; "heap_words"; "top_heap_words";
      ]
  in
  let check_manifest m =
    let schema_version =
      match Json.member "schema_version" m with
      | Some v ->
          let v = get_int "schema_version" v in
          if v < 1 then fail "schema_version %d < 1" v;
          v
      | None -> fail "manifest: missing schema_version"
    in
    let stages =
      match Json.member "stages" m with
      | Some (Json.List l) -> l
      | _ -> fail "manifest: missing stages list"
    in
    List.iter
      (fun s ->
        let name =
          match Json.member "name" s with
          | Some n -> get_str "stage name" n
          | None -> fail "stage: missing name"
        in
        let count =
          match Json.member "count" s with
          | Some c -> get_int "stage count" c
          | None -> fail "stage %s: missing count" name
        in
        let seconds =
          match Json.member "seconds" s with
          | Some x -> get_float "stage seconds" x
          | None -> fail "stage %s: missing seconds" name
        in
        if count < 1 then fail "stage %s: count %d < 1" name count;
        if not (seconds >= 0.0) then fail "stage %s: seconds %g < 0" name seconds)
      stages;
    (match Json.member "sim_cache" m with
    | Some sc ->
        let g name =
          match Json.member name sc with
          | Some v -> get_int ("sim_cache " ^ name) v
          | None -> fail "sim_cache: missing %s" name
        in
        let hits = g "hits" and misses = g "misses" and lookups = g "lookups" in
        if hits < 0 || misses < 0 then fail "sim_cache: negative counters";
        if hits + misses <> lookups then
          fail "sim_cache: hits %d + misses %d <> lookups %d" hits misses lookups
    | None -> fail "manifest: missing sim_cache");
    (match Json.member "layout" m with
    | Some lay ->
        let stages =
          match Json.member "stages" lay with
          | Some (Json.List l) -> l
          | _ -> fail "layout: missing stages list"
        in
        List.iter
          (fun s ->
            let name =
              match Json.member "name" s with
              | Some n -> get_str "layout stage name" n
              | None -> fail "layout stage: missing name"
            in
            let g field =
              match Json.member field s with
              | Some v -> get_int ("layout stage " ^ field) v
              | None -> fail "layout stage %s: missing %s" name field
            in
            let hits = g "hits" and misses = g "misses" and lookups = g "lookups" in
            if hits < 0 || misses < 0 then
              fail "layout stage %s: negative counters" name;
            if hits + misses <> lookups then
              fail "layout stage %s: hits %d + misses %d <> lookups %d" name hits
                misses lookups;
            match Json.member "seconds" s with
            | Some x ->
                let v = get_float "layout stage seconds" x in
                if not (v >= 0.0) then fail "layout stage %s: seconds %g < 0" name v
            | None -> fail "layout stage %s: missing seconds" name)
          stages;
        (match Json.member "hit_rate" lay with
        | Some x ->
            let v = get_float "layout hit_rate" x in
            if not (v >= 0.0 && v <= 1.0) then fail "layout hit_rate %g not in [0,1]" v
        | None -> fail "layout: missing hit_rate")
    | None ->
        if schema_version >= 3 then fail "manifest: missing layout (schema v3+)");
    (match Json.member "batch" m with
    | Some b ->
        let g name =
          match Json.member name b with
          | Some v -> get_int ("batch " ^ name) v
          | None -> fail "batch: missing %s" name
        in
        List.iter
          (fun name -> if g name < 0 then fail "batch: %s %d < 0" name (g name))
          [
            "calls"; "members"; "cache_hits"; "simulated"; "replay_passes";
            "passes_saved"; "events_replayed"; "events_saved";
          ];
        if g "cache_hits" + g "simulated" > g "members" then
          fail "batch: cache_hits %d + simulated %d > members %d" (g "cache_hits")
            (g "simulated") (g "members")
    | None ->
        if schema_version >= 2 then fail "manifest: missing batch (schema v2+)");
    (match Json.member "experiments" m with
    | Some (Json.List l) ->
        List.iter
          (fun e ->
            match Json.member "seconds" e with
            | Some x ->
                let s = get_float "experiment seconds" x in
                if not (s >= 0.0) then fail "experiment seconds %g < 0" s
            | None -> fail "experiment entry: missing seconds")
          l
    | _ -> fail "manifest: missing experiments list");
    (match Json.member "metrics" m with
    | Some mx -> check_metrics mx
    | None ->
        if schema_version >= 4 then fail "manifest: missing metrics (schema v4+)");
    (match Json.member "run" m with
    | Some Json.Null | None -> ()
    | Some r -> (
        match Json.member "gc" r with
        | Some g -> check_gc g
        | None -> if schema_version >= 4 then fail "run: missing gc (schema v4+)"));
    List.length stages
  in
  let run file =
    let text =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_bin file In_channel.input_all
    in
    match Json.of_string text with
    | Error e -> fail "%s" e
    | Ok doc when Json.member "traceEvents" doc <> None ->
        (* A --trace artifact: check span invariants (every end matches
           the innermost open begin on its track, durations are
           non-negative, everything is closed) plus the embedded metrics
           snapshot when present. *)
        let events =
          try chrome_events doc with Trace_error e -> fail "%s" e
        in
        let spans = ref 0 in
        let tracks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
        List.iter (fun (_, _, _, tid) -> Hashtbl.replace tracks tid ()) events;
        let stacks =
          try
            fold_spans
              ~on_span:(fun name tid dur ->
                if dur < 0.0 then
                  fail "span %s on track %d: negative duration %g" name tid dur;
                incr spans)
              events
          with Trace_error e -> fail "%s" e
        in
        Hashtbl.iter
          (fun tid s ->
            if !s <> [] then
              fail "track %d: %d unclosed span(s), innermost %S" tid
                (List.length !s)
                (fst (List.hd !s)))
          stacks;
        (match Json.member "metrics" doc with
        | Some mx -> check_metrics mx
        | None -> ());
        Printf.printf "ok: trace with %d event(s), %d span(s), %d track(s)\n"
          (List.length events) !spans (Hashtbl.length tracks)
    | Ok doc
      when Json.member "schema_version" doc <> None
           && Json.member "stages" doc <> None ->
        (* A bare manifest (bench/main.exe's BENCH_repro.json, or
           manifest.json from repro --out). *)
        let stages = check_manifest doc in
        Printf.printf "ok: manifest with %d stage(s)\n" stages
    | Ok doc ->
        let reports =
          match Json.member "reports" doc with
          | Some (Json.List l) -> l
          | Some _ -> fail "reports: expected a list"
          | None -> (
              (* Also accept a single report document. *)
              match Result.of_json doc with
              | Ok _ -> [ doc ]
              | Error _ -> fail "document has neither a reports list nor a report shape")
        in
        List.iteri
          (fun i r ->
            match Result.of_json r with
            | Ok _ -> ()
            | Error e -> fail "report %d: %s" i e)
          reports;
        let stage_count =
          match Json.member "manifest" doc with
          | Some m -> Some (check_manifest m)
          | None -> None
        in
        (match stage_count with
        | Some stages ->
            Printf.printf "ok: %d report(s), manifest with %d stage(s)\n"
              (List.length reports) stages
        | None -> Printf.printf "ok: %d report(s), no manifest\n" (List.length reports))
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate a repro JSON document (reports parse, manifest invariants \
          hold), a bare run manifest, or a --trace file (spans balanced, \
          durations non-negative, metrics consistent)")
    Term.(const run $ file_arg)

let () =
  let info =
    Cmd.info "icache-opt" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Optimizing Instruction Cache Performance for \
         Operating System Intensive Workloads' (Torrellas, Xia, Daigle - HPCA \
         1995)"
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; repro_cmd; simulate_cmd; characterize_cmd; layout_cmd; dot_cmd;
         profile_cmd; sweep_cmd; trace_cmd; trace_summary_cmd; validate_cmd ]))
