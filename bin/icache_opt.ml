(* icache-opt: command-line driver for the reproduction pipeline.

   Subcommands:
     list         - list the reproduced tables and figures
     repro        - run experiments (all, or by id)
     simulate     - simulate one workload/layout/cache combination
     characterize - print the kernel and workload characterization *)

open Cmdliner

let words_arg =
  let doc = "Instruction words to trace per workload." in
  Arg.(value & opt int 2_000_000 & info [ "words" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Engine seed (the kernel itself is always built from the spec seed)." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let small_arg =
  let doc = "Use the scaled-down test kernel instead of the calibrated one." in
  Arg.(value & flag & info [ "small" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for trace capture and simulation (default: \
     $(b,ICACHE_JOBS) or the core count).  Results are identical for every \
     value; only wall-clock changes."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let make_context ~small ~words ~seed ~jobs =
  Option.iter Parallel.set_jobs jobs;
  let spec = if small then Spec.small else Spec.default in
  Context.create ~spec ~words ~seed ()

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.t) ->
        Printf.printf "  %-8s %s\n" e.Experiments.id e.Experiments.title)
      Experiments.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the reproduced tables and figures")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* repro                                                              *)
(* ------------------------------------------------------------------ *)

let repro_cmd =
  let ids_arg =
    let doc = "Experiment ids (e.g. table1 fig12); all when omitted." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run words seed small jobs ids =
    let ctx = make_context ~small ~words ~seed ~jobs in
    match ids with
    | [] -> Experiments.run_all ctx
    | ids ->
        List.iter
          (fun id ->
            match Experiments.find id with
            | e -> e.Experiments.run ctx
            | exception Not_found ->
                Printf.eprintf "unknown experiment %S; try 'icache-opt list'\n" id;
                exit 1)
          ids
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ ids_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let workload_arg =
    let doc = "Workload index 0-3 (TRFD_4, TRFD+Make, ARC2D+Fsck, Shell)." in
    Arg.(value & opt int 0 & info [ "w"; "workload" ] ~docv:"I" ~doc)
  in
  let level_arg =
    let doc = "Layout level: base, ch, opts, optl or opta." in
    Arg.(value & opt string "opts" & info [ "l"; "level" ] ~docv:"LEVEL" ~doc)
  in
  let size_arg =
    let doc = "Cache size in KB (power of two)." in
    Arg.(value & opt int 8 & info [ "size-kb" ] ~docv:"KB" ~doc)
  in
  let assoc_arg =
    let doc = "Associativity (power of two; 1 = direct-mapped)." in
    Arg.(value & opt int 1 & info [ "assoc" ] ~docv:"WAYS" ~doc)
  in
  let line_arg =
    let doc = "Line size in bytes (power of two)." in
    Arg.(value & opt int 32 & info [ "line" ] ~docv:"BYTES" ~doc)
  in
  let run words seed small jobs w level size_kb assoc line =
    let level =
      match String.lowercase_ascii level with
      | "base" -> Levels.Base
      | "ch" | "c-h" -> Levels.CH
      | "opts" -> Levels.OptS
      | "optl" -> Levels.OptL
      | "opta" -> Levels.OptA
      | other ->
          Printf.eprintf "unknown level %S\n" other;
          exit 1
    in
    let ctx = make_context ~small ~words ~seed ~jobs in
    if w < 0 || w >= Context.workload_count ctx then begin
      Printf.eprintf "workload index out of range\n";
      exit 1
    end;
    let layouts = Levels.build ctx level in
    let config = Config.v ~size:(size_kb * 1024) ~assoc ~line in
    let runs =
      Runner.simulate ctx ~layouts
        ~system:(fun () -> System.unified config)
        ()
    in
    let c = runs.(w).Runner.counters in
    Printf.printf "workload %s, layout %s, cache %s\n"
      (Context.workload_names ctx).(w) (Levels.to_string level)
      (Config.to_string config);
    Printf.printf "  references  %12d words\n" (Counters.refs c);
    Printf.printf "  misses      %12d (%.3f%%)\n" (Counters.misses c)
      (100.0 *. Counters.miss_rate c);
    Printf.printf "    OS:  cold %d, self %d, cross %d\n" c.Counters.os_cold
      c.Counters.os_self c.Counters.os_cross;
    Printf.printf "    app: cold %d, self %d, cross %d\n" c.Counters.app_cold
      c.Counters.app_self c.Counters.app_cross
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one workload / layout / cache combination")
    Term.(
      const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ workload_arg
      $ level_arg $ size_arg $ assoc_arg $ line_arg)

(* ------------------------------------------------------------------ *)
(* layout                                                             *)
(* ------------------------------------------------------------------ *)

let layout_cmd =
  let out_arg =
    let doc = "Write the layout map here ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let level_arg =
    let doc = "Layout to emit: base, ch, opts or optl." in
    Arg.(value & opt string "opts" & info [ "l"; "level" ] ~docv:"LEVEL" ~doc)
  in
  let run words seed small jobs level out =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let model = ctx.Context.model in
    let g = Context.os_graph ctx in
    let profile = ctx.Context.avg_os_profile in
    let map =
      match String.lowercase_ascii level with
      | "base" -> Base.layout g ~order:model.Model.base_order
      | "ch" | "c-h" -> Chang_hwu.layout g profile
      | "opts" ->
          (Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx)
             (Opt.params ()))
            .Opt.map
      | "optl" ->
          (Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx)
             (Opt.params ~extract_loops:true ()))
            .Opt.map
      | other ->
          Printf.eprintf "unknown level %S\n" other;
          exit 1
    in
    if out = "-" then Layout_file.write_channel stdout ~graph:g map
    else begin
      Layout_file.save out ~graph:g map;
      Printf.printf "wrote %s (%d blocks, extent %d bytes)\n" out
        (Address_map.placed_count map) (Address_map.extent map)
    end
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Emit a kernel code placement as a linker-map-like file")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ level_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let routine_arg =
    let doc = "Routine name to draw (e.g. clock_intr)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ROUTINE" ~doc)
  in
  let out_arg =
    let doc = "Output .dot file ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small jobs name out =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let g = Context.os_graph ctx in
    let found = ref None in
    Graph.iter_routines g (fun r ->
        if r.Routine.name = name then found := Some r);
    match !found with
    | None ->
        Printf.eprintf "no routine named %S\n" name;
        exit 1
    | Some r ->
        let s =
          Dot.routine_to_string g
            ~weights:ctx.Context.avg_os_profile.Profile.block
            ~loops:(Context.os_loops ctx) r
        in
        if out = "-" then print_string s
        else begin
          let oc = open_out out in
          output_string oc s;
          close_out oc;
          Printf.printf "wrote %s\n" out
        end
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export one kernel routine's flow graph as Graphviz dot")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ routine_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                              *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let list_arg name default doc =
    Arg.(value & opt (list int) default & info [ name ] ~docv:"N,..." ~doc)
  in
  let sizes_arg = list_arg "sizes" [ 4; 8; 16; 32 ] "Cache sizes in KB." in
  let assocs_arg = list_arg "assocs" [ 1 ] "Associativities." in
  let lines_arg = list_arg "lines" [ 32 ] "Line sizes in bytes." in
  let levels_arg =
    let doc = "Layout levels (base, ch, opts, optl, opta)." in
    Arg.(value & opt (list string) [ "base"; "opts" ] & info [ "levels" ] ~docv:"L,..." ~doc)
  in
  let out_arg =
    let doc = "CSV output file ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small jobs sizes assocs lines levels out =
    let parse_level s =
      match String.lowercase_ascii s with
      | "base" -> Levels.Base
      | "ch" | "c-h" -> Levels.CH
      | "opts" -> Levels.OptS
      | "optl" -> Levels.OptL
      | "opta" -> Levels.OptA
      | other ->
          Printf.eprintf "unknown level %S\n" other;
          exit 1
    in
    let levels = List.map parse_level levels in
    let ctx = make_context ~small ~words ~seed ~jobs in
    let oc = if out = "-" then stdout else open_out out in
    Printf.fprintf oc
      "level,size_kb,assoc,line,workload,refs,misses,miss_rate,os_self,os_cross,app_self,app_cross\n";
    List.iter
      (fun level ->
        let layouts = Levels.build ctx level in
        List.iter
          (fun size_kb ->
            List.iter
              (fun assoc ->
                List.iter
                  (fun line ->
                    let config = Config.v ~size:(size_kb * 1024) ~assoc ~line in
                    let runs =
                      Runner.simulate ctx ~layouts
                        ~system:(fun () -> System.unified config)
                        ()
                    in
                    Array.iteri
                      (fun i (r : Runner.run) ->
                        let c = r.Runner.counters in
                        Printf.fprintf oc "%s,%d,%d,%d,%s,%d,%d,%.6f,%d,%d,%d,%d\n"
                          (Levels.to_string level) size_kb assoc line
                          (Context.workload_names ctx).(i)
                          (Counters.refs c) (Counters.misses c)
                          (Counters.miss_rate c) c.Counters.os_self
                          c.Counters.os_cross c.Counters.app_self
                          c.Counters.app_cross)
                      runs)
                  lines)
              assocs)
          sizes)
      levels;
    if out <> "-" then begin
      close_out oc;
      Printf.printf "wrote %s\n" out
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Cross-product cache/layout sweep, one CSV row per cell")
    Term.(
      const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ sizes_arg
      $ assocs_arg $ lines_arg $ levels_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                            *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let out_arg =
    let doc = "Write the averaged OS profile here ('-' = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small jobs out =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let g = Context.os_graph ctx in
    let p = ctx.Context.avg_os_profile in
    if out = "-" then Profile_file.write_channel stdout ~graph:g p
    else begin
      Profile_file.save out ~graph:g p;
      Printf.printf "wrote %s (%d executed blocks, %.0f invocations)\n" out
        (Profile.executed_block_count p) p.Profile.invocations
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Trace the four workloads and emit the averaged OS profile")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let workload_arg =
    let doc = "Workload index 0-3 (TRFD_4, TRFD+Make, ARC2D+Fsck, Shell)." in
    Arg.(value & opt int 0 & info [ "w"; "workload" ] ~docv:"I" ~doc)
  in
  let out_arg =
    let doc = "Binary trace output file." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run words seed small w out =
    let spec = if small then Spec.small else Spec.default in
    let model = Generator.generate spec in
    let pairs = Workload.standard_programs model in
    if w < 0 || w >= Array.length pairs then begin
      Printf.eprintf "workload index out of range\n";
      exit 1
    end;
    let workload, program = pairs.(w) in
    let trace, stats = Engine.capture ~program ~workload ~words ~seed in
    Trace_file.save out trace;
    Printf.printf "wrote %s: %d events, %d instruction words (%s)\n" out
      (Trace.length trace) stats.Engine.total_words workload.Workload.name
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Capture one workload's instruction trace to a binary file")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ workload_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* characterize                                                       *)
(* ------------------------------------------------------------------ *)

let characterize_cmd =
  let run words seed small jobs =
    let ctx = make_context ~small ~words ~seed ~jobs in
    let g = Context.os_graph ctx in
    Printf.printf "kernel: %d routines, %d blocks, %d bytes of code\n"
      (Graph.routine_count g) (Graph.block_count g) (Graph.code_bytes g);
    Array.iteri
      (fun i ((w : Workload.t), _) ->
        let p = ctx.Context.os_profiles.(i) in
        let s = ctx.Context.stats.(i) in
        Printf.printf "%-12s OS words %9d  invocations %6d  executed %6d bytes (%4.1f%%)\n"
          w.Workload.name s.Engine.os_words
          (Array.fold_left ( + ) 0 s.Engine.invocations)
          (Profile.executed_bytes p g)
          (Stats.pct (Profile.executed_bytes p g) (Graph.code_bytes g)))
      ctx.Context.pairs
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Summarize the kernel and the traced workloads")
    Term.(const run $ words_arg $ seed_arg $ small_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "icache-opt" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Optimizing Instruction Cache Performance for \
         Operating System Intensive Workloads' (Torrellas, Xia, Daigle - HPCA \
         1995)"
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; repro_cmd; simulate_cmd; characterize_cmd; layout_cmd; dot_cmd;
         profile_cmd; sweep_cmd; trace_cmd ]))
