(** Dominator computation on a routine's intra-procedural flow graph,
    using the iterative algorithm of Cooper, Harvey and Kennedy over a
    reverse-postorder numbering.  Needed by {!Loops} to find back edges. *)

type t

val compute : Graph.t -> Routine.t -> t
(** Dominators of every block reachable from the routine's entry. *)

val idom : t -> Block.id -> Block.id option
(** Immediate dominator; [None] for the entry block and for blocks
    unreachable from the entry. *)

val dominates : t -> Block.id -> Block.id -> bool
(** [dominates t a b] is true when [a] dominates [b] (reflexive).  False
    whenever [b] is unreachable. *)

val reachable : t -> Block.id -> bool

val reverse_postorder : t -> Block.id array
(** Reachable blocks of the routine in reverse postorder (entry first). *)
