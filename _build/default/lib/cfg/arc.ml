type id = int

type kind = Fallthrough | Taken

type t = { id : id; src : Block.id; dst : Block.id; kind : kind }

let kind_to_string = function Fallthrough -> "fallthrough" | Taken -> "taken"
