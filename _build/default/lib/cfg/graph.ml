type t = {
  blocks : Block.t array;
  arcs : Arc.t array;
  routines : Routine.t array;
  out_arcs : Arc.id array array;
  in_arcs : Arc.id array array;
  callers : Block.id array array;
  code_bytes : int;
}

type builder = {
  mutable names : string list; (* reverse order *)
  mutable routine_n : int;
  mutable blocks_rev : Block.t list;
  mutable block_n : int;
  mutable arcs_rev : Arc.t list;
  mutable arc_n : int;
  block_routine : (Block.id, int) Hashtbl.t;
}

let builder () =
  {
    names = [];
    routine_n = 0;
    blocks_rev = [];
    block_n = 0;
    arcs_rev = [];
    arc_n = 0;
    block_routine = Hashtbl.create 256;
  }

let declare_routine b name =
  let id = b.routine_n in
  b.names <- name :: b.names;
  b.routine_n <- id + 1;
  id

let add_block b ~routine ~size ?call () =
  if size <= 0 then invalid_arg "Graph.add_block: size must be positive";
  if routine < 0 || routine >= b.routine_n then
    invalid_arg "Graph.add_block: unknown routine";
  let id = b.block_n in
  b.blocks_rev <- { Block.id; routine; size; call } :: b.blocks_rev;
  Hashtbl.replace b.block_routine id routine;
  b.block_n <- id + 1;
  id

let add_arc b ~src ~dst kind =
  if src < 0 || src >= b.block_n || dst < 0 || dst >= b.block_n then
    invalid_arg "Graph.add_arc: unknown block";
  if Hashtbl.find b.block_routine src <> Hashtbl.find b.block_routine dst then
    invalid_arg "Graph.add_arc: arc crosses routine boundary";
  let id = b.arc_n in
  b.arcs_rev <- { Arc.id; src; dst; kind } :: b.arcs_rev;
  b.arc_n <- id + 1;
  id

let group_by_index ~count ~items ~index =
  let buckets = Array.make count [] in
  List.iter (fun item -> buckets.(index item) <- item :: buckets.(index item)) items;
  (* items arrive in reverse insertion order, so the cons above restores
     insertion order. *)
  Array.map Array.of_list buckets

let freeze b =
  let blocks = Array.of_list (List.rev b.blocks_rev) in
  let arcs = Array.of_list (List.rev b.arcs_rev) in
  Array.iter
    (fun (a : Arc.t) ->
      if blocks.(a.src).Block.routine <> blocks.(a.dst).Block.routine then
        invalid_arg "Graph.freeze: arc crosses routine boundary")
    arcs;
  Array.iter
    (fun (blk : Block.t) ->
      match blk.Block.call with
      | Some r when r < 0 || r >= b.routine_n ->
          invalid_arg "Graph.freeze: call to undeclared routine"
      | Some _ | None -> ())
    blocks;
  let routine_blocks = Array.make b.routine_n [] in
  (* blocks_rev is reverse insertion order; cons restores insertion order. *)
  List.iter
    (fun (blk : Block.t) ->
      routine_blocks.(blk.Block.routine) <- blk.Block.id :: routine_blocks.(blk.Block.routine))
    b.blocks_rev;
  let names = Array.of_list (List.rev b.names) in
  let routines =
    Array.init b.routine_n (fun id ->
        match routine_blocks.(id) with
        | [] -> invalid_arg (Printf.sprintf "Graph.freeze: routine %s has no blocks" names.(id))
        | entry :: _ as all ->
            { Routine.id; name = names.(id); entry; blocks = Array.of_list all })
  in
  let out_arcs =
    group_by_index ~count:(Array.length blocks) ~items:b.arcs_rev
      ~index:(fun (a : Arc.t) -> a.src)
    |> Array.map (Array.map (fun (a : Arc.t) -> a.Arc.id))
  in
  let in_arcs =
    group_by_index ~count:(Array.length blocks) ~items:b.arcs_rev
      ~index:(fun (a : Arc.t) -> a.dst)
    |> Array.map (Array.map (fun (a : Arc.t) -> a.Arc.id))
  in
  let caller_items =
    List.filter (fun (blk : Block.t) -> Option.is_some blk.Block.call) b.blocks_rev
  in
  let callers =
    group_by_index ~count:b.routine_n ~items:caller_items
      ~index:(fun (blk : Block.t) -> Option.get blk.Block.call)
    |> Array.map (Array.map (fun (blk : Block.t) -> blk.Block.id))
  in
  let code_bytes = Array.fold_left (fun acc (blk : Block.t) -> acc + blk.Block.size) 0 blocks in
  { blocks; arcs; routines; out_arcs; in_arcs; callers; code_bytes }

let block_count t = Array.length t.blocks
let arc_count t = Array.length t.arcs
let routine_count t = Array.length t.routines
let block t id = t.blocks.(id)
let arc t id = t.arcs.(id)
let routine t id = t.routines.(id)
let out_arcs t id = t.out_arcs.(id)
let in_arcs t id = t.in_arcs.(id)
let is_exit t id = Array.length t.out_arcs.(id) = 0
let entry_of t r = t.routines.(r).Routine.entry
let code_bytes t = t.code_bytes
let routine_of_block t id = t.blocks.(id).Block.routine
let iter_blocks t f = Array.iter f t.blocks
let iter_routines t f = Array.iter f t.routines
let iter_arcs t f = Array.iter f t.arcs
let callers t r = t.callers.(r)
let fold_blocks t ~init ~f = Array.fold_left f init t.blocks
