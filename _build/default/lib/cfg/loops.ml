type t = {
  header : Block.id;
  body : Block.id array;
  back_edges : Arc.id array;
  routine : Routine.id;
  calls_routines : Routine.id array;
  static_bytes : int;
}

let has_calls l = Array.length l.calls_routines > 0

(* Natural loop of a back edge n -> h: h plus all blocks that reach n
   without passing through h. *)
let natural_body g ~header ~latch =
  let body = Hashtbl.create 16 in
  Hashtbl.add body header ();
  let rec pull b =
    if not (Hashtbl.mem body b) then begin
      Hashtbl.add body b ();
      Array.iter (fun a -> pull (Graph.arc g a).Arc.src) (Graph.in_arcs g b)
    end
  in
  pull latch;
  body

let find_in_routine g (r : Routine.t) =
  let dom = Dominators.compute g r in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      if Dominators.reachable dom b then
        Array.iter
          (fun a ->
            let dst = (Graph.arc g a).Arc.dst in
            if Dominators.dominates dom dst b then
              let existing = Option.value ~default:[] (Hashtbl.find_opt by_header dst) in
              Hashtbl.replace by_header dst (a :: existing))
          (Graph.out_arcs g b))
    r.Routine.blocks;
  Hashtbl.fold
    (fun header back_edges acc ->
      let body = Hashtbl.create 16 in
      Hashtbl.add body header ();
      List.iter
        (fun a ->
          let latch = (Graph.arc g a).Arc.src in
          let sub = natural_body g ~header ~latch in
          Hashtbl.iter (fun b () -> Hashtbl.replace body b ()) sub)
        back_edges;
      let body_arr = Hashtbl.fold (fun b () l -> b :: l) body [] |> Array.of_list in
      Array.sort compare body_arr;
      let callees = Hashtbl.create 4 in
      let static_bytes = ref 0 in
      Array.iter
        (fun b ->
          let blk = Graph.block g b in
          static_bytes := !static_bytes + blk.Block.size;
          match blk.Block.call with
          | Some callee -> Hashtbl.replace callees callee ()
          | None -> ())
        body_arr;
      let calls_routines =
        Hashtbl.fold (fun c () l -> c :: l) callees [] |> Array.of_list
      in
      Array.sort compare calls_routines;
      {
        header;
        body = body_arr;
        back_edges = Array.of_list back_edges;
        routine = r.Routine.id;
        calls_routines;
        static_bytes = !static_bytes;
      }
      :: acc)
    by_header []

let find g =
  let acc = ref [] in
  Graph.iter_routines g (fun r -> acc := find_in_routine g r @ !acc);
  (* Stable order: by header block id. *)
  List.sort (fun a b -> compare a.header b.header) !acc

let contains l b =
  let body = l.body in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if body.(mid) = b then true
      else if body.(mid) < b then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length body)

let blocks_in_loops g loops =
  let marks = Array.make (Graph.block_count g) false in
  List.iter (fun l -> Array.iter (fun b -> marks.(b) <- true) l.body) loops;
  marks
