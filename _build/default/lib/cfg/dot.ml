(* Graphviz export of flow graphs, for inspecting routines, their loops,
   and profile weights.  Executed blocks are shaded, calls are dashed
   edges to callee-name stubs, loop back edges are drawn bold red. *)

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let emit buf g ?weights ?(loops = []) (r : Routine.t) =
  let back_edges = Hashtbl.create 8 in
  List.iter
    (fun (l : Loops.t) ->
      if l.Loops.routine = r.Routine.id then
        Array.iter (fun a -> Hashtbl.replace back_edges a ()) l.Loops.back_edges)
    loops;
  let weight b =
    match weights with
    | Some w when w.(b) > 0.0 -> Printf.sprintf "\\n%.0fx" w.(b)
    | Some _ | None -> ""
  in
  let executed b =
    match weights with Some w -> w.(b) > 0.0 | None -> false
  in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph \"%s\" {\n" (escape r.Routine.name);
  add "  node [shape=box, fontsize=10];\n";
  add "  label=\"%s\";\n" (escape r.Routine.name);
  Array.iter
    (fun b ->
      let blk = Graph.block g b in
      let style =
        if b = r.Routine.entry then ", style=bold"
        else if executed b then ", style=filled, fillcolor=lightyellow"
        else ""
      in
      add "  n%d [label=\"b%d\\n%dB%s\"%s];\n" b b blk.Block.size (weight b) style;
      match blk.Block.call with
      | Some callee ->
          let name = (Graph.routine g callee).Routine.name in
          add "  call%d_%d [label=\"%s\", shape=ellipse, fontsize=9];\n" b callee
            (escape name);
          add "  n%d -> call%d_%d [style=dashed];\n" b b callee
      | None -> ())
    r.Routine.blocks;
  Array.iter
    (fun b ->
      Array.iter
        (fun a ->
          let arc = Graph.arc g a in
          let attrs =
            if Hashtbl.mem back_edges a then " [color=red, penwidth=2]"
            else
              match arc.Arc.kind with
              | Arc.Fallthrough -> ""
              | Arc.Taken -> " [color=gray40]"
          in
          add "  n%d -> n%d%s;\n" arc.Arc.src arc.Arc.dst attrs)
        (Graph.out_arcs g b))
    r.Routine.blocks;
  add "}\n"

let routine_to_string g ?weights ?loops r =
  let buf = Buffer.create 1024 in
  emit buf g ?weights ?loops r;
  Buffer.contents buf

let save_routine path g ?weights ?loops r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (routine_to_string g ?weights ?loops r))
