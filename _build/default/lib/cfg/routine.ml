type id = int

type t = { id : id; name : string; entry : Block.id; blocks : Block.id array }

let block_count r = Array.length r.blocks
