(** Routines (procedures).

    A routine owns a set of basic blocks with a distinguished entry block.
    Blocks without outgoing arcs are the routine's exit blocks: executing
    one returns control to the caller's continuation. *)

type id = int

type t = {
  id : id;
  name : string;
  entry : Block.id;
  blocks : Block.id array;  (** All blocks, in original (Base) text order. *)
}

val block_count : t -> int
