lib/cfg/graph.ml: Arc Array Block Hashtbl List Option Printf Routine
