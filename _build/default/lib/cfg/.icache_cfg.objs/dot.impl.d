lib/cfg/dot.ml: Arc Array Block Buffer Fun Graph Hashtbl List Loops Printf Routine String
