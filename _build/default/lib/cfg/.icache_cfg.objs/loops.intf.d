lib/cfg/loops.mli: Arc Block Graph Routine
