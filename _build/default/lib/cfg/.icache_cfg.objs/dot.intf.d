lib/cfg/dot.mli: Graph Loops Routine
