lib/cfg/arc.ml: Block
