lib/cfg/loops.ml: Arc Array Block Dominators Graph Hashtbl List Option Routine
