lib/cfg/arc.mli: Block
