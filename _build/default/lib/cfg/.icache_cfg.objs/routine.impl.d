lib/cfg/routine.ml: Array Block
