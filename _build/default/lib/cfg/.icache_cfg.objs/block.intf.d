lib/cfg/block.mli:
