lib/cfg/dominators.ml: Arc Array Block Graph Hashtbl Routine
