lib/cfg/block.ml: Option
