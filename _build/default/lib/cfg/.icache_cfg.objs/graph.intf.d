lib/cfg/graph.mli: Arc Block Routine
