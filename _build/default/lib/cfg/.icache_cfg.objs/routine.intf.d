lib/cfg/routine.mli: Block
