type t = {
  entry : Block.id;
  rpo : Block.id array;
  rpo_index : (Block.id, int) Hashtbl.t; (* reachable blocks only *)
  idom : Block.id array; (* indexed by rpo position; idom.(0) = entry *)
}

let postorder g (r : Routine.t) =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b) then begin
      Hashtbl.add visited b ();
      Array.iter (fun a -> dfs (Graph.arc g a).Arc.dst) (Graph.out_arcs g b);
      order := b :: !order
    end
  in
  dfs r.Routine.entry;
  (* [order] is reverse postorder already (postorder consed). *)
  Array.of_list !order

let compute g (r : Routine.t) =
  let rpo = postorder g r in
  let n = Array.length rpo in
  let rpo_index = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.add rpo_index b i) rpo;
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect i j =
    let i = ref i and j = ref j in
    while !i <> !j do
      while !i > !j do
        i := idom.(!i)
      done;
      while !j > !i do
        j := idom.(!j)
      done
    done;
    !i
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let b = rpo.(i) in
      let new_idom = ref (-1) in
      Array.iter
        (fun a ->
          let p = (Graph.arc g a).Arc.src in
          match Hashtbl.find_opt rpo_index p with
          | None -> () (* unreachable predecessor *)
          | Some pi ->
              if idom.(pi) >= 0 then
                new_idom := if !new_idom < 0 then pi else intersect pi !new_idom)
        (Graph.in_arcs g b);
      if !new_idom >= 0 && idom.(i) <> !new_idom then begin
        idom.(i) <- !new_idom;
        changed := true
      end
    done
  done;
  { entry = r.Routine.entry; rpo; rpo_index; idom }

let reachable t b = Hashtbl.mem t.rpo_index b

let idom t b =
  match Hashtbl.find_opt t.rpo_index b with
  | None -> None
  | Some i -> if i = 0 then None else Some t.rpo.(t.idom.(i))

let dominates t a b =
  match Hashtbl.find_opt t.rpo_index b with
  | None -> false
  | Some bi -> (
      match Hashtbl.find_opt t.rpo_index a with
      | None -> false
      | Some ai ->
          let rec climb i = if i = ai then true else if i = 0 then false else climb t.idom.(i) in
          climb bi)

let reverse_postorder t = Array.copy t.rpo
