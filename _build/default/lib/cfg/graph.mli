(** Whole-program basic-block flow graph.

    This is the paper's directed flow graph G = (V, E) (Section 4): nodes
    are basic blocks, intra-routine arcs are branch/fall-through
    transitions, and calls are represented by the callee field of blocks
    (control enters the callee's entry block and, at a callee exit block,
    resumes at the caller block's ordinary successor arcs).

    A graph is built through a {!builder} and then frozen; all queries on a
    frozen [t] are O(1) array lookups. *)

type t

type builder

val builder : unit -> builder

val declare_routine : builder -> string -> Routine.id
(** Register a routine name and obtain its id.  Blocks are attached later;
    the first block attached becomes the entry block. *)

val add_block : builder -> routine:Routine.id -> size:int -> ?call:Routine.id -> unit -> Block.id
(** Attach a block to [routine].  [size] is the static byte size (must be
    positive).  [call] names the callee if the block ends in a call.
    @raise Invalid_argument on non-positive size or unknown routine. *)

val add_arc : builder -> src:Block.id -> dst:Block.id -> Arc.kind -> Arc.id
(** Add an intra-routine transition.
    @raise Invalid_argument if [src] and [dst] belong to different
    routines. *)

val freeze : builder -> t
(** Validate and freeze.  @raise Invalid_argument if some routine has no
    blocks or a call names a routine id that was never declared. *)

(** {1 Queries} *)

val block_count : t -> int
val arc_count : t -> int
val routine_count : t -> int

val block : t -> Block.id -> Block.t
val arc : t -> Arc.id -> Arc.t
val routine : t -> Routine.id -> Routine.t

val out_arcs : t -> Block.id -> Arc.id array
(** Outgoing intra-routine arcs, in insertion order.  Empty for routine
    exit blocks. *)

val in_arcs : t -> Block.id -> Arc.id array

val is_exit : t -> Block.id -> bool
(** True when the block has no outgoing arcs (returns to caller). *)

val entry_of : t -> Routine.id -> Block.id

val code_bytes : t -> int
(** Total static code size. *)

val routine_of_block : t -> Block.id -> Routine.id

val iter_blocks : t -> (Block.t -> unit) -> unit
val iter_routines : t -> (Routine.t -> unit) -> unit
val iter_arcs : t -> (Arc.t -> unit) -> unit

val callers : t -> Routine.id -> Block.id array
(** All blocks (in any routine) whose [call] field names the routine. *)

val fold_blocks : t -> init:'a -> f:('a -> Block.t -> 'a) -> 'a
