(** Natural-loop detection via dataflow analysis (Aho, Sethi, Ullman), as
    used by the paper for its loop-locality analysis (Section 3.2.2) and
    the OptL / Section 4.4 optimizations. *)

type t = {
  header : Block.id;
  body : Block.id array;  (** Includes the header; sorted by block id. *)
  back_edges : Arc.id array;  (** All back edges sharing this header. *)
  routine : Routine.id;
  calls_routines : Routine.id array;  (** Routines called from the body. *)
  static_bytes : int;  (** Sum of body block sizes. *)
}

val has_calls : t -> bool

val find : Graph.t -> t list
(** All natural loops of the program, one per header (loops sharing a
    header are merged, per the standard construction). *)

val find_in_routine : Graph.t -> Routine.t -> t list

val contains : t -> Block.id -> bool
(** Membership in the body (O(log n)). *)

val blocks_in_loops : Graph.t -> t list -> bool array
(** [blocks_in_loops g loops] maps each block id to whether it belongs to
    any of the given loops' bodies. *)
