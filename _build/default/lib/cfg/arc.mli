(** Intra-routine control-flow arcs between basic blocks. *)

type id = int
(** Dense arc identifier, unique within a {!Graph.t}. *)

type kind =
  | Fallthrough  (** Control continues to the textually next block. *)
  | Taken  (** A conditional or unconditional branch target. *)

type t = { id : id; src : Block.id; dst : Block.id; kind : kind }

val kind_to_string : kind -> string
