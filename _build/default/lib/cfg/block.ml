type id = int

type t = { id : id; routine : int; size : int; call : int option }

let ends_in_call b = Option.is_some b.call

let word_bytes = 4

let instruction_words b = max 1 (b.size / word_bytes)
