(** Basic blocks.

    A basic block is a straight-line run of instructions with a single entry
    and a single exit.  Following the paper's model (Section 4), transitions
    out of a block are conditional/unconditional branches and fall-throughs
    (intra-routine {!Arc.t}s) plus procedure calls: a block that ends in a
    call names its callee routine in [call], and the block's ordinary
    outgoing arcs describe where control continues {e after the callee
    returns}. *)

type id = int
(** Dense block identifier, unique within a {!Graph.t}. *)

type t = {
  id : id;
  routine : int;  (** Owning routine's {!Routine.id}. *)
  size : int;  (** Static size in bytes (always positive). *)
  call : int option;  (** Callee routine id when the block ends in a call. *)
}

val ends_in_call : t -> bool

val instruction_words : t -> int
(** Number of fetchable instruction words ([size / word_bytes], at least
    1). *)

val word_bytes : int
(** Instruction-word granularity used throughout the reproduction (4). *)
