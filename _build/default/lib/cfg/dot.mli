(** Graphviz export of one routine's flow graph: boxes for blocks (entry
    bold, executed blocks shaded when [weights] is given), dashed edges to
    callee-name stubs, loop back edges bold red when [loops] is given.
    [weights] is a per-block execution-count array (e.g.
    [profile.Profile.block]). *)

val routine_to_string :
  Graph.t -> ?weights:float array -> ?loops:Loops.t list -> Routine.t -> string

val save_routine :
  string -> Graph.t -> ?weights:float array -> ?loops:Loops.t list -> Routine.t -> unit
