type t = {
  name : string;
  mix : float array;
  handler_weights : float array array;
  app_instances : int array;
  os_fraction : float;
  switch_period : int;
  repeat_prob : float;
}

let focused_weights g ~n ~used ~common_weight =
  if n = 0 then [||]
  else begin
    let w = Array.make n 0.0 in
    let used = max 1 (min used n) in
    w.(0) <- common_weight;
    if used > 1 && n > 1 then begin
      (* Draw [used - 1] distinct handlers among 1..n-1. *)
      let order = Array.init (n - 1) (fun i -> i + 1) in
      Prng.shuffle g order;
      let rest = 1.0 -. common_weight in
      let denom = ref 0.0 in
      for k = 0 to used - 2 do
        denom := !denom +. (1.0 /. float_of_int (k + 1))
      done;
      for k = 0 to used - 2 do
        w.(order.(k)) <- rest *. (1.0 /. float_of_int (k + 1)) /. !denom
      done
    end;
    w
  end

let weights_for model g ~used_per_class ~common =
  Array.mapi
    (fun ci used ->
      let n = Array.length model.Model.handlers.(ci) in
      focused_weights g ~n ~used ~common_weight:common.(ci))
    used_per_class

let trfd_4 model =
  let g = Prng.of_int 7001 in
  {
    name = "TRFD_4";
    mix = [| 0.765; 0.23; 0.0; 0.005 |];
    handler_weights =
      weights_for model g ~used_per_class:[| 4; 2; 1; 2 |]
        ~common:[| 0.75; 0.75; 1.0; 0.8 |];
    app_instances = [| 1; 1; 1; 1 |];
    os_fraction = 0.58;
    switch_period = 60;
    repeat_prob = 0.55;
  }

let trfd_make model =
  let g = Prng.of_int 7002 in
  {
    name = "TRFD+Make";
    mix = [| 0.663; 0.215; 0.114; 0.008 |];
    handler_weights =
      weights_for model g ~used_per_class:[| 10; 7; 35; 10 |]
        ~common:[| 0.7; 0.7; 0.12; 0.5 |];
    app_instances = [| 1; 2; 2; 2 |];
    os_fraction = 0.5;
    switch_period = 45;
    repeat_prob = 0.5;
  }

let arc2d_fsck model =
  let g = Prng.of_int 7003 in
  {
    name = "ARC2D+Fsck";
    mix = [| 0.745; 0.221; 0.025; 0.009 |];
    handler_weights =
      weights_for model g ~used_per_class:[| 7; 5; 14; 6 |]
        ~common:[| 0.7; 0.7; 0.2; 0.6 |];
    app_instances = [| 1; 1; 1; 2 |];
    os_fraction = 0.44;
    switch_period = 50;
    repeat_prob = 0.55;
  }

let shell model =
  let g = Prng.of_int 7004 in
  {
    name = "Shell";
    mix = [| 0.297; 0.12; 0.547; 0.036 |];
    handler_weights =
      weights_for model g ~used_per_class:[| 7; 4; 40; 8 |]
        ~common:[| 0.65; 0.65; 0.08; 0.3 |];
    app_instances = [||];
    os_fraction = 1.0;
    switch_period = 40;
    repeat_prob = 0.45;
  }

let standard model = [| trfd_4 model; trfd_make model; arc2d_fsck model; shell model |]

let standard_programs model =
  let trfd = App_model.trfd () in
  let arc2d = App_model.arc2d () in
  let cc1 = App_model.cc1 () in
  let fsck = App_model.fsck () in
  [|
    (trfd_4 model, Program.make ~os:model ~apps:[| trfd |]);
    (trfd_make model, Program.make ~os:model ~apps:[| trfd; cc1 |]);
    (arc2d_fsck model, Program.make ~os:model ~apps:[| arc2d; fsck |]);
    (shell model, Program.make ~os:model ~apps:[||]);
  |]
