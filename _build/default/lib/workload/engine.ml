type stats = {
  total_words : int;
  os_words : int;
  app_words : int;
  invocations : int array;
  context_switches : int;
}

type sink = {
  on_exec : image:int -> block:Block.id -> unit;
  on_arc : image:int -> arc:Arc.id -> unit;
  on_invocation_start : Service.t -> unit;
  on_invocation_end : unit -> unit;
}

let null_sink =
  {
    on_exec = (fun ~image:_ ~block:_ -> ());
    on_arc = (fun ~image:_ ~arc:_ -> ());
    on_invocation_start = ignore;
    on_invocation_end = ignore;
  }

let trace_sink trace =
  {
    on_exec = (fun ~image ~block -> Trace.append trace (Trace.Exec { image; block }));
    on_arc = (fun ~image:_ ~arc:_ -> ());
    on_invocation_start = (fun c -> Trace.append trace (Trace.Invocation_start c));
    on_invocation_end = (fun () -> Trace.append trace Trace.Invocation_end);
  }

let combine_sinks sinks =
  {
    on_exec = (fun ~image ~block -> List.iter (fun s -> s.on_exec ~image ~block) sinks);
    on_arc = (fun ~image ~arc -> List.iter (fun s -> s.on_arc ~image ~arc) sinks);
    on_invocation_start = (fun c -> List.iter (fun s -> s.on_invocation_start c) sinks);
    on_invocation_end = (fun () -> List.iter (fun s -> s.on_invocation_end ()) sinks);
  }

(* Longest application burst between two OS invocations, in words.  Keeps
   the self-regulating ratio controller from starving OS activity. *)
let max_burst = 30_000

let run ~program ~workload ~words:target ~seed ~sink =
  let os = program.Program.os in
  let g_class = Prng.of_int (seed * 3 + 1) in
  let g_os = Prng.of_int (seed * 3 + 2) in
  let g_app = Prng.of_int (seed * 3 + 3) in

  (* Fast per-image word counts. *)
  let words_of =
    Array.init (Program.image_count program) (fun i ->
        let g = Program.graph program i in
        Array.init (Graph.block_count g) (fun b ->
            Block.instruction_words (Graph.block g b)))
  in

  (* Dispatch handling: block id -> class index, and per class the arc for
     each handler plus the currently selected handler. *)
  let dispatch_class = Hashtbl.create 8 in
  let arcs_by_handler =
    Array.map
      (fun (d : Model.dispatch) ->
        let arr = Array.make (Array.length d.arcs) (-1) in
        Array.iter (fun (a, hi) -> arr.(hi) <- a) d.arcs;
        arr)
      os.Model.dispatches
  in
  Array.iteri
    (fun ci (d : Model.dispatch) -> Hashtbl.add dispatch_class d.block ci)
    os.Model.dispatches;
  let current_handler = Array.make Service.count 0 in
  let os_choose b _arcs =
    match Hashtbl.find_opt dispatch_class b with
    | None -> None
    | Some ci -> Some arcs_by_handler.(ci).(current_handler.(ci))
  in
  let os_walker =
    Walker.create ~graph:os.Model.graph ~arc_prob:os.Model.arc_prob ~prng:g_os
      ~choose:os_choose
      ~on_arc:(fun arc -> sink.on_arc ~image:Program.os_image ~arc)
      ()
  in

  let sample_handler ci =
    let w = workload.Workload.handler_weights.(ci) in
    let total = Array.fold_left ( +. ) 0.0 w in
    if total <= 0.0 then 0
    else begin
      let u = Prng.unit_float g_class *. total in
      let rec scan i acc =
        if i >= Array.length w - 1 then i
        else
          let acc = acc +. w.(i) in
          if u < acc then i else scan (i + 1) acc
      in
      scan 0 0.0
    end
  in

  (* Application instances: persistent walkers over their image graphs. *)
  let instances = workload.Workload.app_instances in
  let n_instances = Array.length instances in
  let app_walkers =
    Array.map
      (fun image ->
        Walker.create ~graph:(Program.graph program image)
          ~arc_prob:(Program.arc_prob program image)
          ~prng:(Prng.split g_app)
          ~on_arc:(fun arc -> sink.on_arc ~image ~arc)
          ())
      instances
  in
  let app_main image =
    Graph.entry_of
      (Program.graph program image)
      program.Program.apps.(image - 1).App_model.main
  in

  let os_words = ref 0 in
  let app_words = ref 0 in
  let invocations = Array.make Service.count 0 in
  let switches = ref 0 in
  let inv_total = ref 0 in
  let current = ref 0 in

  let class_choices =
    Array.mapi (fun i p -> (i, p)) workload.Workload.mix
  in

  let run_invocation ci =
    invocations.(ci) <- invocations.(ci) + 1;
    sink.on_invocation_start (Service.of_index ci);
    let info = Model.seed_for os (Service.of_index ci) in
    Walker.start os_walker info.Model.entry;
    let rec go () =
      match Walker.step os_walker with
      | None -> ()
      | Some b ->
          sink.on_exec ~image:Program.os_image ~block:b;
          os_words := !os_words + words_of.(0).(b);
          go ()
    in
    go ();
    sink.on_invocation_end ()
  in

  let run_app_burst budget =
    if n_instances > 0 && budget > 0 then begin
      let w = app_walkers.(!current) in
      let image = instances.(!current) in
      let emitted = ref 0 in
      while !emitted < budget do
        if not (Walker.active w) then Walker.start w (app_main image);
        match Walker.step w with
        | None -> ()
        | Some b ->
            sink.on_exec ~image ~block:b;
            let n = words_of.(image).(b) in
            emitted := !emitted + n;
            app_words := !app_words + n
      done
    end
  in

  let f = workload.Workload.os_fraction in
  let prev = ref None in
  while !os_words + !app_words < target do
    incr inv_total;
    let switching =
      workload.Workload.switch_period > 0
      && !inv_total mod workload.Workload.switch_period = 0
      && n_instances > 1
    in
    let ci =
      if switching then begin
        (* A forced context switch runs the switch handler itself: class
           Other, handler 0 (state save/restore, TLB invalidation). *)
        let ci = Service.index Service.Other in
        current_handler.(ci) <- 0;
        ci
      end
      else
        match !prev with
        | Some (pc, ph) when Prng.bernoulli g_class workload.Workload.repeat_prob ->
            current_handler.(pc) <- ph;
            pc
        | Some _ | None ->
            let ci = Prng.choose_weighted g_class class_choices in
            current_handler.(ci) <- sample_handler ci;
            ci
    in
    prev := Some (ci, current_handler.(ci));
    run_invocation ci;
    if switching then begin
      incr switches;
      current := (!current + 1) mod n_instances
    end;
    if n_instances > 0 && f < 1.0 then begin
      let desired_app =
        int_of_float (float_of_int !os_words *. (1.0 -. f) /. f)
      in
      let budget = min max_burst (desired_app - !app_words) in
      run_app_burst budget
    end
  done;
  {
    total_words = !os_words + !app_words;
    os_words = !os_words;
    app_words = !app_words;
    invocations;
    context_switches = !switches;
  }

let capture ~program ~workload ~words ~seed =
  let trace = Trace.create ~capacity:(words / 4) () in
  let stats = run ~program ~workload ~words ~seed ~sink:(trace_sink trace) in
  (trace, stats)
