(** The trace engine: interleaves application execution with OS
    invocations, reproducing the reference streams the paper's hardware
    monitor captured.

    Each OS invocation picks a service class from the workload mix, enters
    the class's seed routine and walks the kernel graph to completion
    (choosing the handler at the seed's dispatch block from the workload's
    handler weights).  Between invocations the current application instance
    runs; burst lengths self-regulate so the OS share of fetched words
    converges to [workload.os_fraction].  Every [switch_period] invocations
    a context switch (class [Other], handler 0) is forced and the next
    runnable instance is scheduled. *)

type stats = {
  total_words : int;  (** Instruction words fetched. *)
  os_words : int;
  app_words : int;
  invocations : int array;  (** Per service class. *)
  context_switches : int;
}

type sink = {
  on_exec : image:int -> block:Block.id -> unit;
  on_arc : image:int -> arc:Arc.id -> unit;
      (** Intra-routine arcs taken (profiling; not recorded in traces). *)
  on_invocation_start : Service.t -> unit;
  on_invocation_end : unit -> unit;
}

val null_sink : sink

val trace_sink : Trace.t -> sink
(** Records every event into the trace buffer. *)

val combine_sinks : sink list -> sink

val run :
  program:Program.t -> workload:Workload.t -> words:int -> seed:int ->
  sink:sink -> stats
(** Generate at least [words] instruction words of trace.  Deterministic in
    [seed] (and the program/workload contents). *)

val capture :
  program:Program.t -> workload:Workload.t -> words:int -> seed:int ->
  Trace.t * stats
(** {!run} into a fresh trace buffer. *)
