(* Multiprocessor tracing: the paper's testbed is a 4-CPU Alliant FX/8
   with one instruction cache per processor; every reported number is the
   average of the four processors.

   Each CPU runs its own interleaving of application execution and OS
   invocations (its own walkers and PRNG stream over the shared kernel
   image).  Cross-processor interrupts couple the streams: with
   probability [xcall_prob], an invocation on one CPU forces an
   interrupt-class invocation (the cross-processor interrupt handler,
   index 1 when present) on every other CPU before that CPU continues -
   the mechanism behind TRFD_4's interrupt-dominated profile. *)

type cpu = {
  trace : Trace.t;
  mutable os_words : int;
  mutable app_words : int;
  invocations : int array;
  mutable forced : int;  (** Cross-processor interrupts served. *)
  mutable pending_xcalls : int;
}

type result = {
  cpus : cpu array;
  xcalls_sent : int;
}

let words cpu = cpu.os_words + cpu.app_words

let run ~program ~workload ~cpus:n_cpus ~words_per_cpu ~seed ?(xcall_prob = 0.0) () =
  if n_cpus < 1 then invalid_arg "Multiproc.run: need at least one CPU";
  let os = program.Program.os in
  let master = Prng.of_int seed in
  let xcalls_sent = ref 0 in

  let words_of =
    Array.init (Program.image_count program) (fun i ->
        let g = Program.graph program i in
        Array.init (Graph.block_count g) (fun b ->
            Block.instruction_words (Graph.block g b)))
  in

  (* Shared dispatch structure (as in Engine.run). *)
  let dispatch_class = Hashtbl.create 8 in
  let arcs_by_handler =
    Array.map
      (fun (d : Model.dispatch) ->
        let arr = Array.make (Array.length d.Model.arcs) (-1) in
        Array.iter (fun (a, hi) -> arr.(hi) <- a) d.Model.arcs;
        arr)
      os.Model.dispatches
  in
  Array.iteri
    (fun ci (d : Model.dispatch) -> Hashtbl.add dispatch_class d.Model.block ci)
    os.Model.dispatches;

  let instances = workload.Workload.app_instances in
  let class_choices = Array.mapi (fun i p -> (i, p)) workload.Workload.mix in

  let make_cpu cpu_index =
    let g_class = Prng.split master in
    let g_os = Prng.split master in
    let g_app = Prng.split master in
    let cpu =
      {
        trace = Trace.create ~capacity:(words_per_cpu / 4) ();
        os_words = 0;
        app_words = 0;
        invocations = Array.make Service.count 0;
        forced = 0;
        pending_xcalls = 0;
      }
    in
    let current_handler = Array.make Service.count 0 in
    let os_choose b _arcs =
      match Hashtbl.find_opt dispatch_class b with
      | None -> None
      | Some ci -> Some arcs_by_handler.(ci).(current_handler.(ci))
    in
    let os_walker =
      Walker.create ~graph:os.Model.graph ~arc_prob:os.Model.arc_prob ~prng:g_os
        ~choose:os_choose ()
    in
    (* This CPU owns the app instances congruent to its index. *)
    let my_instances =
      Array.of_list
        (List.filteri
           (fun k _ -> k mod n_cpus = cpu_index)
           (Array.to_list instances))
    in
    let app_walkers =
      Array.map
        (fun image ->
          Walker.create ~graph:(Program.graph program image)
            ~arc_prob:(Program.arc_prob program image)
            ~prng:(Prng.split g_app) ())
        my_instances
    in
    let current = ref 0 in
    let sample_handler ci =
      let w = workload.Workload.handler_weights.(ci) in
      let total = Array.fold_left ( +. ) 0.0 w in
      if total <= 0.0 then 0
      else begin
        let u = Prng.unit_float g_class *. total in
        let rec scan i acc =
          if i >= Array.length w - 1 then i
          else
            let acc = acc +. w.(i) in
            if u < acc then i else scan (i + 1) acc
        in
        scan 0 0.0
      end
    in
    let run_invocation ?handler ci =
      cpu.invocations.(ci) <- cpu.invocations.(ci) + 1;
      (match handler with
      | Some h -> current_handler.(ci) <- h
      | None -> current_handler.(ci) <- sample_handler ci);
      Trace.append cpu.trace (Trace.Invocation_start (Service.of_index ci));
      let info = Model.seed_for os (Service.of_index ci) in
      Walker.start os_walker info.Model.entry;
      let rec go () =
        match Walker.step os_walker with
        | None -> ()
        | Some b ->
            Trace.append cpu.trace (Trace.Exec { image = Program.os_image; block = b });
            cpu.os_words <- cpu.os_words + words_of.(0).(b);
            go ()
      in
      go ();
      Trace.append cpu.trace Trace.Invocation_end
    in
    let run_app_burst budget =
      if Array.length my_instances > 0 && budget > 0 then begin
        let w = app_walkers.(!current mod Array.length app_walkers) in
        let image = my_instances.(!current mod Array.length my_instances) in
        let main =
          Graph.entry_of
            (Program.graph program image)
            program.Program.apps.(image - 1).App_model.main
        in
        let emitted = ref 0 in
        while !emitted < budget do
          if not (Walker.active w) then Walker.start w main;
          match Walker.step w with
          | None -> ()
          | Some b ->
              Trace.append cpu.trace (Trace.Exec { image; block = b });
              let n = words_of.(image).(b) in
              emitted := !emitted + n;
              cpu.app_words <- cpu.app_words + n
        done;
        incr current
      end
    in
    let step () =
      (* Serve forced cross-processor interrupts first. *)
      if cpu.pending_xcalls > 0 then begin
        cpu.pending_xcalls <- cpu.pending_xcalls - 1;
        cpu.forced <- cpu.forced + 1;
        let ci = Service.index Service.Interrupt in
        let handler = min 1 (Array.length os.Model.handlers.(ci) - 1) in
        run_invocation ~handler ci;
        false
      end
      else begin
        let ci = Prng.choose_weighted g_class class_choices in
        run_invocation ci;
        let f = workload.Workload.os_fraction in
        if Array.length my_instances > 0 && f < 1.0 then begin
          let desired = int_of_float (float_of_int cpu.os_words *. (1.0 -. f) /. f) in
          run_app_burst (min 30_000 (desired - cpu.app_words))
        end;
        Prng.bernoulli g_class xcall_prob
      end
    in
    (cpu, step)
  in

  let machines = Array.init n_cpus make_cpu in
  let cpus = Array.map fst machines in
  let unfinished () = Array.exists (fun c -> words c < words_per_cpu) cpus in
  while unfinished () do
    (* Advance the CPU that is furthest behind (time-interleaving). *)
    let next = ref 0 in
    Array.iteri (fun i c -> if words c < words cpus.(!next) then next := i) cpus;
    let _, step = machines.(!next) in
    if step () then begin
      (* Broadcast a cross-processor interrupt. *)
      Array.iteri
        (fun i c -> if i <> !next then c.pending_xcalls <- c.pending_xcalls + 1)
        cpus;
      incr xcalls_sent
    end
  done;
  { cpus; xcalls_sent = !xcalls_sent }
