(** Stochastic execution of a flow graph.

    A walker follows a {!Graph.t} from a start block, emitting executed
    basic blocks one at a time.  At a block that ends in a call it descends
    into the callee's entry; at a callee exit block it returns to the
    caller block's outgoing arcs.  Multi-arc choices are made from the
    intrinsic arc probabilities, except where the [choose] override decides
    (used for the seed dispatch blocks, whose handler mix is
    workload-specific).

    Walkers are pausable: the engine interleaves an application walker with
    OS invocations by stepping it a bounded number of words at a time. *)

type t

type chooser = Block.id -> Arc.id array -> Arc.id option
(** Return [Some arc] to override the intrinsic choice at this block. *)

val create :
  graph:Graph.t -> arc_prob:float array -> prng:Prng.t ->
  ?choose:chooser -> ?on_arc:(Arc.id -> unit) -> unit -> t
(** [on_arc] is invoked for every intra-routine arc the walk takes (used by
    profiling; call/return transitions are visible as block executions). *)

val start : t -> Block.id -> unit
(** Begin a new walk at the given block, discarding any previous state. *)

val active : t -> bool
(** True while the current walk has not returned from its start frame. *)

val step : t -> Block.id option
(** Emit the next executed block, or [None] if the walk has completed. *)

val depth : t -> int
(** Current call-stack depth (testing aid). *)
