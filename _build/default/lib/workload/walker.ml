type chooser = Block.id -> Arc.id array -> Arc.id option

type t = {
  graph : Graph.t;
  arc_prob : float array;
  prng : Prng.t;
  choose : chooser;
  on_arc : Arc.id -> unit;
  mutable current : Block.id;
  mutable running : bool;
  stack : Block.id Stack.t;
}

let no_choice _ _ = None

let create ~graph ~arc_prob ~prng ?(choose = no_choice) ?(on_arc = ignore) () =
  {
    graph;
    arc_prob;
    prng;
    choose;
    on_arc;
    current = 0;
    running = false;
    stack = Stack.create ();
  }

let start t entry =
  Stack.clear t.stack;
  t.current <- entry;
  t.running <- true

let active t = t.running

let pick_arc t b arcs =
  match t.choose b arcs with
  | Some a -> a
  | None ->
      let n = Array.length arcs in
      if n = 1 then arcs.(0)
      else begin
        let u = Prng.unit_float t.prng in
        let rec scan i acc =
          if i = n - 1 then arcs.(i)
          else
            let acc = acc +. t.arc_prob.(arcs.(i)) in
            if u < acc then arcs.(i) else scan (i + 1) acc
        in
        scan 0 0.0
      end

(* After block [b] finishes (including any callee), decide where control
   goes: its arcs, or on exit pop back to the caller. *)
let rec resume t b =
  let arcs = Graph.out_arcs t.graph b in
  if Array.length arcs = 0 then begin
    if Stack.is_empty t.stack then t.running <- false
    else resume t (Stack.pop t.stack)
  end
  else begin
    let a = pick_arc t b arcs in
    t.on_arc a;
    t.current <- (Graph.arc t.graph a).Arc.dst
  end

let step t =
  if not t.running then None
  else begin
    let b = t.current in
    (match (Graph.block t.graph b).Block.call with
    | Some callee ->
        Stack.push b t.stack;
        t.current <- Graph.entry_of t.graph callee
    | None -> resume t b);
    Some b
  end

let depth t = Stack.length t.stack
