(** A traced machine's code: the operating-system image plus the
    application images time-sharing it.

    Images are numbered: image 0 is the OS, image [1+k] is [apps.(k)].
    Trace events carry the image index. *)

type t = { os : Model.t; apps : App_model.t array }

val image_count : t -> int

val os_image : int
(** 0. *)

val max_apps : int
(** Image indices above this are reserved for trace markers (5). *)

val graph : t -> int -> Graph.t
(** Graph of an image.  @raise Invalid_argument on a bad index. *)

val arc_prob : t -> int -> float array

val image_name : t -> int -> string

val is_os : int -> bool

val make : os:Model.t -> apps:App_model.t array -> t
(** @raise Invalid_argument if there are more than {!max_apps} apps. *)
