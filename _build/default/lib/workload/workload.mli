(** Workload specifications: how often each OS service class is invoked
    (Table 1), which handlers each class's invocations exercise, which
    application instances time-share the processor, and the OS share of
    instruction fetches (Figure 12, leftmost chart). *)

type t = {
  name : string;
  mix : float array;
      (** Probability of each {!Service.t} class per invocation; sums
          to 1. *)
  handler_weights : float array array;
      (** Per class: weight of each handler index (need not be
          normalized). *)
  app_instances : int array;
      (** Image index (1-based into the program's apps) per runnable
          process. *)
  os_fraction : float;  (** Target OS share of fetched words, in (0, 1]. *)
  switch_period : int;
      (** A context-switch invocation is forced every [switch_period]
          invocations (0 = never). *)
  repeat_prob : float;
      (** Probability that an invocation repeats the previous (class,
          handler) pair: interrupts and faults arrive in bursts (clock
          ticks, page-fault storms), giving OS paths the short reuse
          distances the paper measures in Figure 7. *)
}

val focused_weights :
  Prng.t -> n:int -> used:int -> common_weight:float -> float array
(** A per-class handler-weight vector: handler 0 (the path common to all
    workloads: clock interrupt, common fault case, ...) gets
    [common_weight]; [used - 1] further handlers are drawn deterministically
    and given Zipf-decaying weights; the rest get 0. *)

val trfd_4 : Model.t -> t
val trfd_make : Model.t -> t
val arc2d_fsck : Model.t -> t
val shell : Model.t -> t

val standard : Model.t -> t array
(** The four paper workloads, in paper order.  The corresponding program
    images are built by {!standard_programs}. *)

val standard_programs : Model.t -> (t * Program.t) array
(** Each workload paired with its {!Program.t} (OS + the right app
    images). *)
