type t = { os : Model.t; apps : App_model.t array }

let os_image = 0

let max_apps = 5

let make ~os ~apps =
  if Array.length apps > max_apps then invalid_arg "Program.make: too many app images";
  { os; apps }

let image_count t = 1 + Array.length t.apps

let check t i =
  if i < 0 || i >= image_count t then invalid_arg "Program: bad image index"

let graph t i =
  check t i;
  if i = 0 then t.os.Model.graph else t.apps.(i - 1).App_model.graph

let arc_prob t i =
  check t i;
  if i = 0 then t.os.Model.arc_prob else t.apps.(i - 1).App_model.arc_prob

let image_name t i =
  check t i;
  if i = 0 then "os" else t.apps.(i - 1).App_model.name

let is_os i = i = 0
