(* Binary serialization of traces: capture once, replay against many
   layouts and cache geometries in later sessions (the paper's traces
   were likewise archived and re-simulated).

   Format: an 8-byte magic, a little-endian 64-bit event count, then one
   little-endian 32-bit word per event in the trace's packed encoding
   (3-bit tag + payload).  Packed events fit 32 bits comfortably: block
   ids are bounded by the kernel's block count (tens of thousands). *)

let magic = "ICTRACE1"

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let n = Trace.length t in
      let b8 = Bytes.create 8 in
      Bytes.set_int64_le b8 0 (Int64.of_int n);
      output_bytes oc b8;
      let b4 = Bytes.create 4 in
      for i = 0 to n - 1 do
        let v = Trace.raw t i in
        if v < 0 || v > 0x7FFFFFFF then
          invalid_arg "Trace_file.save: event does not fit 32 bits";
        Bytes.set_int32_le b4 0 (Int32.of_int v);
        output_bytes oc b4
      done)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let head = really_input_string ic (String.length magic) in
      if head <> magic then invalid_arg "Trace_file.load: bad magic";
      let b8 = Bytes.create 8 in
      really_input ic b8 0 8;
      let n = Int64.to_int (Bytes.get_int64_le b8 0) in
      if n < 0 then invalid_arg "Trace_file.load: bad length";
      let t = Trace.create ~capacity:(max 16 n) () in
      let b4 = Bytes.create 4 in
      for _ = 1 to n do
        really_input ic b4 0 4;
        Trace.append_raw t (Int32.to_int (Bytes.get_int32_le b4 0))
      done;
      t)
