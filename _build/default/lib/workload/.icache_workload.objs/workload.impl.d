lib/workload/workload.ml: App_model Array Model Prng Program
