lib/workload/program.ml: App_model Array Model
