lib/workload/walker.ml: Arc Array Block Graph Prng Stack
