lib/workload/trace.mli: Block Service
