lib/workload/program.mli: App_model Graph Model
