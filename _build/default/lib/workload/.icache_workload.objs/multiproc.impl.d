lib/workload/multiproc.ml: App_model Array Block Graph Hashtbl List Model Prng Program Service Trace Walker Workload
