lib/workload/walker.mli: Arc Block Graph Prng
