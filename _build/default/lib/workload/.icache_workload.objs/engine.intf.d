lib/workload/engine.mli: Arc Block Program Service Trace Workload
