lib/workload/trace_file.ml: Bytes Fun Int32 Int64 String Trace
