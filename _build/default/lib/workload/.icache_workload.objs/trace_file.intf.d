lib/workload/trace_file.mli: Trace
