lib/workload/engine.ml: App_model Arc Array Block Graph Hashtbl List Model Prng Program Service Trace Walker Workload
