lib/workload/multiproc.mli: Program Trace Workload
