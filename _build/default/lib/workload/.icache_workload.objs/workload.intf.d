lib/workload/workload.mli: Model Prng Program
