lib/workload/trace.ml: Array Block List Service
