(** Multiprocessor tracing.

    The paper's testbed is a 4-CPU Alliant FX/8 with one instruction cache
    per processor; every reported number is the average of the four
    processors.  [run] traces [cpus] processors time-sharing the same
    kernel image: each CPU interleaves its own application instances (the
    workload's instances are dealt round-robin across CPUs) with OS
    invocations, and cross-processor interrupts couple the streams - with
    probability [xcall_prob] an invocation broadcasts a forced
    interrupt-class invocation (the cross-processor handler) to every
    other CPU, the mechanism behind TRFD_4's interrupt-dominated mix. *)

type cpu = {
  trace : Trace.t;
  mutable os_words : int;
  mutable app_words : int;
  invocations : int array;  (** Per service class. *)
  mutable forced : int;  (** Cross-processor interrupts served. *)
  mutable pending_xcalls : int;
}

type result = { cpus : cpu array; xcalls_sent : int }

val words : cpu -> int
(** Instruction words traced so far on this CPU. *)

val run :
  program:Program.t -> workload:Workload.t -> cpus:int -> words_per_cpu:int ->
  seed:int -> ?xcall_prob:float -> unit -> result
(** Deterministic in [seed].  @raise Invalid_argument if [cpus < 1]. *)
