(** Binary serialization of traces (magic + count + one 32-bit word per
    packed event): capture once, replay against many layouts and cache
    geometries in later sessions, as the paper did with its archived
    hardware traces. *)

val magic : string

val save : string -> Trace.t -> unit
(** @raise Invalid_argument if an event does not fit 32 bits. *)

val load : string -> Trace.t
(** @raise Invalid_argument on a malformed file. *)
