type run = { counters : Counters.t; os_block_misses : int array }

let simulate (ctx : Context.t) ~layouts ~system ?(attribute_os = false)
    ?(warmup_fraction = 0.2) () =
  Array.mapi
    (fun i (_w, program) ->
      let sys = system () in
      if attribute_os then begin
        let blocks =
          Array.init (Program.image_count program) (fun k ->
              Graph.block_count (Program.graph program k))
        in
        System.enable_block_attribution sys ~images:(Program.image_count program)
          ~blocks
      end;
      let map = Program_layout.code_map layouts.(i) in
      let trace = ctx.Context.traces.(i) in
      let warmup =
        int_of_float (warmup_fraction *. float_of_int (Trace.length trace))
      in
      Replay.run_range ~trace ~map ~systems:[ sys ] ~warmup;
      {
        counters = System.counters sys;
        os_block_misses = (if attribute_os then System.block_misses sys ~image:0 else [||]);
      })
    ctx.Context.pairs

let simulate_config ctx ~layouts ~config ?(attribute_os = false) () =
  simulate ctx ~layouts ~system:(fun () -> System.unified config) ~attribute_os ()

let total runs =
  let acc = Counters.create () in
  Array.iter (fun r -> Counters.add acc r.counters) runs;
  acc
