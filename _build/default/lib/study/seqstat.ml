type set = {
  member : bool array;
  next_in_seq : int array;
  block_count : int;
  routine_count : int;
  bytes : int;
}

let of_sequences g seqs ~budget_bytes =
  let member = Array.make (Graph.block_count g) false in
  let next_in_seq = Array.make (Graph.block_count g) (-1) in
  let bytes = ref 0 in
  let block_count = ref 0 in
  let routines = Hashtbl.create 64 in
  let take (s : Sequence.t) =
    Array.iteri
      (fun i b ->
        member.(b) <- true;
        incr block_count;
        Hashtbl.replace routines (Graph.routine_of_block g b) ();
        if i + 1 < Array.length s.Sequence.blocks then
          next_in_seq.(b) <- s.Sequence.blocks.(i + 1))
      s.Sequence.blocks;
    bytes := !bytes + s.Sequence.bytes
  in
  List.iter (fun s -> if !bytes + s.Sequence.bytes <= budget_bytes then take s) seqs;
  {
    member;
    next_in_seq;
    block_count = !block_count;
    routine_count = Hashtbl.length routines;
    bytes = !bytes;
  }

type predictability = { to_any : float; to_next : float }

let predictability set ~trace =
  let from_set = ref 0 and to_any = ref 0 and to_next = ref 0 in
  let prev = ref (-1) in
  Trace.iter_exec trace (fun ~image ~block ->
      if Program.is_os image then begin
        (if !prev >= 0 && set.member.(!prev) then begin
           incr from_set;
           if set.member.(block) then incr to_any;
           if set.next_in_seq.(!prev) = block then incr to_next
         end);
        prev := block
      end);
  {
    to_any = Stats.ratio !to_any !from_set;
    to_next = Stats.ratio !to_next !from_set;
  }

type weight = { static_pct : float; refs_pct : float; misses_pct : float }

let weight set ~graph:g ~profile:p ~os_block_misses =
  let exec_blocks = ref 0 and set_blocks = ref 0 in
  let words = ref 0.0 and set_words = ref 0.0 in
  let misses = ref 0 and set_misses = ref 0 in
  Graph.iter_blocks g (fun b ->
      let id = b.Block.id in
      let executed = Profile.executed p id in
      if executed then begin
        incr exec_blocks;
        if set.member.(id) then incr set_blocks
      end;
      let w = p.Profile.block.(id) *. float_of_int (Block.instruction_words b) in
      words := !words +. w;
      if set.member.(id) then set_words := !set_words +. w;
      if Array.length os_block_misses > 0 then begin
        misses := !misses + os_block_misses.(id);
        if set.member.(id) then set_misses := !set_misses + os_block_misses.(id)
      end);
  {
    static_pct = Stats.pct !set_blocks !exec_blocks;
    refs_pct = (if !words > 0.0 then 100.0 *. !set_words /. !words else 0.0);
    misses_pct = Stats.pct !set_misses !misses;
  }
