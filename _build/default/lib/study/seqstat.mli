(** Sequence predictability and weight (Table 2).

    {e Core} sequences are those that would fit without self-conflict in an
    8 KB cache, {e regular} sequences in a 16 KB cache; we take the most
    popular sequences (schedule order) up to the byte budget.  For the
    blocks in such a set the table reports how predictably execution stays
    inside the set, and what share of executed blocks, references and
    misses they carry. *)

type set = {
  member : bool array;  (** Per OS block. *)
  next_in_seq : int array;  (** Successor inside the same sequence; -1. *)
  block_count : int;
  routine_count : int;
  bytes : int;
}

val of_sequences : Graph.t -> Sequence.t list -> budget_bytes:int -> set
(** Whole sequences are taken in schedule order while the budget allows. *)

type predictability = {
  to_any : float;  (** P(next executed OS block is in the set). *)
  to_next : float;  (** P(next executed OS block is the sequence
                        successor). *)
}

val predictability : set -> trace:Trace.t -> predictability

type weight = {
  static_pct : float;  (** Set blocks as % of executed blocks. *)
  refs_pct : float;  (** Words fetched in set blocks as % of OS words. *)
  misses_pct : float;  (** Set misses as % of OS misses. *)
}

val weight :
  set -> graph:Graph.t -> profile:Profile.t -> os_block_misses:int array -> weight
