type t = {
  model : Model.t;
  pairs : (Workload.t * Program.t) array;
  traces : Trace.t array;
  stats : Engine.stats array;
  os_profiles : Profile.t array;
  app_profiles : Profile.t array array;
  avg_os_profile : Profile.t;
  avg_app_profile : App_model.t -> Profile.t;
  words : int;
}

let create ?(spec = Spec.default) ?(words = 2_000_000) ?(seed = 11) () =
  let model = Generator.generate spec in
  let pairs = Workload.standard_programs model in
  let n = Array.length pairs in
  let traces = Array.make n (Trace.create ~capacity:16 ()) in
  let stats = Array.make n None in
  let os_profiles = Array.make n None in
  let app_profiles = Array.make n [||] in
  (* (app, profiles collected for it across workloads) *)
  let app_accum : (App_model.t * Profile.t list ref) list ref = ref [] in
  Array.iteri
    (fun i (w, program) ->
      let trace = Trace.create ~capacity:(words / 4) () in
      let profiles, profile_sink = Profile.sinks ~program in
      let sink = Engine.combine_sinks [ Engine.trace_sink trace; profile_sink ] in
      let s = Engine.run ~program ~workload:w ~words ~seed:(seed + i) ~sink in
      traces.(i) <- trace;
      stats.(i) <- Some s;
      os_profiles.(i) <- Some profiles.(0);
      app_profiles.(i) <- Array.sub profiles 1 (Array.length profiles - 1);
      Array.iteri
        (fun k app ->
          match List.find_opt (fun (a, _) -> a == app) !app_accum with
          | Some (_, acc) -> acc := profiles.(k + 1) :: !acc
          | None -> app_accum := (app, ref [ profiles.(k + 1) ]) :: !app_accum)
        program.Program.apps)
    pairs;
  let os_profiles = Array.map Option.get os_profiles in
  let avg_os_profile = Profile.average (Array.to_list os_profiles) in
  let averaged_apps =
    List.map (fun (app, acc) -> (app, Profile.average !acc)) !app_accum
  in
  let avg_app_profile app =
    match List.find_opt (fun (a, _) -> a == app) averaged_apps with
    | Some (_, p) -> p
    | None -> invalid_arg "Context.avg_app_profile: unknown application"
  in
  {
    model;
    pairs;
    traces;
    stats = Array.map Option.get stats;
    os_profiles;
    app_profiles;
    avg_os_profile;
    avg_app_profile;
    words;
  }

let workload_count t = Array.length t.pairs

let workload_names t = Array.map (fun (w, _) -> w.Workload.name) t.pairs

let os_graph t = t.model.Model.graph

let os_loops t = Program_layout.os_loops t.model
