lib/study/exp_fig14.ml: Address_map Array Base Config Context Graph Levels Missmap Model Report Runner
