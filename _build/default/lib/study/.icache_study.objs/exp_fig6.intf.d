lib/study/exp_fig6.mli: Context
