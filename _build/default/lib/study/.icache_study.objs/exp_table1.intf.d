lib/study/exp_table1.mli: Context
