lib/study/exp_fallthrough.ml: Array Context Levels List Program Program_layout Replay Report Stats Table Trace Workload
