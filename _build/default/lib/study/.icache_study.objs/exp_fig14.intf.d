lib/study/exp_fig14.mli: Context Levels
