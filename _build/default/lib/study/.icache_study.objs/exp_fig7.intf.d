lib/study/exp_fig7.mli: Context
