lib/study/exp_fig8.mli: Context
