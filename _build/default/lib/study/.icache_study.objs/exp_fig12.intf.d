lib/study/exp_fig12.mli: Context Levels
