lib/study/levels.mli: Context Opt Program_layout Replay
