lib/study/exp_table2.mli: Context Seqstat
