lib/study/exp_fig16.mli: Context
