lib/study/exp_policy.ml: Array Config Context Counters Levels Report Runner System Table Workload
