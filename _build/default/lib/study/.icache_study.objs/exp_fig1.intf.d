lib/study/exp_fig1.mli: Context
