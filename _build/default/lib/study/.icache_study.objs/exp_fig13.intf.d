lib/study/exp_fig13.mli: Context Levels
