lib/study/exp_fig1.ml: Address_map Array Config Context Counters Graph Levels List Missmap Program Program_layout Replay Report Stats System Trace
