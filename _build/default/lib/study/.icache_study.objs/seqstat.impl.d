lib/study/seqstat.ml: Array Block Graph Hashtbl List Profile Program Sequence Stats Trace
