lib/study/report.ml: Printf String
