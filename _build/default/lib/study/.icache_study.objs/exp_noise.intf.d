lib/study/exp_noise.mli: Context Profile
