lib/study/exp_fig15.ml: Array Config Context Counters Levels List Opt Printf Report Runner Speedup Table Workload
