lib/study/exp_victim.mli: Context Levels
