lib/study/exp_fig17.ml: Array Config Context Counters Levels List Opt Printf Report Runner Stats Table Workload
