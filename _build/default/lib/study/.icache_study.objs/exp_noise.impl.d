lib/study/exp_noise.ml: Array Config Context Counters Float Opt Printf Prng Profile Program_layout Report Runner Stats System Table Workload
