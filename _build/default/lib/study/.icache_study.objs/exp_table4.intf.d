lib/study/exp_table4.mli: Context Service
