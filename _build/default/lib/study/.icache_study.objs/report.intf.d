lib/study/report.mli:
