lib/study/exp_table4.ml: Array Context List Model Printf Report Schedule Sequence Service Table
