lib/study/levels.ml: Array Context Opt Program Program_layout Workload
