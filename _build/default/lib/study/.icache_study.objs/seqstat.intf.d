lib/study/seqstat.mli: Graph Profile Sequence Trace
