lib/study/exp_fig4.mli: Context
