lib/study/exp_inline.mli: Context Inline
