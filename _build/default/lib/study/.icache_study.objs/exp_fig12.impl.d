lib/study/exp_fig12.ml: Array Config Context Counters Levels Report Runner Stats Table Workload
