lib/study/exp_mp.mli: Context
