lib/study/exp_table3.mli: Context
