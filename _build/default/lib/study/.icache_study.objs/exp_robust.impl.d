lib/study/exp_robust.ml: Array Config Context Counters Levels Report Runner Spec Stats System Table
