lib/study/exp_victim.ml: Array Config Context Counters Levels List Report Runner System Table Workload
