lib/study/exp_policy.mli: Config Context
