lib/study/exp_ph.mli: Context
