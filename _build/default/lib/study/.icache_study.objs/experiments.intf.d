lib/study/experiments.mli: Context
