lib/study/exp_curve.mli: Context
