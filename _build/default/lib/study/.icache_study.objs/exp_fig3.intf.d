lib/study/exp_fig3.mli: Arcstat Context
