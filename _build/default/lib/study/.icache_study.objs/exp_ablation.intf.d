lib/study/exp_ablation.mli: Context
