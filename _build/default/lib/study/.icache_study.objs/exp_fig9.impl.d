lib/study/exp_fig9.ml: Arc Array Graph Hashtbl List Printf Profile Report Schedule Sequence String
