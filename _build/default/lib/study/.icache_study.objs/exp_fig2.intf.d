lib/study/exp_fig2.mli: Context
