lib/study/exp_fig13.ml: Address_map Array Block Config Context Graph Levels Profile Program_layout Report Runner Table Workload
