lib/study/exp_crossval.mli: Context
