lib/study/exp_fig6.ml: Array Context Popularity Profile Report Workload
