lib/study/exp_fallthrough.mli: Context Replay Trace
