lib/study/exp_fig8.ml: Array Context Popularity Profile Report
