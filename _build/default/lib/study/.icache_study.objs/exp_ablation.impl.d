lib/study/exp_ablation.ml: Array Config Context Counters Levels List Opt Program_layout Report Runner Schedule Service Stats System Table Workload
