lib/study/runner.ml: Array Context Counters Graph Program Program_layout Replay System Trace
