lib/study/exp_ph.ml: Array Base Chang_hwu Config Context Counters List Model Opt Pettis_hansen Program_layout Report Runner System Table Workload
