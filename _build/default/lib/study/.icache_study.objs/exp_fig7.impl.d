lib/study/exp_fig7.ml: Array Chart Context Histogram List Model Popularity Profile Report Reuse Stats String
