lib/study/exp_fig5.mli: Context
