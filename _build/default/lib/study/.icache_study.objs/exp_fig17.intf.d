lib/study/exp_fig17.mli: Context
