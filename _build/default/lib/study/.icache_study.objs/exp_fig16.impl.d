lib/study/exp_fig16.ml: Array Config Context Counters Levels List Opt Printf Report Runner Scf Stats Table Workload
