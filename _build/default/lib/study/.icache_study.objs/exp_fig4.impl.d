lib/study/exp_fig4.ml: Array Chart Context Histogram List Loopstat Profile Report Stats
