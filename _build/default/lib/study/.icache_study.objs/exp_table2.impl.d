lib/study/exp_table2.ml: Array Config Context Levels Model Report Runner Schedule Seqstat Sequence Table Workload
