lib/study/context.ml: App_model Array Engine Generator List Model Option Profile Program Program_layout Spec Trace Workload
