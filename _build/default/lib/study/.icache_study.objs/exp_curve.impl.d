lib/study/exp_curve.ml: Array Config Context Counters Levels Program_layout Report Runner Stack_dist System Table Workload
