lib/study/exp_inline.ml: Array Config Context Counters Engine Float Graph Inline Levels Loops Model Opt Option Profile Program_layout Replay Report Runner Stats System Table Trace Workload
