lib/study/exp_fig3.ml: Arcstat Array Chart Context List Printf Profile Report
