lib/study/exp_fig18.mli: Context
