lib/study/exp_fig9.mli: Context
