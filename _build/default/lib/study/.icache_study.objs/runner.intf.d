lib/study/runner.mli: Config Context Counters Program_layout System
