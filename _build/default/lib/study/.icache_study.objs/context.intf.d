lib/study/context.mli: App_model Engine Graph Loops Model Profile Program Spec Trace Workload
