lib/study/exp_fig5.ml: Array Chart Context Histogram List Loopstat Profile Report Stats
