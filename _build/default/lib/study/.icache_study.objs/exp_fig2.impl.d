lib/study/exp_fig2.ml: Address_map Array Base Block Context Graph List Missmap Model Profile Report Stats Workload
