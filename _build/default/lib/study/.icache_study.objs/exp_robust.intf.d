lib/study/exp_robust.mli: Context
