lib/study/exp_fig18.ml: Array Call_opt Config Context Counters Levels Opt Program_layout Report Runner Stats System Table Workload
