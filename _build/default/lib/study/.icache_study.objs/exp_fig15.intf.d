lib/study/exp_fig15.mli: Context
