lib/study/exp_table3.ml: Array Context Loopstat Report Table Workload
