lib/study/exp_table1.ml: Array Context Engine Graph Profile Report Service Stats Table Workload
