lib/study/exp_crossval.ml: Array Config Context Counters Opt Program_layout Report Runner Stats System Table Workload
