lib/study/exp_mp.ml: Array Config Context Counters Levels Multiproc Program_layout Replay Report Stats System Table Trace Workload
