(** Output helpers shared by the experiment drivers. *)

val section : string -> unit
(** Print a banner for one experiment. *)

val note : ('a, unit, string, unit) format4 -> 'a
(** Print an indented remark line. *)

val paper : string -> unit
(** Print the paper's reported value/shape for side-by-side comparison. *)
