(** Trace-replay driver: simulates cache systems for every workload under
    given per-workload layouts.

    A warm-up prefix of each trace fills the cache before counters start,
    matching the paper's mid-execution hardware traces ("misses caused by
    first-time references are negligible"). *)

type run = {
  counters : Counters.t;
  os_block_misses : int array;  (** Per OS block; empty unless requested. *)
}

val simulate :
  Context.t -> layouts:Program_layout.t array ->
  system:(unit -> System.t) ->
  ?attribute_os:bool -> ?warmup_fraction:float -> unit ->
  run array
(** One run per workload.  [system] builds a fresh cache system per
    workload.  Default warm-up: the first 20% of events. *)

val simulate_config :
  Context.t -> layouts:Program_layout.t array -> config:Config.t ->
  ?attribute_os:bool -> unit -> run array
(** {!simulate} with a unified cache of the given geometry. *)

val total : run array -> Counters.t
(** Sum of all workloads' counters. *)
