let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let paper s = Printf.printf "  [paper] %s\n" s
