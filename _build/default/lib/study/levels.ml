type level = Base | CH | OptS | OptL | OptA

let all = [| Base; CH; OptS; OptL; OptA |]

let to_string = function
  | Base -> "Base"
  | CH -> "C-H"
  | OptS -> "OptS"
  | OptL -> "OptL"
  | OptA -> "OptA"

let build (ctx : Context.t) ?(params = Opt.params ()) level =
  let model = ctx.Context.model in
  let os_profile = ctx.Context.avg_os_profile in
  Array.map
    (fun ((_w : Workload.t), program) ->
      match level with
      | Base -> Program_layout.base ~model ~program
      | CH -> Program_layout.chang_hwu ~model ~program ~os_profile
      | OptS -> Program_layout.opt_s ~model ~program ~os_profile ~params ()
      | OptL -> Program_layout.opt_l ~model ~program ~os_profile ~params ()
      | OptA ->
          let app_profiles =
            Array.map ctx.Context.avg_app_profile program.Program.apps
          in
          Program_layout.opt_a ~model ~program ~os_profile ~app_profiles ~params ())
    ctx.Context.pairs

let build_opt_s_with ctx ~params = build ctx ~params OptS

let code_maps layouts = Array.map Program_layout.code_map layouts
