(** Methodology robustness: the OptS/Base total-miss ratio on the 8 KB
    cache as the traced word budget varies, showing the committed 2 M-word
    configuration is long enough. *)

type point = { words : int; ratio : float }

val budgets : int array

val compute : Context.t -> point array
val run : Context.t -> unit
