(** Registry of every reproduced table and figure. *)

type t = {
  id : string;  (** e.g. "table1", "fig12". *)
  title : string;
  run : Context.t -> unit;
}

val all : t list
(** In paper order. *)

val find : string -> t
(** @raise Not_found on an unknown id. *)

val run_all : Context.t -> unit
