type t = { id : string; title : string; run : Context.t -> unit }

let all =
  [
    { id = "table1"; title = "OS reference characteristics"; run = Exp_table1.run };
    { id = "fig1"; title = "OS miss-address distribution"; run = Exp_fig1.run };
    { id = "fig2"; title = "OS reference-address distribution"; run = Exp_fig2.run };
    { id = "fig3"; title = "arc-probability distribution"; run = Exp_fig3.run };
    { id = "table2"; title = "sequence predictability and weight"; run = Exp_table2.run };
    { id = "table3"; title = "loops without calls"; run = Exp_table3.run };
    { id = "fig4"; title = "loops without calls: distributions"; run = Exp_fig4.run };
    { id = "fig5"; title = "loops with calls: distributions"; run = Exp_fig5.run };
    { id = "fig6"; title = "routine invocation skew"; run = Exp_fig6.run };
    { id = "fig7"; title = "temporal reuse of hot routines"; run = Exp_fig7.run };
    { id = "fig8"; title = "basic-block invocation skew"; run = Exp_fig8.run };
    { id = "fig9"; title = "worked placement example"; run = Exp_fig9.run };
    { id = "table4"; title = "threshold schedule"; run = Exp_table4.run };
    { id = "fig12"; title = "misses by layout level"; run = Exp_fig12.run };
    { id = "fig13"; title = "refs/misses by region"; run = Exp_fig13.run };
    { id = "fig14"; title = "miss distribution by layout"; run = Exp_fig14.run };
    { id = "fig15"; title = "cache-size sweep and speedups"; run = Exp_fig15.run };
    { id = "fig16"; title = "SelfConfFree-area sweep"; run = Exp_fig16.run };
    { id = "fig17"; title = "line-size and associativity sweeps"; run = Exp_fig17.run };
    { id = "fig18"; title = "Sep/Resv/Call setups"; run = Exp_fig18.run };
    { id = "ablation"; title = "OptS ingredient ablation"; run = Exp_ablation.run };
    { id = "inline"; title = "inlining vs sequences"; run = Exp_inline.run };
    { id = "mp"; title = "4-CPU per-processor miss rates"; run = Exp_mp.run };
    { id = "ph"; title = "Pettis-Hansen baseline comparison"; run = Exp_ph.run };
    { id = "curve"; title = "conflict vs capacity decomposition"; run = Exp_curve.run };
    { id = "policy"; title = "replacement-policy sensitivity"; run = Exp_policy.run };
    { id = "robust"; title = "trace-length robustness"; run = Exp_robust.run };
    { id = "victim"; title = "victim cache vs software layout"; run = Exp_victim.run };
    { id = "crossval"; title = "profile cross-validation"; run = Exp_crossval.run };
    { id = "fallthrough"; title = "fall-through rates by layout"; run = Exp_fallthrough.run };
    { id = "noise"; title = "profile-noise sensitivity"; run = Exp_noise.run };
  ]

let find id = List.find (fun e -> e.id = id) all

let run_all ctx = List.iter (fun e -> e.run ctx) all
