(** The paper's simple execution-time model (Section 5.2): references take
    1 cycle; an instruction miss costs [penalty] extra cycles; data
    references are 30% as numerous as instruction references and miss 5% of
    the time; I/O slowdown is neglected. *)

val data_ref_ratio : float
(** 0.3. *)

val data_miss_rate : float
(** 0.05. *)

val penalties : int array
(** The paper's three miss penalties: 10, 30, 50 cycles. *)

val cycles_per_instruction : inst_miss_rate:float -> penalty:int -> float
(** Cycles per instruction reference under the model (including the
    prorated data-access time). *)

val speed_increase : base_miss_rate:float -> opt_miss_rate:float -> penalty:int -> float
(** Percentage execution-speed increase of the optimized layout over the
    base layout (Figure 15-(b)). *)
