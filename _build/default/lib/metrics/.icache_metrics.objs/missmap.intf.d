lib/metrics/missmap.mli:
