lib/metrics/missmap.ml: Array List
