lib/metrics/speedup.ml:
