lib/metrics/speedup.mli:
