(** Miss-address distributions (Figures 1 and 14): per-block miss counts
    aggregated over address bins of a reference placement.  Figure 14 plots
    every layout against the {e Base} addresses so peaks are comparable;
    passing the Base map as [positions] reproduces that. *)

val by_address :
  positions:int array -> sizes:int array -> misses:int array -> bin:int ->
  int array
(** [by_address ~positions ~sizes ~misses ~bin] returns bin counts where
    block [b]'s misses land in the bin of [positions.(b)].  [bin] is the
    bin width in bytes (the paper uses 1 Kbyte). *)

val peaks : int array -> n:int -> (int * int) list
(** The [n] largest bins as (bin index, count), descending. *)

val peak_fraction : int array -> n:int -> float
(** Fraction of all misses contained in the [n] largest bins (the paper's
    "peaks contain 21.3% ... of the misses"). *)
