let data_ref_ratio = 0.3

let data_miss_rate = 0.05

let penalties = [| 10; 30; 50 |]

let cycles_per_instruction ~inst_miss_rate ~penalty =
  let m = float_of_int penalty in
  1.0 +. (inst_miss_rate *. m)
  +. (data_ref_ratio *. (1.0 +. (data_miss_rate *. m)))

let speed_increase ~base_miss_rate ~opt_miss_rate ~penalty =
  let t_base = cycles_per_instruction ~inst_miss_rate:base_miss_rate ~penalty in
  let t_opt = cycles_per_instruction ~inst_miss_rate:opt_miss_rate ~penalty in
  100.0 *. ((t_base /. t_opt) -. 1.0)
