let by_address ~positions ~sizes ~misses ~bin =
  if bin <= 0 then invalid_arg "Missmap.by_address: bin must be positive";
  let extent =
    Array.fold_left max 0
      (Array.mapi (fun b pos -> pos + sizes.(b)) positions)
  in
  let bins = Array.make ((extent / bin) + 1) 0 in
  Array.iteri
    (fun b m -> if m > 0 then bins.(positions.(b) / bin) <- bins.(positions.(b) / bin) + m)
    misses;
  bins

let peaks bins ~n =
  let indexed = Array.mapi (fun i c -> (i, c)) bins in
  Array.sort (fun (_, a) (_, b) -> compare b a) indexed;
  Array.to_list (Array.sub indexed 0 (min n (Array.length indexed)))

let peak_fraction bins ~n =
  let total = Array.fold_left ( + ) 0 bins in
  if total = 0 then 0.0
  else begin
    let top = peaks bins ~n in
    let in_peaks = List.fold_left (fun acc (_, c) -> acc + c) 0 top in
    float_of_int in_peaks /. float_of_int total
  end
