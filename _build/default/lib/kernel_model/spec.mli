(** Parameters of the synthetic kernel.  Defaults are calibrated against
    the structural statistics the paper reports for Concentrix 3.0:
    ~0.94 MB of kernel code, ~44 K basic blocks averaging 21.3 bytes,
    ~2 K routines of which ~26% are ever invoked, ~8.5 K executed basic
    blocks over the union of workloads, and the loop populations of
    Figures 4 and 5. *)

type t = {
  seed : int;  (** Master PRNG seed; everything is deterministic in it. *)
  leaf_count : int;  (** Small hot utility routines (Section 3.2.3). *)
  sub_mid_count : int;  (** Lower service layer. *)
  mid_count : int;  (** Upper service layer. *)
  handler_counts : int array;
      (** Per {!Service.t} class (paper order): number of top-level
          handlers reachable from that class's dispatch. *)
  cold_count : int;  (** Routines holding never/rarely-executed code. *)
  zipf_callee : float;  (** Skew of callee popularity within a layer. *)
  loop_iters_plain : (int * float) array;
      (** Mean-iteration choices (value, weight) for loops without calls;
          calibrated so ~50% of loops run <= 6 iterations (Figure 4). *)
  loop_iters_call : (int * float) array;
      (** Same for loops with calls: usually 10 or fewer (Figure 5). *)
}

val default : t
(** The calibrated kernel used by all experiments ([seed = 42]). *)

val small : t
(** A scaled-down kernel for fast unit/integration tests. *)

val with_seed : t -> int -> t
