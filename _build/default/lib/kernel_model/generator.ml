(* Picks [count] distinct values by repeated sampling of [dist]; falls back
   to lower indices when the distribution keeps returning duplicates. *)
let pick_distinct g dist ~count ~bound =
  let count = min count bound in
  let chosen = Hashtbl.create count in
  let out = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length chosen < count && !attempts < count * 30 do
    incr attempts;
    let v = Dist.sample dist g in
    if not (Hashtbl.mem chosen v) then begin
      Hashtbl.add chosen v ();
      out := v :: !out
    end
  done;
  let i = ref 0 in
  while Hashtbl.length chosen < count do
    if not (Hashtbl.mem chosen !i) then begin
      Hashtbl.add chosen !i ();
      out := !i :: !out
    end;
    incr i
  done;
  Array.of_list (List.rev !out)

let mean_iters_dist choices = Dist.weighted choices

(* Spread call positions over the hot path, keeping them distinct. *)
let call_positions g ~hot_len ~count =
  let avail = max 1 hot_len in
  let idx = pick_distinct g (Dist.uniform_int 0 (avail - 1)) ~count ~bound:avail in
  Array.sort compare idx;
  idx

(* Lock discipline: most service routines bracket their hot path with
   spin_lock (leaf 0) at the entry block and spin_unlock (leaf 1) just
   before the exit.  These two tiny leaves are therefore executed several
   times per OS invocation, reproducing the execution skew of Figure 8
   (a few basic blocks carry percents of all block executions) that the
   SelfConfFree area protects.  Other callees are shifted into the
   interior positions [1, hot_len-3]. *)
let calls_with_locks g ~hot_len ~callees ~lock_pool ~lock_prob =
  let interior = max 1 (hot_len - 3) in
  let positions = call_positions g ~hot_len:interior ~count:(Array.length callees) in
  let body =
    Array.to_list (Array.mapi (fun k p -> (p + 1, callees.(k))) positions)
  in
  match lock_pool with
  | Some (acquire, release) when hot_len >= 4 && Prng.bernoulli g lock_prob ->
      ((0, acquire) :: body) @ [ (hot_len - 2, release) ]
  | Some _ | None -> body

let generate (spec : Spec.t) =
  (* Leaves 0-11 (locks, timers, state save/restore, TLB, zero/copy,
     mult/div, splx, cpu_id) are wired into handlers and seed prologues. *)
  if spec.Spec.leaf_count < 12 then
    invalid_arg "Generator.generate: leaf_count must be at least 12";
  let master = Prng.of_int spec.seed in
  let g_structure = Prng.split master in
  let g_shapes = Prng.split master in
  let g_order = Prng.split master in
  let bld = Graph.builder () in
  let sink = Routine_gen.sink bld g_shapes in

  (* ---- Declare every routine up front so calls can reference them. ---- *)
  let leaves = Array.init spec.leaf_count (fun i -> Graph.declare_routine bld (Names.leaf i)) in
  let sub_mids =
    Array.init spec.sub_mid_count (fun i -> Graph.declare_routine bld (Names.sub_mid i))
  in
  let mids = Array.init spec.mid_count (fun i -> Graph.declare_routine bld (Names.mid i)) in
  let handlers =
    Array.mapi
      (fun ci n ->
        Array.init n (fun i -> Graph.declare_routine bld (Names.handler (Service.of_index ci) i)))
      spec.handler_counts
  in
  let seeds =
    Array.map (fun c -> Graph.declare_routine bld (Names.seed c)) Service.all
  in
  let colds = Array.init spec.cold_count (fun i -> Graph.declare_routine bld (Names.cold i)) in

  let zipf n = Dist.zipf ~n ~s:spec.zipf_callee in
  let leaf_zipf = zipf spec.leaf_count in
  let sub_mid_zipf = zipf spec.sub_mid_count in
  let mid_zipf = zipf spec.mid_count in
  let plain_iters = mean_iters_dist spec.loop_iters_plain in
  let call_iters = mean_iters_dist spec.loop_iters_call in

  (* ---- Leaf utilities: 1-5 blocks, no callees; a couple have the tight
     copy/zero loops of real kernels. ---- *)
  Array.iteri
    (fun i r ->
      (* Lock/spl utilities are one or two blocks; other leaves 1-5. *)
      let hot_len =
        if i <= 1 || i = 10 || i = 11 then 1 + Prng.int g_structure 2
        else 1 + Prng.int g_structure 4
      in
      let loops =
        (* block_zero / block_copy style leaves get a hot tight loop. *)
        if i = 7 || i = 9 then
          [ (0, { Routine_gen.body_blocks = 1; mean_iterations = 32.0; loop_call = None }) ]
        else if hot_len >= 3 && Prng.bernoulli g_structure 0.1 then
          [
            ( 0,
              {
                Routine_gen.body_blocks = 1 + Prng.int g_structure 2;
                mean_iterations = float_of_int (Dist.sample plain_iters g_structure);
                loop_call = None;
              } );
          ]
        else []
      in
      let hot_len = if loops <> [] then max hot_len 3 else hot_len in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          loops;
          cold_detour_prob = 0.15;
          cold_call_pool = [||];
        }
      in
      ignore (Routine_gen.emit sink shape))
    leaves;

  (* ---- Sub-mid services: call leaves; some have loops. ---- *)
  Array.iter
    (fun r ->
      let hot_len = 6 + Prng.int g_structure 9 in
      let n_calls = 1 in
      let callee_idx = pick_distinct g_structure leaf_zipf ~count:n_calls ~bound:spec.leaf_count in
      (* The Alliant's 68020-style software multiply/divide emulation is
         invoked from all over the kernel: the paper's hottest conflict
         peak is timer code against mult/div.  A third of the service
         routines call it on their hot path. *)
      let callees = Array.map (fun i -> leaves.(i)) callee_idx in
      let callees =
        if Prng.bernoulli g_structure 0.35 then Array.append callees [| leaves.(8) |]
        else callees
      in
      let calls =
        calls_with_locks g_structure ~hot_len ~callees
          ~lock_pool:(Some (leaves.(0), leaves.(1)))
          ~lock_prob:0.7
      in
      let loops =
        let roll = Prng.unit_float g_structure in
        if roll < 0.25 then
          let pos = ref 0 in
          let ok = ref false in
          for p = 0 to hot_len - 2 do
            if (not !ok) && not (List.mem_assoc p calls) then begin
              pos := p;
              ok := true
            end
          done;
          if !ok then
            [
              ( !pos,
                {
                  Routine_gen.body_blocks = 1 + Prng.int g_structure 3;
                  mean_iterations = float_of_int (Dist.sample plain_iters g_structure);
                  loop_call = None;
                } );
            ]
          else []
        else if roll < 0.30 then
          let pos = ref (-1) in
          for p = hot_len - 2 downto 0 do
            if List.mem_assoc p calls then () else pos := p
          done;
          if !pos >= 0 then
            [
              ( !pos,
                {
                  Routine_gen.body_blocks = 2 + Prng.int g_structure 4;
                  mean_iterations = float_of_int (Dist.sample call_iters g_structure);
                  loop_call = Some leaves.(Dist.sample leaf_zipf g_structure);
                } );
            ]
          else []
        else []
      in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          calls;
          loops;
          cold_call_pool = colds;
          cold_call_prob = 0.12;
        }
      in
      ignore (Routine_gen.emit sink shape))
    sub_mids;

  (* ---- Mid services: call sub-mids and leaves. ---- *)
  Array.iter
    (fun r ->
      let hot_len = 10 + Prng.int g_structure 15 in
      let n_sub = if Prng.bernoulli g_structure 0.3 then 2 else 1 in
      let n_leaf = Prng.int g_structure 2 in
      let sub_idx = pick_distinct g_structure sub_mid_zipf ~count:n_sub ~bound:spec.sub_mid_count in
      let leaf_idx = pick_distinct g_structure leaf_zipf ~count:n_leaf ~bound:spec.leaf_count in
      let callees =
        Array.append
          (Array.map (fun i -> sub_mids.(i)) sub_idx)
          (Array.map (fun i -> leaves.(i)) leaf_idx)
      in
      let callees =
        if Prng.bernoulli g_structure 0.35 then Array.append callees [| leaves.(8) |]
        else callees
      in
      let calls =
        calls_with_locks g_structure ~hot_len ~callees
          ~lock_pool:(Some (leaves.(0), leaves.(1)))
          ~lock_prob:0.8
      in
      let loops =
        let roll = Prng.unit_float g_structure in
        let free_pos =
          let pos = ref (-1) in
          for p = hot_len - 2 downto 0 do
            if not (List.mem_assoc p calls) then pos := p
          done;
          !pos
        in
        if free_pos < 0 then []
        else if roll < 0.20 then
          [
            ( free_pos,
              {
                Routine_gen.body_blocks = 1 + Prng.int g_structure 3;
                mean_iterations = float_of_int (Dist.sample plain_iters g_structure);
                loop_call = None;
              } );
          ]
        else if roll < 0.30 then
          [
            ( free_pos,
              {
                Routine_gen.body_blocks = 2 + Prng.int g_structure 5;
                mean_iterations = float_of_int (Dist.sample call_iters g_structure);
                loop_call = Some sub_mids.(Dist.sample sub_mid_zipf g_structure);
              } );
          ]
        else []
      in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          calls;
          loops;
          cold_call_pool = colds;
          cold_call_prob = 0.15;
        }
      in
      ignore (Routine_gen.emit sink shape))
    mids;

  (* ---- Handlers: call mids (and a few leaves).  The clock-interrupt
     handler is wired to the timer utilities, reproducing the paper's
     hottest conflict pair (timer vs. multiply/divide emulation). ---- *)
  Array.iteri
    (fun ci _per_class ->
      Array.iteri
        (fun hi r ->
          (* The handlers that dominate the invocation mix (clock and
             cross-processor interrupts, the common page-fault case, the
             context switch) are shallow: short hot paths calling a few
             tiny leaf utilities, as in real kernels.  This concentrates
             most block executions in a small set of blocks (Figure 8 /
             Table 4).  The rarer handlers - device interrupts, complex
             fault cases and above all system calls - descend into the
             mid-level service layers and provide the code-coverage
             breadth of Table 1. *)
          let shallow =
            (ci = Service.index Service.Interrupt && hi <= 2)
            || (ci = Service.index Service.Page_fault && hi <= 1)
            || (ci = Service.index Service.Other && hi = 0)
          in
          let hot_len =
            if shallow then 6 + Prng.int g_structure 6
            else 12 + Prng.int g_structure 19
          in
          let forced_leaves =
            if ci = Service.index Service.Interrupt && hi = 0 then
              (* clock_intr: timer_push_hrtime, timer_read_hrc, mult/div. *)
              [| leaves.(2); leaves.(3); leaves.(8) |]
            else if ci = Service.index Service.Other && hi = 0 then
              (* context_switch: save/restore state, TLB invalidation. *)
              [| leaves.(4); leaves.(5); leaves.(6) |]
            else if Prng.bernoulli g_structure 0.6 then
              [| leaves.(Dist.sample leaf_zipf g_structure) |]
            else [||]
          in
          let callees =
            if shallow then
              Array.append forced_leaves
                (Array.map
                   (fun i -> leaves.(i))
                   (pick_distinct g_structure leaf_zipf ~count:1
                      ~bound:spec.leaf_count))
            else begin
              let n_mid = if Prng.bernoulli g_structure 0.3 then 2 else 1 in
              let mid_idx =
                pick_distinct g_structure mid_zipf ~count:n_mid ~bound:spec.mid_count
              in
              Array.append (Array.map (fun i -> mids.(i)) mid_idx) forced_leaves
            end
          in
          let calls =
            calls_with_locks g_structure ~hot_len ~callees
              ~lock_pool:(Some (leaves.(10), leaves.(11)))
              ~lock_prob:0.85
          in
          let loops =
            if (not shallow) && Prng.bernoulli g_structure 0.15 then begin
              let pos = ref (-1) in
              for p = hot_len - 2 downto 0 do
                if not (List.mem_assoc p calls) then pos := p
              done;
              if !pos >= 0 then
                [
                  ( !pos,
                    {
                      Routine_gen.body_blocks = 2 + Prng.int g_structure 5;
                      mean_iterations = float_of_int (Dist.sample call_iters g_structure);
                      loop_call = Some mids.(Dist.sample mid_zipf g_structure);
                    } );
                ]
              else []
            end
            else []
          in
          let shape =
            {
              (Routine_gen.default_shape ~routine:r) with
              hot_len;
              calls;
              loops;
              cold_call_pool = colds;
              cold_call_prob = 0.18;
            }
          in
          ignore (Routine_gen.emit sink shape))
        handlers.(ci))
    handlers;

  (* ---- Cold special-case routines: only reachable through cold arcs.
     They may call earlier cold routines (keeps the call graph acyclic). *)
  Array.iteri
    (fun i r ->
      let hot_len = 3 + Prng.int g_structure 14 in
      let pool = if i = 0 then [||] else Array.sub colds 0 i in
      let n_calls = if i = 0 then 0 else Prng.int g_structure 3 in
      let calls =
        if n_calls = 0 then []
        else begin
          let positions = call_positions g_structure ~hot_len ~count:n_calls in
          Array.to_list
            (Array.map (fun p -> (p, pool.(Prng.int g_structure (Array.length pool)))) positions)
        end
      in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          calls;
          cold_detour_prob = 0.5;
          cold_call_pool = pool;
          cold_call_prob = 0.1;
        }
      in
      ignore (Routine_gen.emit sink shape))
    colds;

  (* ---- Seed routines: prologue (state save), dispatch, epilogue. ---- *)
  let seed_infos = Array.make Service.count None in
  let dispatches = Array.make Service.count None in
  Array.iteri
    (fun ci seed_routine ->
      let class_handlers = handlers.(ci) in
      let n = Array.length class_handlers in
      let blk ?call size =
        Graph.add_block bld ~routine:seed_routine ~size ?call ()
      in
      (* Prologue: raw entry, state save (calls save_state), lock check. *)
      let entry = blk 24 in
      let save = blk ~call:leaves.(4) 16 in
      let prio = blk ~call:leaves.(10) 12 in
      (* Time-stamping on entry: every invocation reads the clock. *)
      let stamp = blk ~call:leaves.(3) 12 in
      let dispatch = blk 20 in
      let call_blocks =
        Array.map (fun h -> blk ~call:h 8) class_handlers
      in
      let epi1 = blk ~call:leaves.(5) 16 in
      let exit = blk 20 in
      let arc ~src ~dst kind p =
        let a = Graph.add_arc bld ~src ~dst kind in
        Routine_gen.set_arc_probability sink a p;
        a
      in
      ignore (arc ~src:entry ~dst:save Arc.Fallthrough 1.0);
      ignore (arc ~src:save ~dst:prio Arc.Fallthrough 1.0);
      ignore (arc ~src:prio ~dst:stamp Arc.Fallthrough 1.0);
      ignore (arc ~src:stamp ~dst:dispatch Arc.Fallthrough 1.0);
      let dispatch_arcs =
        Array.mapi
          (fun hi cb ->
            let a = arc ~src:dispatch ~dst:cb Arc.Taken (1.0 /. float_of_int n) in
            (a, hi))
          call_blocks
      in
      Array.iter (fun cb -> ignore (arc ~src:cb ~dst:epi1 Arc.Taken 1.0)) call_blocks;
      ignore (arc ~src:epi1 ~dst:exit Arc.Fallthrough 1.0);
      seed_infos.(ci) <-
        Some { Model.service = Service.of_index ci; routine = seed_routine; entry };
      dispatches.(ci) <- Some { Model.block = dispatch; arcs = dispatch_arcs })
    seeds;

  let graph = Graph.freeze bld in
  let arc_prob = Routine_gen.arc_probabilities sink ~graph in
  let base_order = Array.init (Graph.routine_count graph) (fun i -> i) in
  Prng.shuffle g_order base_order;
  {
    Model.graph;
    arc_prob;
    seeds = Array.map Option.get seed_infos;
    dispatches = Array.map Option.get dispatches;
    handlers;
    leaves;
    base_order;
  }
