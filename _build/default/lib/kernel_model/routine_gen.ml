type sink = {
  builder : Graph.builder;
  prng : Prng.t;
  mutable probs : (Arc.id * float) list;
}

let sink builder prng = { builder; prng; probs = [] }

let set_arc_probability s arc p = s.probs <- (arc, p) :: s.probs

let arc_probabilities s ~graph =
  let n = Graph.arc_count graph in
  let probs = Array.make n (-1.0) in
  List.iter (fun (a, p) -> probs.(a) <- p) s.probs;
  (* Default the rest: uniform share of the mass not claimed explicitly. *)
  for b = 0 to Graph.block_count graph - 1 do
    let arcs = Graph.out_arcs graph b in
    let claimed = ref 0.0 and unclaimed = ref 0 in
    Array.iter
      (fun a -> if probs.(a) < 0.0 then incr unclaimed else claimed := !claimed +. probs.(a))
      arcs;
    if !unclaimed > 0 then begin
      let share = Float.max 0.0 (1.0 -. !claimed) /. float_of_int !unclaimed in
      Array.iter (fun a -> if probs.(a) < 0.0 then probs.(a) <- share) arcs
    end
  done;
  probs

type loop_shape = {
  body_blocks : int;
  mean_iterations : float;
  loop_call : Routine.id option;
}

type shape = {
  routine : Routine.id;
  hot_len : int;
  calls : (int * Routine.id) list;
  loops : (int * loop_shape) list;
  cold_detour_prob : float;
  cold_len : Dist.t;
  cold_call_pool : Routine.id array;
  cold_call_prob : float;
  cold_exit_prob : float;
  cold_loop_prob : float;
  hot_size : Dist.t;
  cold_size : Dist.t;
}

(* Sizes are multiples of the 4-byte instruction word.  2..9 words uniform
   gives a 22-byte mean, matching the paper's 21.3-byte average block. *)
let hot_size_dist = Dist.scaled (Dist.uniform_int 2 9) 4.0

(* Cold special-case code tends to be bulkier straight-line blocks. *)
let cold_size_dist = Dist.scaled (Dist.uniform_int 3 13) 4.0

let cold_take_probability g =
  let exponent = -4.0 +. (Prng.unit_float g *. 3.2) in
  Float.pow 10.0 exponent

let default_shape ~routine =
  {
    routine;
    hot_len = 8;
    calls = [];
    loops = [];
    cold_detour_prob = 0.45;
    cold_len = Dist.uniform_int 1 4;
    cold_call_pool = [||];
    cold_call_prob = 0.15;
    cold_exit_prob = 0.3;
    cold_loop_prob = 0.25;
    hot_size = hot_size_dist;
    cold_size = cold_size_dist;
  }

let validate shape =
  if shape.hot_len < 1 then invalid_arg "Routine_gen.emit: hot_len < 1";
  List.iter
    (fun (i, l) ->
      if i < 0 || i >= shape.hot_len - 1 then
        invalid_arg "Routine_gen.emit: loop position out of range";
      if l.body_blocks < 1 then invalid_arg "Routine_gen.emit: empty loop body";
      if l.mean_iterations < 1.0 then
        invalid_arg "Routine_gen.emit: mean_iterations < 1";
      if List.mem_assoc i shape.calls then
        invalid_arg "Routine_gen.emit: loop and call share a position")
    shape.loops;
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= shape.hot_len then
        invalid_arg "Routine_gen.emit: call position out of range")
    shape.calls

(* Plan of the cold detour hanging off one hot block.  [cold_loop] marks
   a one- or two-block span of the chain that iterates: special-case code
   scanning a table or retrying an operation.  These populate the
   executed-loop census of Figures 4-5 without perturbing the hot paths;
   when the span covers the chain's call block the loop is a (cold) loop
   with procedure calls. *)
type cold_loop = { at : int; body : int; iters : float }

type cold_plan = {
  chain : Block.id array;
  exits_early : bool;
  cold_loop : cold_loop option;
}

let emit s shape =
  validate shape;
  let g = s.prng in
  let bld = s.builder in
  let hot = Array.make shape.hot_len (-1) in
  let loop_bodies = Array.make shape.hot_len [||] in
  let colds = Array.make shape.hot_len None in
  let add_block ~size ?call () =
    Graph.add_block bld ~routine:shape.routine ~size:(max Block.word_bytes size) ?call ()
  in
  (* Pass 1: create blocks in text order. *)
  for i = 0 to shape.hot_len - 1 do
    let call = List.assoc_opt i shape.calls in
    hot.(i) <- add_block ~size:(Dist.sample shape.hot_size g) ?call ();
    (match List.assoc_opt i shape.loops with
    | Some l ->
        let body =
          Array.init l.body_blocks (fun j ->
              let call = if j = 0 then l.loop_call else None in
              add_block ~size:(Dist.sample shape.hot_size g) ?call ())
        in
        loop_bodies.(i) <- body
    | None ->
        (* Cold detours only make sense where there is a join point and no
           loop already occupies the position. *)
        if i < shape.hot_len - 1 && Prng.bernoulli g shape.cold_detour_prob then begin
          let len = max 1 (Dist.sample shape.cold_len g) in
          let call_at =
            if
              Array.length shape.cold_call_pool > 0
              && Prng.bernoulli g shape.cold_call_prob
            then Some (Prng.int g len)
            else None
          in
          let chain =
            Array.init len (fun j ->
                let call =
                  match call_at with
                  | Some k when k = j -> Some (Prng.choose g shape.cold_call_pool)
                  | Some _ | None -> None
                in
                add_block ~size:(Dist.sample shape.cold_size g) ?call ())
          in
          let exits_early = Prng.bernoulli g shape.cold_exit_prob in
          (* The loop latch must keep an arc to the rest of the chain: an
             early-exiting chain's last block cannot be a latch (its only
             arc would be the self-arc, and a lone arc is always taken).
             Iterations over a call block are capped low so the cold-call
             branching process stays subcritical. *)
          let cold_loop =
            if Prng.bernoulli g shape.cold_loop_prob then begin
              let body = if len >= 2 && Prng.bernoulli g 0.4 then 2 else 1 in
              let last_ok = if exits_early then len - 2 else len - 1 in
              let max_at = last_ok - (body - 1) in
              if max_at < 0 then None
              else begin
                let at = Prng.int g (max_at + 1) in
                let covers_call =
                  match call_at with
                  | Some k -> k >= at && k < at + body
                  | None -> false
                in
                let iters =
                  if covers_call then float_of_int (2 + Prng.int g 2)
                  else float_of_int (2 + Prng.int g 11)
                in
                Some { at; body; iters }
              end
            end
            else None
          in
          colds.(i) <- Some { chain; exits_early; cold_loop }
        end)
  done;
  (* Pass 2: arcs and probabilities. *)
  let arc ~src ~dst kind p =
    let a = Graph.add_arc bld ~src ~dst kind in
    set_arc_probability s a p
  in
  for i = 0 to shape.hot_len - 2 do
    let next = hot.(i + 1) in
    match List.assoc_opt i shape.loops with
    | Some l ->
        let body = loop_bodies.(i) in
        let n = Array.length body in
        arc ~src:hot.(i) ~dst:body.(0) Arc.Fallthrough 1.0;
        for j = 0 to n - 2 do
          arc ~src:body.(j) ~dst:body.(j + 1) Arc.Fallthrough 1.0
        done;
        let q = 1.0 -. (1.0 /. l.mean_iterations) in
        let latch = body.(n - 1) in
        arc ~src:latch ~dst:hot.(i) Arc.Taken q;
        arc ~src:latch ~dst:next Arc.Fallthrough (1.0 -. q)
    | None -> (
        match colds.(i) with
        | None -> arc ~src:hot.(i) ~dst:next Arc.Fallthrough 1.0
        | Some { chain; exits_early; cold_loop } ->
            let pc = cold_take_probability g in
            arc ~src:hot.(i) ~dst:next Arc.Taken (1.0 -. pc);
            arc ~src:hot.(i) ~dst:chain.(0) Arc.Fallthrough pc;
            let n = Array.length chain in
            (* The latch block carries the back edge; its forward arc gets
               the remaining probability mass. *)
            let continue_prob j =
              match cold_loop with
              | Some { at; body; iters } when j = at + body - 1 ->
                  let q = 1.0 -. (1.0 /. iters) in
                  arc ~src:chain.(j) ~dst:chain.(at) Arc.Taken q;
                  1.0 -. q
              | Some _ | None -> 1.0
            in
            for j = 0 to n - 2 do
              let p = continue_prob j in
              arc ~src:chain.(j) ~dst:chain.(j + 1) Arc.Fallthrough p
            done;
            let p_last = continue_prob (n - 1) in
            if not exits_early then arc ~src:chain.(n - 1) ~dst:next Arc.Taken p_last)
  done;
  hot
