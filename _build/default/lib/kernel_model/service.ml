type t = Interrupt | Page_fault | Syscall | Other

let all = [| Interrupt; Page_fault; Syscall; Other |]

let count = Array.length all

let index = function Interrupt -> 0 | Page_fault -> 1 | Syscall -> 2 | Other -> 3

let of_index = function
  | 0 -> Interrupt
  | 1 -> Page_fault
  | 2 -> Syscall
  | 3 -> Other
  | i -> invalid_arg (Printf.sprintf "Service.of_index: %d" i)

let to_string = function
  | Interrupt -> "Interrupt"
  | Page_fault -> "PageFault"
  | Syscall -> "SysCall"
  | Other -> "Other"
