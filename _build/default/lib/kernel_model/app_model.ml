type t = {
  name : string;
  graph : Graph.t;
  arc_prob : float array;
  main : Routine.id;
  base_order : Routine.id array;
}

let finish ~name ~prng bld sink main =
  let graph = Graph.freeze bld in
  let arc_prob = Routine_gen.arc_probabilities sink ~graph in
  let base_order = Array.init (Graph.routine_count graph) (fun i -> i) in
  Prng.shuffle prng base_order;
  { name; graph; arc_prob; main; base_order }

(* Loop-dominated scientific code: [kernels] hold the vector loops,
   [phases] call them from short counted loops, [main] runs the phases. *)
let scientific ~name ~seed ~phases:n_phases ~kernels:n_kernels ~kernel_iters ~phase_iters () =
  let g = Prng.of_int seed in
  let bld = Graph.builder () in
  let sink = Routine_gen.sink bld g in
  let kernels =
    Array.init n_kernels (fun i -> Graph.declare_routine bld (Names.app name i))
  in
  let phases =
    Array.init n_phases (fun i ->
        Graph.declare_routine bld (Names.app name (n_kernels + i)))
  in
  let main = Graph.declare_routine bld (name ^ "_main") in
  Array.iter
    (fun r ->
      let hot_len = 3 + Prng.int g 3 in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          cold_detour_prob = 0.1;
          loops =
            [
              ( 0,
                {
                  Routine_gen.body_blocks = 1 + Prng.int g 2;
                  mean_iterations = float_of_int (Dist.sample kernel_iters g);
                  loop_call = None;
                } );
            ];
        }
      in
      ignore (Routine_gen.emit sink shape))
    kernels;
  Array.iter
    (fun r ->
      let hot_len = 8 + Prng.int g 6 in
      let n_loops = 2 + Prng.int g 2 in
      let loops =
        List.init n_loops (fun k ->
            ( k * 3,
              {
                Routine_gen.body_blocks = 2 + Prng.int g 2;
                mean_iterations = float_of_int (Dist.sample phase_iters g);
                loop_call = Some kernels.(Prng.int g n_kernels);
              } ))
      in
      let loops = List.filter (fun (p, _) -> p < hot_len - 1) loops in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          loops;
          cold_detour_prob = 0.15;
        }
      in
      ignore (Routine_gen.emit sink shape))
    phases;
  let main_shape =
    {
      (Routine_gen.default_shape ~routine:main) with
      hot_len = n_phases + 4;
      calls = List.init n_phases (fun i -> (i + 2, phases.(i)));
      cold_detour_prob = 0.05;
    }
  in
  ignore (Routine_gen.emit sink main_shape);
  finish ~name ~prng:g bld sink main

(* Branchy systems-style application: [utils] called from [workers] called
   from a big outer loop in [main]. *)
let branchy ~name ~seed ~utils:n_utils ~workers:n_workers ~worker_hot ~outer_iters
    ~worker_loop_frac () =
  let g = Prng.of_int seed in
  let bld = Graph.builder () in
  let sink = Routine_gen.sink bld g in
  let utils = Array.init n_utils (fun i -> Graph.declare_routine bld (Names.app name i)) in
  let workers =
    Array.init n_workers (fun i -> Graph.declare_routine bld (Names.app name (n_utils + i)))
  in
  let driver = Graph.declare_routine bld (name ^ "_driver") in
  let main = Graph.declare_routine bld (name ^ "_main") in
  let util_zipf = Dist.zipf ~n:n_utils ~s:1.2 in
  Array.iter
    (fun r ->
      let hot_len = 2 + Prng.int g 7 in
      let loops =
        if hot_len >= 3 && Prng.bernoulli g 0.2 then
          [
            ( 0,
              {
                Routine_gen.body_blocks = 1 + Prng.int g 2;
                mean_iterations = float_of_int (2 + Prng.int g 10);
                loop_call = None;
              } );
          ]
        else []
      in
      let shape =
        { (Routine_gen.default_shape ~routine:r) with hot_len; loops; cold_detour_prob = 0.35 }
      in
      ignore (Routine_gen.emit sink shape))
    utils;
  let worker_zipf = Dist.zipf ~n:n_workers ~s:1.05 in
  Array.iter
    (fun r ->
      let hot_len = worker_hot + Prng.int g worker_hot in
      let n_calls = 2 + Prng.int g 4 in
      let callee_idx =
        Array.init n_calls (fun _ -> Dist.sample util_zipf g)
      in
      let positions =
        Array.init n_calls (fun k -> 1 + (k * (hot_len - 2) / n_calls))
      in
      let calls =
        Array.to_list (Array.mapi (fun k p -> (p, utils.(callee_idx.(k)))) positions)
        |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
      in
      let loops =
        if Prng.bernoulli g worker_loop_frac then begin
          let pos = ref (-1) in
          for p = hot_len - 2 downto 0 do
            if not (List.mem_assoc p calls) then pos := p
          done;
          if !pos >= 0 then
            [
              ( !pos,
                {
                  Routine_gen.body_blocks = 2 + Prng.int g 3;
                  mean_iterations = float_of_int (2 + Prng.int g 8);
                  loop_call = Some utils.(Dist.sample util_zipf g);
                } );
            ]
          else []
        end
        else []
      in
      let shape =
        {
          (Routine_gen.default_shape ~routine:r) with
          hot_len;
          calls;
          loops;
          cold_detour_prob = 0.45;
        }
      in
      ignore (Routine_gen.emit sink shape))
    workers;
  (* Driver: one "work item" - calls a handful of workers in sequence. *)
  let driver_calls = 4 + Prng.int g 4 in
  let driver_shape =
    {
      (Routine_gen.default_shape ~routine:driver) with
      hot_len = driver_calls + 3;
      calls = List.init driver_calls (fun k -> (k + 1, workers.(Dist.sample worker_zipf g)));
      cold_detour_prob = 0.3;
    }
  in
  ignore (Routine_gen.emit sink driver_shape);
  let main_shape =
    {
      (Routine_gen.default_shape ~routine:main) with
      hot_len = 4;
      loops =
        [
          ( 1,
            {
              Routine_gen.body_blocks = 2;
              mean_iterations = float_of_int outer_iters;
              loop_call = Some driver;
            } );
        ];
      cold_detour_prob = 0.1;
    }
  in
  ignore (Routine_gen.emit sink main_shape);
  finish ~name ~prng:g bld sink main

let trfd ?(seed = 1001) () =
  scientific ~name:"trfd" ~seed ~phases:4 ~kernels:8
    ~kernel_iters:(Dist.weighted [| (20, 0.4); (40, 0.3); (80, 0.3) |])
    ~phase_iters:(Dist.weighted [| (8, 0.5); (16, 0.3); (32, 0.2) |])
    ()

let arc2d ?(seed = 1002) () =
  scientific ~name:"arc2d" ~seed ~phases:6 ~kernels:14
    ~kernel_iters:(Dist.weighted [| (60, 0.3); (120, 0.4); (250, 0.3) |])
    ~phase_iters:(Dist.weighted [| (16, 0.4); (40, 0.4); (100, 0.2) |])
    ()

let cc1 ?(seed = 1003) () =
  branchy ~name:"cc1" ~seed ~utils:60 ~workers:80 ~worker_hot:10 ~outer_iters:400
    ~worker_loop_frac:0.3 ()

let fsck ?(seed = 1004) () =
  branchy ~name:"fsck" ~seed ~utils:22 ~workers:24 ~worker_hot:6 ~outer_iters:1000
    ~worker_loop_frac:0.25 ()

let by_name = function
  | "trfd" -> trfd ()
  | "arc2d" -> arc2d ()
  | "cc1" -> cc1 ()
  | "fsck" -> fsck ()
  | name -> invalid_arg ("App_model.by_name: unknown application " ^ name)
