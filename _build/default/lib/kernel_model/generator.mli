(** Synthetic-kernel generation.

    Builds a whole-program flow graph with the layered structure described
    in DESIGN.md: tiny hot leaf utilities; two service layers with
    Zipf-skewed callee popularity; per-class top-level handlers; four seed
    routines (assembly-style prologue, dispatch, epilogue); and a large
    population of rarely-executed special-case routines reachable only
    through low-probability cold arcs. *)

val generate : Spec.t -> Model.t
(** Deterministic in [spec.seed]. *)
