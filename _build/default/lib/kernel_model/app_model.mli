(** Synthetic models of the paper's application codes (Section 2.3):

    - TRFD: small hand-parallelized Perfect-Club code dominated by tight
      matrix loops (69% of its dynamic instructions in loops);
    - ARC2D: 2-D fluid dynamics, even more loop-dominated (96%);
    - cc1: the second phase of the C compiler used in TRFD+Make - larger,
      branchy, with short loops over statements;
    - fsck: file-system checker - branchy I/O checking code with a big
      outer loop over inodes.

    The walker restarts [main] when it returns, so an application models an
    endlessly running program. *)

type t = {
  name : string;
  graph : Graph.t;
  arc_prob : float array;
  main : Routine.id;
  base_order : Routine.id array;
}

val trfd : ?seed:int -> unit -> t
val arc2d : ?seed:int -> unit -> t
val cc1 : ?seed:int -> unit -> t
val fsck : ?seed:int -> unit -> t

val by_name : string -> t
(** One of ["trfd"], ["arc2d"], ["cc1"], ["fsck"] with default seeds.
    @raise Invalid_argument otherwise. *)
