(** The four operating-system invocation classes of the paper (Section 3.2):
    each is also a layout {e seed} for sequence construction (Section 4.1). *)

type t = Interrupt | Page_fault | Syscall | Other

val all : t array
(** In paper order: interrupt, page fault, syscall, other. *)

val count : int

val index : t -> int
val of_index : int -> t
(** @raise Invalid_argument if out of range. *)

val to_string : t -> string
