(** Deterministic generation of plausible kernel / application routine
    names, used only for reporting (e.g. the Figure 7 top-routine list). *)

val leaf : int -> string
(** Name for the [i]-th leaf utility routine.  The first few are the
    paper's named hot utilities (lock handling, timer management, state
    save/restore, TLB invalidation, block zeroing, multiply/divide
    emulation). *)

val mid : int -> string
val sub_mid : int -> string
val handler : Service.t -> int -> string
val seed : Service.t -> string
val cold : int -> string
val app : string -> int -> string
