type seed_info = { service : Service.t; routine : Routine.id; entry : Block.id }

type dispatch = { block : Block.id; arcs : (Arc.id * int) array }

type t = {
  graph : Graph.t;
  arc_prob : float array;
  seeds : seed_info array;
  dispatches : dispatch array;
  handlers : Routine.id array array;
  leaves : Routine.id array;
  base_order : Routine.id array;
}

let seed_for t c = t.seeds.(Service.index c)

let dispatch_for t c = t.dispatches.(Service.index c)

let handler_count t c = Array.length t.handlers.(Service.index c)

let is_dispatch_block t b = Array.exists (fun d -> d.block = b) t.dispatches

let routine_name t r = (Graph.routine t.graph r).Routine.name
