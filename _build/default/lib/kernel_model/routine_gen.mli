(** Generation of a single routine's basic-block body into a
    {!Graph.builder}, in {e text order} (hot-path blocks interleaved with
    the seldom-executed special-case code that real systems code branches
    around, per Section 3.2.1 of the paper).

    The builder also records the intrinsic probability of every outgoing
    arc (conditional on its source block executing); these drive the
    workload walker and match the bimodal distribution of Figure 3. *)

type sink
(** Accumulates blocks, arcs and arc probabilities for one program. *)

val sink : Graph.builder -> Prng.t -> sink

val arc_probabilities : sink -> graph:Graph.t -> float array
(** Dense arc-probability array for the frozen graph.  Arcs that were
    given no explicit probability default to a uniform share of their
    source block's remaining mass (in practice: single-arc blocks get
    1.0). *)

val set_arc_probability : sink -> Arc.id -> float -> unit
(** Override/record one arc's probability (used for dispatch arcs). *)

type loop_shape = {
  body_blocks : int;  (** Blocks in the body besides the header; >= 1. *)
  mean_iterations : float;  (** Mean iterations per invocation; >= 1. *)
  loop_call : Routine.id option;  (** Callee invoked from inside the body. *)
}

type shape = {
  routine : Routine.id;  (** Pre-declared owner. *)
  hot_len : int;  (** Hot-path blocks; >= 1.  The last one is the exit. *)
  calls : (int * Routine.id) list;  (** Hot position -> callee. *)
  loops : (int * loop_shape) list;
      (** Hot position -> embedded loop whose header is that hot block.
          Positions must be distinct from call positions and < hot_len-1. *)
  cold_detour_prob : float;  (** Per hot block: chance of a cold side path. *)
  cold_len : Dist.t;  (** Cold-chain length in blocks (>= 1 samples). *)
  cold_call_pool : Routine.id array;  (** Cold chains may call these. *)
  cold_call_prob : float;
  cold_exit_prob : float;  (** Chance a cold chain returns early. *)
  cold_loop_prob : float;
      (** Chance a cold chain contains a small self-iterating block
          (special-case code scanning a table or retrying). *)
  hot_size : Dist.t;  (** Hot block byte sizes. *)
  cold_size : Dist.t;
}

val default_shape : routine:Routine.id -> shape
(** A plain shape: given hot length 8, no calls/loops, paper-calibrated
    size distributions and detour parameters; callers override fields. *)

val hot_size_dist : Dist.t
(** Hot-block sizes: multiples of 4 bytes with mean about 21 bytes (the
    paper reports 21.3-byte average basic blocks). *)

val cold_size_dist : Dist.t

val cold_take_probability : Prng.t -> float
(** Probability of entering a cold detour: log-uniform in about
    [1e-4, 0.16], reproducing the non-bimodal tail of Figure 3. *)

val emit : sink -> shape -> Block.id array
(** Generate the routine body; returns the hot-path block ids in order
    (entry first, exit last).
    @raise Invalid_argument on malformed shapes. *)
