type t = {
  seed : int;
  leaf_count : int;
  sub_mid_count : int;
  mid_count : int;
  handler_counts : int array;
  cold_count : int;
  zipf_callee : float;
  loop_iters_plain : (int * float) array;
  loop_iters_call : (int * float) array;
}

let default =
  {
    seed = 42;
    leaf_count = 40;
    sub_mid_count = 120;
    mid_count = 260;
    handler_counts = [| 12; 8; 60; 15 |];
    cold_count = 1300;
    zipf_callee = 1.25;
    loop_iters_plain =
      [|
        (2, 0.20); (3, 0.10); (4, 0.15); (6, 0.15); (8, 0.10); (12, 0.10);
        (20, 0.10); (30, 0.05); (60, 0.05);
      |];
    loop_iters_call =
      [|
        (2, 0.25); (3, 0.20); (4, 0.15); (6, 0.15); (8, 0.10); (10, 0.08);
        (15, 0.04); (25, 0.03);
      |];
  }

let small =
  {
    default with
    leaf_count = 12;
    sub_mid_count = 16;
    mid_count = 24;
    handler_counts = [| 4; 3; 8; 3 |];
    cold_count = 60;
  }

let with_seed t seed = { t with seed }
