(** The generated synthetic kernel: flow graph, intrinsic arc
    probabilities, the four seed entry points and their handler dispatch
    structure, and the link (Base) order of routines. *)

type seed_info = {
  service : Service.t;
  routine : Routine.id;
  entry : Block.id;
}

type dispatch = {
  block : Block.id;  (** The seed's dispatch block. *)
  arcs : (Arc.id * int) array;
      (** Outgoing dispatch arcs with the handler index each selects. *)
}

type t = {
  graph : Graph.t;
  arc_prob : float array;  (** Indexed by {!Arc.id}. *)
  seeds : seed_info array;  (** Indexed by {!Service.index}. *)
  dispatches : dispatch array;  (** Indexed by {!Service.index}. *)
  handlers : Routine.id array array;  (** Per class. *)
  leaves : Routine.id array;
  base_order : Routine.id array;
      (** Pseudo-random but deterministic link order; the Base layout
          concatenates routines in this order (conflicts in the paper
          "vary from recompilation to recompilation"). *)
}

val seed_for : t -> Service.t -> seed_info
val dispatch_for : t -> Service.t -> dispatch
val handler_count : t -> Service.t -> int
val is_dispatch_block : t -> Block.id -> bool
val routine_name : t -> Routine.id -> string
