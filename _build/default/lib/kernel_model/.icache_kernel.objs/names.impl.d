lib/kernel_model/names.ml: Array Printf Service
