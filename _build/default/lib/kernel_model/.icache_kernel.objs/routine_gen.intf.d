lib/kernel_model/routine_gen.mli: Arc Block Dist Graph Prng Routine
