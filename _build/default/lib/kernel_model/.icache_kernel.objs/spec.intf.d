lib/kernel_model/spec.mli:
