lib/kernel_model/spec.ml:
