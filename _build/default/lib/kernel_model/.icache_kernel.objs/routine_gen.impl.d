lib/kernel_model/routine_gen.ml: Arc Array Block Dist Float Graph List Prng Routine
