lib/kernel_model/service.ml: Array Printf
