lib/kernel_model/app_model.mli: Graph Routine
