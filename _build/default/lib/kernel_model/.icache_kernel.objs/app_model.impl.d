lib/kernel_model/app_model.ml: Array Dist Graph List Names Prng Routine Routine_gen
