lib/kernel_model/service.mli:
