lib/kernel_model/generator.mli: Model Spec
