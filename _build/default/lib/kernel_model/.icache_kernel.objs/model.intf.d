lib/kernel_model/model.mli: Arc Block Graph Routine Service
