lib/kernel_model/model.ml: Arc Array Block Graph Routine Service
