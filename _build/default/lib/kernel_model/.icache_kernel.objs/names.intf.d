lib/kernel_model/names.mli: Service
