lib/kernel_model/generator.ml: Arc Array Dist Graph Hashtbl List Model Names Option Prng Routine_gen Service Spec
