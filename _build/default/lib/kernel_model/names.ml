(* The first leaf names mirror the hot utilities the paper singles out in
   Section 3.2.3; later indices fall back to generated names. *)
let named_leaves =
  [|
    "spin_lock"; "spin_unlock"; "timer_push_hrtime"; "timer_read_hrc";
    "save_state"; "restore_state"; "tlb_invalidate"; "block_zero";
    "mult_div_emul"; "block_copy"; "splx"; "cpu_id";
  |]

let leaf i =
  if i < Array.length named_leaves then named_leaves.(i)
  else Printf.sprintf "util_%02d" i

let mid_stems =
  [|
    "vm_fault"; "pmap_enter"; "sched_pick"; "runq_insert"; "softclock";
    "hardclock_body"; "copyin"; "copyout"; "namei"; "ufs_lookup"; "bread";
    "brelse"; "getblk"; "bio_done"; "selwakeup"; "sleep_on"; "wakeup";
    "fork_body"; "exit_body"; "exec_image"; "sig_deliver"; "pipe_io";
    "sock_send"; "sock_recv"; "tty_input"; "tty_output"; "vm_pageout";
    "swap_alloc"; "pte_update"; "cross_call_body"; "ipi_ack"; "proc_find";
  |]

let mid i =
  if i < Array.length mid_stems then mid_stems.(i)
  else Printf.sprintf "svc_%03d" i

let sub_mid i = Printf.sprintf "sub_%03d" i

let handler c i =
  let stem =
    match c with
    | Service.Interrupt -> (
        match i with
        | 0 -> "clock_intr"
        | 1 -> "xproc_intr"
        | 2 -> "sync_intr"
        | 3 -> "disk_intr"
        | 4 -> "net_intr"
        | _ -> Printf.sprintf "dev_intr_%d" i)
    | Service.Page_fault -> (
        match i with
        | 0 -> "tlb_miss_fault"
        | 1 -> "demand_zero_fault"
        | 2 -> "cow_fault"
        | 3 -> "file_page_fault"
        | _ -> Printf.sprintf "fault_case_%d" i)
    | Service.Syscall -> (
        match i with
        | 0 -> "sys_read"
        | 1 -> "sys_write"
        | 2 -> "sys_open"
        | 3 -> "sys_close"
        | 4 -> "sys_fork"
        | 5 -> "sys_execve"
        | 6 -> "sys_wait"
        | 7 -> "sys_brk"
        | 8 -> "sys_stat"
        | 9 -> "sys_ioctl"
        | _ -> Printf.sprintf "sys_misc_%d" i)
    | Service.Other -> (
        match i with
        | 0 -> "context_switch"
        | 1 -> "trap_misc"
        | 2 -> "ast_handler"
        | _ -> Printf.sprintf "other_case_%d" i)
  in
  stem

let seed c =
  match c with
  | Service.Interrupt -> "intr_entry"
  | Service.Page_fault -> "fault_entry"
  | Service.Syscall -> "syscall_entry"
  | Service.Other -> "trap_entry"

let cold i = Printf.sprintf "rare_%04d" i

let app name i = Printf.sprintf "%s_fn_%03d" name i
