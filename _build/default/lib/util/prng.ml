type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy g = { state = g.state }

(* SplitMix64 step: advance by the golden gamma, then mix (Stafford's
   variant 13 finalizer). *)
let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = create (next_int64 g)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 usable bits dwarf any bound used
     here, so modulo bias is negligible.  62 bits (not 63) so the value
     fits OCaml's native int without wrapping negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  v mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bits *. 0x1p-53

let float g bound = unit_float g *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = unit_float g < p

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let choose_weighted g choices =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  if not (total > 0.0) then
    invalid_arg "Prng.choose_weighted: weights must sum to a positive value";
  let target = float g total in
  let n = Array.length choices in
  let rec scan i acc =
    let x, w = choices.(i) in
    let acc = acc +. w in
    if target < acc || i = n - 1 then x else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
