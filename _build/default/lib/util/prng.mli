(** Deterministic pseudo-random number generation.

    The whole reproduction pipeline must be reproducible run-to-run, so we
    implement SplitMix64 explicitly rather than relying on [Random], whose
    sequence is not guaranteed stable across OCaml releases.  A [t] is a
    mutable stream; independent streams are obtained with {!split}. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g], advancing
    independently afterwards. *)

val split : t -> t
(** [split g] draws from [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 stream. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice among the elements.  @raise Invalid_argument on [||]. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** [choose_weighted g choices] picks an element with probability
    proportional to its weight.  Weights must be non-negative and not all
    zero.  @raise Invalid_argument otherwise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
