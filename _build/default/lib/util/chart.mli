(** Minimal ASCII bar charts for rendering the paper's figures in the
    benchmark harness. *)

val bars :
  ?width:int -> ?title:string -> ?value_fmt:(float -> string) ->
  (string * float) list -> string
(** [bars series] renders one horizontal bar per (label, value), scaled to
    the maximum value.  [width] is the maximum bar width in characters
    (default 50). *)

val grouped :
  ?width:int -> ?title:string -> group_header:(string -> string) ->
  (string * (string * float) list) list -> string
(** [grouped groups] renders {!bars}-style output with a header line per
    group, all groups sharing one scale. *)
