type t = Prng.t -> int

let constant v = fun _ -> v

let uniform_int lo hi =
  if hi < lo then invalid_arg "Dist.uniform_int: empty range";
  fun g -> Prng.int_in g lo hi

let geometric ~p ~min =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Dist.geometric: p out of (0,1]";
  fun g ->
    let rec trials k = if Prng.bernoulli g p then k else trials (k + 1) in
    min + trials 0

let zipf_cdf n s =
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for rank = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (rank + 1)) s);
    cdf.(rank) <- !acc
  done;
  let total = !acc in
  Array.map (fun x -> x /. total) cdf

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let cdf = zipf_cdf n s in
  fun g ->
    let u = Prng.unit_float g in
    (* First index whose cdf is > u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then search lo mid else search (mid + 1) hi
    in
    search 0 (n - 1)

let zipf_mass ~n ~s ~rank =
  let cdf = zipf_cdf n s in
  if rank = 0 then cdf.(0) else cdf.(rank) -. cdf.(rank - 1)

let weighted choices =
  let tagged = Array.map (fun (v, w) -> (v, w)) choices in
  fun g -> Prng.choose_weighted g tagged

let scaled d k = fun g -> int_of_float (Float.round (float_of_int (d g) *. k))

let clamped d ~min ~max =
 fun g ->
  let v = d g in
  if v < min then min else if v > max then max else v

let sample d g = d g

let mean_estimate d g n =
  let rec go i acc = if i = n then acc else go (i + 1) (acc +. float_of_int (d g)) in
  go 0 0.0 /. float_of_int n
