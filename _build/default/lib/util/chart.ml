let default_fmt v = Printf.sprintf "%.3f" v

let render_bars buf ~width ~value_fmt ~label_width ~scale series =
  List.iter
    (fun (label, v) ->
      let bar_len =
        if scale <= 0.0 then 0
        else int_of_float (Float.round (v /. scale *. float_of_int width))
      in
      let bar_len = if v > 0.0 && bar_len = 0 then 1 else bar_len in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s %s\n" label_width label
           (String.make (max 0 bar_len) '#')
           (value_fmt v)))
    series

let bars ?(width = 50) ?title ?(value_fmt = default_fmt) series =
  let buf = Buffer.create 512 in
  (match title with None -> () | Some t -> Buffer.add_string buf (t ^ "\n"));
  let scale = List.fold_left (fun acc (_, v) -> max acc v) 0.0 series in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  render_bars buf ~width ~value_fmt ~label_width ~scale series;
  Buffer.contents buf

let grouped ?(width = 50) ?title ~group_header groups =
  let buf = Buffer.create 1024 in
  (match title with None -> () | Some t -> Buffer.add_string buf (t ^ "\n"));
  let scale =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left (fun acc (_, v) -> max acc v) acc series)
      0.0 groups
  in
  let label_width =
    List.fold_left
      (fun acc (_, series) ->
        List.fold_left (fun acc (l, _) -> max acc (String.length l)) acc series)
      0 groups
  in
  List.iter
    (fun (name, series) ->
      Buffer.add_string buf (group_header name ^ "\n");
      render_bars buf ~width ~value_fmt:default_fmt ~label_width ~scale series)
    groups;
  Buffer.contents buf
