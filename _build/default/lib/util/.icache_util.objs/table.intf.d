lib/util/table.mli:
