lib/util/prng.mli:
