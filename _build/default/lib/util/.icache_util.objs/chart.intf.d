lib/util/chart.mli:
