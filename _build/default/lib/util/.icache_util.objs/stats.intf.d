lib/util/stats.mli:
