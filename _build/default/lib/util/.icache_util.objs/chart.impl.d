lib/util/chart.ml: Buffer Float List Printf String
