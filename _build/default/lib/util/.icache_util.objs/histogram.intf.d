lib/util/histogram.mli:
