lib/util/histogram.ml: Array List Printf
