let sum a = Array.fold_left ( +. ) 0.0 a

let sum_int a = Array.fold_left ( + ) 0 a

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. float_of_int n

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let log_sum =
      Array.fold_left
        (fun acc x ->
          if not (x > 0.0) then
            invalid_arg "Stats.geometric_mean: values must be positive";
          acc +. log x)
        0.0 a
    in
    exp (log_sum /. float_of_int n)
  end

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (var /. float_of_int n)
  end

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted_copy a in
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
  b.(idx)

let minimum a =
  if Array.length a = 0 then invalid_arg "Stats.minimum: empty array";
  Array.fold_left min a.(0) a

let maximum a =
  if Array.length a = 0 then invalid_arg "Stats.maximum: empty array";
  Array.fold_left max a.(0) a

let normalize a =
  let total = sum a in
  if total = 0.0 then Array.map (fun _ -> 0.0) a
  else Array.map (fun x -> x /. total) a

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let pct num den = 100.0 *. ratio num den
