(** Discrete and continuous sampling distributions used by the synthetic
    kernel and workload generators. *)

type t
(** A distribution over non-negative integers (sampled with a {!Prng.t}). *)

val constant : int -> t
(** Always returns the given value. *)

val uniform_int : int -> int -> t
(** [uniform_int lo hi] is uniform over [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val geometric : p:float -> min:int -> t
(** [geometric ~p ~min] counts Bernoulli trials until first success and adds
    [min]; mean is [min + (1-p)/p].  @raise Invalid_argument unless
    [0 < p <= 1]. *)

val zipf : n:int -> s:float -> t
(** [zipf ~n ~s] samples ranks in [\[0, n)] with probability proportional to
    [1 / (rank+1)^s].  Sampling is O(log n) by binary search over the
    precomputed CDF.  @raise Invalid_argument if [n <= 0]. *)

val weighted : (int * float) array -> t
(** Explicit finite distribution: values with non-negative weights. *)

val scaled : t -> float -> t
(** [scaled d k] samples [d] and multiplies by [k] (rounded to nearest). *)

val clamped : t -> min:int -> max:int -> t
(** Clamp samples into [\[min, max\]]. *)

val sample : t -> Prng.t -> int
(** Draw one sample. *)

val mean_estimate : t -> Prng.t -> int -> float
(** [mean_estimate d g n] is the empirical mean of [n] samples (testing
    aid). *)

val zipf_mass : n:int -> s:float -> rank:int -> float
(** Exact probability mass the {!zipf} distribution assigns to [rank]. *)
