(** Small numerical helpers for summarizing measurement arrays. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; 0. on the empty array.
    @raise Invalid_argument if any value is not positive. *)

val stddev : float array -> float
(** Population standard deviation; 0. on arrays shorter than 2. *)

val median : float array -> float
(** Median (average of middle two for even length); 0. on the empty array.
    Does not modify its argument. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]], nearest-rank on a sorted copy.
    @raise Invalid_argument if [a] is empty or [p] out of range. *)

val minimum : float array -> float
val maximum : float array -> float
(** @raise Invalid_argument on the empty array. *)

val sum : float array -> float
val sum_int : int array -> int

val normalize : float array -> float array
(** Scale so the entries sum to 1.  Returns all-zero if the sum is 0. *)

val ratio : int -> int -> float
(** [ratio num den] as a float; 0. when [den = 0]. *)

val pct : int -> int -> float
(** [pct num den] = 100 * {!ratio}. *)
