type code_map = { addr : int array array; bytes : int array array }

let feed map systems ~image ~block =
  let addr = map.addr.(image).(block) in
  let bytes = map.bytes.(image).(block) in
  let os = image = 0 in
  List.iter (fun s -> System.access s ~os ~image ~block ~addr ~bytes) systems

let run ~trace ~map ~systems = Trace.iter_exec trace (feed map systems)

let run_range ~trace ~map ~systems ~warmup =
  let i = ref 0 in
  Trace.iter_exec trace (fun ~image ~block ->
      feed map systems ~image ~block;
      incr i;
      if !i = warmup then
        (* Keep cache contents, drop the counters gathered so far. *)
        List.iter System.reset_counters systems)
