type t = {
  mutable refs_os : int;
  mutable refs_app : int;
  mutable os_cold : int;
  mutable os_self : int;
  mutable os_cross : int;
  mutable app_cold : int;
  mutable app_self : int;
  mutable app_cross : int;
}

let create () =
  {
    refs_os = 0;
    refs_app = 0;
    os_cold = 0;
    os_self = 0;
    os_cross = 0;
    app_cold = 0;
    app_self = 0;
    app_cross = 0;
  }

let reset t =
  t.refs_os <- 0;
  t.refs_app <- 0;
  t.os_cold <- 0;
  t.os_self <- 0;
  t.os_cross <- 0;
  t.app_cold <- 0;
  t.app_self <- 0;
  t.app_cross <- 0

let add dst src =
  dst.refs_os <- dst.refs_os + src.refs_os;
  dst.refs_app <- dst.refs_app + src.refs_app;
  dst.os_cold <- dst.os_cold + src.os_cold;
  dst.os_self <- dst.os_self + src.os_self;
  dst.os_cross <- dst.os_cross + src.os_cross;
  dst.app_cold <- dst.app_cold + src.app_cold;
  dst.app_self <- dst.app_self + src.app_self;
  dst.app_cross <- dst.app_cross + src.app_cross

let refs t = t.refs_os + t.refs_app

let os_misses t = t.os_cold + t.os_self + t.os_cross

let app_misses t = t.app_cold + t.app_self + t.app_cross

let misses t = os_misses t + app_misses t

let miss_rate t = Stats.ratio (misses t) (refs t)

let os_miss_rate t = Stats.ratio (os_misses t) t.refs_os

let copy t = { t with refs_os = t.refs_os }
