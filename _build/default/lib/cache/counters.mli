(** Hit/miss accounting with the paper's miss taxonomy: misses of each
    domain (OS or application) split into first-time (cold) misses,
    self-interference and cross-interference (evicted by the other
    domain), as in Figures 1 and 12. *)

type t = {
  mutable refs_os : int;  (** OS instruction-word fetches. *)
  mutable refs_app : int;
  mutable os_cold : int;
  mutable os_self : int;
  mutable os_cross : int;
  mutable app_cold : int;
  mutable app_self : int;
  mutable app_cross : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add dst src] accumulates. *)

val refs : t -> int
val os_misses : t -> int
val app_misses : t -> int
val misses : t -> int
val miss_rate : t -> float
(** Total misses over total word fetches. *)

val os_miss_rate : t -> float
val copy : t -> t
