(** LRU stack-distance (reuse-distance) analysis over a line-granular
    reference stream.

    One pass yields the miss count of {e every} fully-associative LRU
    capacity at once: a reference misses in a cache of [C] lines iff at
    least [C] distinct lines were touched since the previous reference to
    its line.  Since code placement cannot change a fully-associative
    curve, the gap between this curve and a set-associative simulation of
    the same trace is exactly the conflict-miss mass that the paper's
    layouts attack.

    Distances are binned with power-of-two edges, so {!misses_at} is
    exact at power-of-two capacities (others round down).  Maintained with a
    Fenwick tree: O(log n) per reference. *)

type t

val create : ?line:int -> unit -> t
(** [line] is the line size in bytes (default 32, power of two). *)

val access : t -> addr:int -> bytes:int -> unit
(** Record the lines spanned by one block fetch. *)

val refs : t -> int
(** Line references recorded. *)

val cold : t -> int
(** First-touch references (miss at every capacity). *)

val misses_at : t -> lines:int -> int
(** Misses of a fully-associative LRU cache with [lines] lines.
    @raise Invalid_argument if [lines < 1]. *)

val curve : t -> max_lines:int -> (int * int) list
(** [(capacity in lines, misses)] at every power of two up to
    [max_lines]. *)

val from_trace :
  trace:Trace.t -> map:Replay.code_map -> ?line:int -> ?os_only:bool -> unit -> t
(** Feed a captured block trace through the analysis under a given code
    placement ([os_only] restricts to OS fetches). *)
