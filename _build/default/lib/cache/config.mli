(** Instruction-cache geometry. *)

type policy =
  | Lru  (** Least-recently-used (the paper's assumption). *)
  | Fifo  (** Replace in insertion order; hits do not refresh. *)
  | Random of int
      (** Replace a uniformly random way; the int seeds the generator so
          simulations stay deterministic. *)

type t = {
  size : int;  (** Total bytes; power of two. *)
  assoc : int;  (** Ways; power of two, [1] = direct-mapped. *)
  line : int;  (** Line size in bytes; power of two. *)
  policy : policy;  (** Replacement policy (irrelevant when [assoc = 1]). *)
}

val make : size_kb:int -> ?assoc:int -> ?line:int -> ?policy:policy -> unit -> t
(** Defaults: direct-mapped, 32-byte lines, LRU (the paper's baseline).
    @raise Invalid_argument on non-power-of-two or inconsistent
    geometry. *)

val v : size:int -> assoc:int -> line:int -> t
(** Raw constructor with the same validation; LRU replacement. *)

val with_policy : t -> policy -> t

val policy_to_string : policy -> string

val sets : t -> int

val line_of_addr : t -> int -> int
(** Line-granularity address ([addr / line]). *)

val set_of_line : t -> int -> int

val to_string : t -> string
(** E.g. ["8KB/1way/32B"]. *)
