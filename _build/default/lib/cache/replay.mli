(** Replaying a captured block-level trace through one or more cache
    systems under a given code placement. *)

type code_map = {
  addr : int array array;  (** Per image: block id -> byte address. *)
  bytes : int array array;  (** Per image: block id -> block size. *)
}

val run : trace:Trace.t -> map:code_map -> systems:System.t list -> unit
(** Feed every execution event to every system.  Systems accumulate
    counters; call {!System.reset} first to reuse one. *)

val run_range :
  trace:Trace.t -> map:code_map -> systems:System.t list ->
  warmup:int -> unit
(** Like {!run} but resets all counters after the first [warmup] events so
    reported numbers exclude the initial cold start (the paper's traces
    are mid-execution snapshots with negligible first-time misses). *)
