(** Cache organizations evaluated in Section 5.5: the standard unified
    cache, the split OS/application cache ("Sep"), and a small reserved
    cache for the hottest OS code next to a main cache ("Resv"). *)

type t

val unified : Config.t -> t

val split : os:Config.t -> app:Config.t -> t
(** OS fetches go to one half, application fetches to the other. *)

val reserved : hot:Config.t -> rest:Config.t -> hot_limit:int -> t
(** OS fetches at addresses below [hot_limit] go to the small [hot]
    cache; everything else to [rest].  The layout must place the most
    important OS code in [\[0, hot_limit)]. *)

val victim : main:Config.t -> entries:int -> t
(** A direct-mapped [main] cache backed by an [entries]-line
    fully-associative LRU victim buffer (Jouppi 1990) - the classic
    hardware remedy for the conflict misses the paper removes in
    software.  Lines displaced from the main cache park in the buffer;
    hitting one there swaps it back.  Per-block attribution is not
    supported for this organization.
    @raise Invalid_argument unless [main] is direct-mapped and
    [entries >= 1]. *)

val access : t -> os:bool -> image:int -> block:int -> addr:int -> bytes:int -> unit

val counters : t -> Counters.t
(** Aggregated snapshot (a fresh copy) across sub-caches. *)

val reset_counters : t -> unit
(** Zero all counters while keeping cache contents (warm-up support). *)

val enable_block_attribution : t -> images:int -> blocks:int array -> unit

val block_misses : t -> image:int -> int array
(** Aggregated per-block misses across sub-caches. *)

val block_misses_self : t -> image:int -> int array
val block_misses_cross : t -> image:int -> int array

val reset : t -> unit

val describe : t -> string
