type policy = Lru | Fifo | Random of int

type t = { size : int; assoc : int; line : int; policy : policy }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let v ~size ~assoc ~line =
  if not (is_pow2 size && is_pow2 assoc && is_pow2 line) then
    invalid_arg "Config: size, assoc and line must be powers of two";
  if line * assoc > size then invalid_arg "Config: size < line * assoc";
  { size; assoc; line; policy = Lru }

let with_policy t policy = { t with policy }

let make ~size_kb ?(assoc = 1) ?(line = 32) ?(policy = Lru) () =
  with_policy (v ~size:(size_kb * 1024) ~assoc ~line) policy

let policy_to_string = function
  | Lru -> "LRU"
  | Fifo -> "FIFO"
  | Random _ -> "random"

let sets t = t.size / (t.line * t.assoc)

let line_of_addr t addr = addr / t.line

let set_of_line t line = line land (sets t - 1)

let to_string t =
  let base = Printf.sprintf "%dKB/%dway/%dB" (t.size / 1024) t.assoc t.line in
  match t.policy with Lru -> base | p -> base ^ "/" ^ policy_to_string p
