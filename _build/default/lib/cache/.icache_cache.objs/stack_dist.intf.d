lib/cache/stack_dist.mli: Replay Trace
