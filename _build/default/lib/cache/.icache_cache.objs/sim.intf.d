lib/cache/sim.mli: Config Counters
