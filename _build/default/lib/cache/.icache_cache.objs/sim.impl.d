lib/cache/sim.ml: Array Config Counters Hashtbl Prng
