lib/cache/system.ml: Array Config Counters Hashtbl List Printf Sim
