lib/cache/config.mli:
