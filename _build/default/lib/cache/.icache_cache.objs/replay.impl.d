lib/cache/replay.ml: Array List System Trace
