lib/cache/stack_dist.ml: Array Hashtbl Histogram List Program Replay Trace
