lib/cache/config.ml: Printf
