lib/cache/counters.mli:
