lib/cache/system.mli: Config Counters
