lib/cache/counters.ml: Stats
