lib/cache/replay.mli: System Trace
