(* A direct-mapped main cache backed by a small fully-associative victim
   buffer (Jouppi 1990): the classic hardware remedy for exactly the
   conflict misses the paper removes in software.  A line displaced from
   the main cache parks in the buffer; hitting it there swaps it back. *)
type victim_state = {
  vmain_config : Config.t;
  vmain : int array;  (** Per set: resident line, -1 = invalid. *)
  vbuf : int array;  (** Fully associative, slot 0 = MRU, -1 = invalid. *)
  vsets : int;
  vline_shift : int;
  vcounters : Counters.t;
  vevicted : (int, bool) Hashtbl.t;  (** line -> last evictor was OS. *)
}

type kind =
  | Unified of Sim.t
  | Split of { os_side : Sim.t; app_side : Sim.t }
  | Reserved of { hot : Sim.t; rest : Sim.t; hot_limit : int }
  | Victim of victim_state

type t = { kind : kind }

let unified config = { kind = Unified (Sim.create config) }

let split ~os ~app = { kind = Split { os_side = Sim.create os; app_side = Sim.create app } }

let reserved ~hot ~rest ~hot_limit =
  { kind = Reserved { hot = Sim.create hot; rest = Sim.create rest; hot_limit } }

let victim ~main ~entries =
  if main.Config.assoc <> 1 then
    invalid_arg "System.victim: the main cache must be direct-mapped";
  if entries < 1 then invalid_arg "System.victim: need at least one entry";
  let sets = Config.sets main in
  let rec shift v i = if v <= 1 then i else shift (v lsr 1) (i + 1) in
  {
    kind =
      Victim
        {
          vmain_config = main;
          vmain = Array.make sets (-1);
          vbuf = Array.make entries (-1);
          vsets = sets;
          vline_shift = shift main.Config.line 0;
          vcounters = Counters.create ();
          vevicted = Hashtbl.create 4096;
        };
  }

let sims t =
  match t.kind with
  | Unified s -> [ s ]
  | Split { os_side; app_side } -> [ os_side; app_side ]
  | Reserved { hot; rest; _ } -> [ hot; rest ]
  | Victim _ -> []

(* Park a displaced line as the buffer's MRU; the LRU entry leaves the
   hierarchy, remembered in [vevicted] for miss classification. *)
let victim_park v ~os line =
  if line >= 0 then begin
    let n = Array.length v.vbuf in
    let lru = v.vbuf.(n - 1) in
    if lru >= 0 then Hashtbl.replace v.vevicted lru os;
    Array.blit v.vbuf 0 v.vbuf 1 (n - 1);
    v.vbuf.(0) <- line
  end

let victim_access_line v ~os line =
  let set = line land (v.vsets - 1) in
  if v.vmain.(set) = line then ()
  else begin
    let n = Array.length v.vbuf in
    let rec find i = if i = n then -1 else if v.vbuf.(i) = line then i else find (i + 1) in
    match find 0 with
    | i when i >= 0 ->
        (* Victim hit: swap with the main cache's resident line. *)
        let displaced = v.vmain.(set) in
        v.vmain.(set) <- line;
        Array.blit v.vbuf 0 v.vbuf 1 i;
        v.vbuf.(0) <- displaced
        (* displaced >= 0 always here: the set conflicted before. *)
    | _ ->
        let c = v.vcounters in
        (match Hashtbl.find_opt v.vevicted line with
        | None ->
            if os then c.Counters.os_cold <- c.Counters.os_cold + 1
            else c.Counters.app_cold <- c.Counters.app_cold + 1
        | Some evictor_os ->
            if os then
              if evictor_os then c.Counters.os_self <- c.Counters.os_self + 1
              else c.Counters.os_cross <- c.Counters.os_cross + 1
            else if evictor_os then c.Counters.app_cross <- c.Counters.app_cross + 1
            else c.Counters.app_self <- c.Counters.app_self + 1);
        victim_park v ~os v.vmain.(set);
        v.vmain.(set) <- line
  end

let victim_access v ~os ~addr ~bytes =
  let words = if bytes <= 4 then 1 else bytes lsr 2 in
  let c = v.vcounters in
  if os then c.Counters.refs_os <- c.Counters.refs_os + words
  else c.Counters.refs_app <- c.Counters.refs_app + words;
  let first = addr lsr v.vline_shift in
  let last = (addr + bytes - 1) lsr v.vline_shift in
  for line = first to last do
    victim_access_line v ~os line
  done

let access t ~os ~image ~block ~addr ~bytes =
  match t.kind with
  | Unified s -> Sim.access s ~os ~image ~block ~addr ~bytes
  | Split { os_side; app_side } ->
      Sim.access (if os then os_side else app_side) ~os ~image ~block ~addr ~bytes
  | Reserved { hot; rest; hot_limit } ->
      let target = if os && addr < hot_limit then hot else rest in
      Sim.access target ~os ~image ~block ~addr ~bytes
  | Victim v -> victim_access v ~os ~addr ~bytes

let counters t =
  match t.kind with
  | Victim v -> Counters.copy v.vcounters
  | Unified _ | Split _ | Reserved _ ->
      let acc = Counters.create () in
      List.iter (fun s -> Counters.add acc (Sim.counters s)) (sims t);
      acc

let reset_counters t =
  match t.kind with
  | Victim v -> Counters.reset v.vcounters
  | Unified _ | Split _ | Reserved _ -> List.iter Sim.reset_counters (sims t)

let enable_block_attribution t ~images ~blocks =
  match t.kind with
  | Victim _ ->
      invalid_arg "System.enable_block_attribution: unsupported for victim caches"
  | Unified _ | Split _ | Reserved _ ->
      List.iter (fun s -> Sim.enable_block_attribution s ~images ~blocks) (sims t)

let merged_misses t ~image get =
  match sims t with
  | [] -> [||]
  | first :: rest ->
      let acc = Array.copy (get first ~image) in
      List.iter
        (fun s -> Array.iteri (fun i m -> acc.(i) <- acc.(i) + m) (get s ~image))
        rest;
      acc

let block_misses t ~image = merged_misses t ~image Sim.block_misses

let block_misses_self t ~image = merged_misses t ~image Sim.block_misses_self

let block_misses_cross t ~image = merged_misses t ~image Sim.block_misses_cross

let reset t =
  match t.kind with
  | Victim v ->
      Array.fill v.vmain 0 (Array.length v.vmain) (-1);
      Array.fill v.vbuf 0 (Array.length v.vbuf) (-1);
      Hashtbl.reset v.vevicted;
      Counters.reset v.vcounters
  | Unified _ | Split _ | Reserved _ -> List.iter Sim.reset (sims t)

let describe t =
  match t.kind with
  | Unified s -> Config.to_string (Sim.config s)
  | Split { os_side; app_side } ->
      Printf.sprintf "split[os:%s|app:%s]"
        (Config.to_string (Sim.config os_side))
        (Config.to_string (Sim.config app_side))
  | Reserved { hot; rest; hot_limit } ->
      Printf.sprintf "reserved[hot:%s<%dB|rest:%s]"
        (Config.to_string (Sim.config hot))
        hot_limit
        (Config.to_string (Sim.config rest))
  | Victim v ->
      Printf.sprintf "%s+%d-line victim"
        (Config.to_string v.vmain_config)
        (Array.length v.vbuf)
