(* LRU stack-distance (reuse-distance) analysis.

   One pass over a line-granular reference stream yields, for every
   fully-associative LRU capacity at once, the number of misses: a
   reference misses in a cache of C lines iff its stack distance (number
   of distinct lines touched since the previous reference to the same
   line) is at least C.  The classic tool for separating capacity misses
   from the conflict misses that the paper's layouts remove: a layout
   cannot change the stack-distance profile (it is address-free), so any
   gap between the fully-associative curve and a set-associative
   simulation is conflict misses.

   Distances are maintained with a Fenwick (binary indexed) tree over the
   reference timeline: O(log n) per access. *)

type t = {
  line_shift : int;
  last_ref : (int, int) Hashtbl.t;  (** line -> timestamp of last use *)
  mutable time : int;
  mutable tree : int array;  (** Fenwick tree over timestamps. *)
  histogram : Histogram.t;  (** Power-of-two buckets of stack distances. *)
  mutable cold : int;
  mutable refs : int;
}

let create ?(line = 32) () =
  let rec shift v i = if v <= 1 then i else shift (v lsr 1) (i + 1) in
  {
    line_shift = shift line 0;
    last_ref = Hashtbl.create 4096;
    time = 0;
    tree = Array.make 4096 0;
    histogram = Histogram.explicit (Array.init 24 (fun i -> 1 lsl i));
    cold = 0;
    refs = 0;
  }

let grow t needed =
  if needed >= Array.length t.tree then begin
    let n = ref (Array.length t.tree) in
    while needed >= !n do
      n := !n * 2
    done;
    let tree = Array.make !n 0 in
    (* Rebuild from the live timestamps. *)
    let add i =
      let rec go i = if i < !n then begin tree.(i) <- tree.(i) + 1; go (i lor (i + 1)) end in
      go i
    in
    Hashtbl.iter (fun _ ts -> add ts) t.last_ref;
    t.tree <- tree
  end

let tree_add t i delta =
  let n = Array.length t.tree in
  let rec go i = if i < n then begin t.tree.(i) <- t.tree.(i) + delta; go (i lor (i + 1)) end in
  go i

let tree_sum t i =
  (* Sum of [0..i]. *)
  let rec go i acc =
    if i < 0 then acc else go ((i land (i + 1)) - 1) (acc + t.tree.(i))
  in
  go i 0

let access t ~addr ~bytes =
  let first = addr lsr t.line_shift in
  let last = (addr + max 1 bytes - 1) lsr t.line_shift in
  for line = first to last do
    t.refs <- t.refs + 1;
    grow t t.time;
    (match Hashtbl.find_opt t.last_ref line with
    | None -> t.cold <- t.cold + 1
    | Some ts ->
        (* Distinct lines referenced strictly after ts = live timestamps
           in (ts, now). *)
        let total_live = Hashtbl.length t.last_ref in
        let upto = tree_sum t ts in
        let distance = total_live - upto in
        Histogram.add t.histogram distance;
        tree_add t ts (-1));
    Hashtbl.replace t.last_ref line t.time;
    tree_add t t.time 1;
    t.time <- t.time + 1
  done

let refs t = t.refs

let cold t = t.cold

let misses_at t ~lines =
  (* Misses in a fully-associative LRU cache of [lines] lines: cold misses
     plus references whose stack distance >= lines; [lines] is rounded
     down to a power of two. *)
  if lines < 1 then invalid_arg "Stack_dist.misses_at: lines < 1";
  let rec log2 v i = if v <= 1 then i else log2 (v lsr 1) (i + 1) in
  let k = log2 lines 0 in
  (* Distances are binned with explicit power-of-two edges: bucket 0 holds
     d = 0, bucket j >= 1 holds 2^(j-1) <= d < 2^j.  A distance d hits in
     a cache of 2^k lines iff d < 2^k: buckets 0..k exactly. *)
  let h = t.histogram in
  let hits = ref 0 in
  for i = 0 to min k (Histogram.bucket_count h - 1) do
    hits := !hits + Histogram.count h i
  done;
  t.cold + (Histogram.total h - !hits)

let curve t ~max_lines =
  let rec go lines acc =
    if lines > max_lines then List.rev acc
    else go (lines * 2) ((lines, misses_at t ~lines) :: acc)
  in
  go 1 []

let from_trace ~trace ~map ?(line = 32) ?(os_only = false) () =
  let t = create ~line () in
  Trace.iter_exec trace (fun ~image ~block ->
      if (not os_only) || Program.is_os image then
        access t ~addr:map.Replay.addr.(image).(block)
          ~bytes:map.Replay.bytes.(image).(block));
  t
