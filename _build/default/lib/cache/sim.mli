(** Set-associative LRU instruction-cache simulator with the paper's miss
    classification and optional per-block miss attribution (for the
    miss-address distributions of Figures 1 and 14). *)

type t

val create : Config.t -> t

val config : t -> Config.t
val counters : t -> Counters.t

val enable_block_attribution : t -> images:int -> blocks:int array -> unit
(** Allocate per-(image, block) miss counters; [blocks.(i)] is image [i]'s
    block count. *)

val block_misses : t -> image:int -> int array
(** Per-block miss counts (zeros if attribution was not enabled).
    @raise Invalid_argument if attribution was not enabled. *)

val block_misses_self : t -> image:int -> int array
(** Per-block self-interference miss counts. *)

val block_misses_cross : t -> image:int -> int array
(** Per-block cross-interference miss counts. *)

val access : t -> os:bool -> image:int -> block:int -> addr:int -> bytes:int -> unit
(** One basic-block execution: fetches the [bytes/4] instruction words
    starting at [addr], touching each spanned cache line once (further
    words on an already-touched line hit by construction). *)

val probe : t -> addr:int -> bool
(** Whether the line holding [addr] is currently resident (testing aid;
    does not update LRU or counters). *)

val reset_counters : t -> unit
(** Zero counters and attributions, keeping cache contents (warm-up). *)

val reset : t -> unit
(** Empty the cache and zero all counters and attributions. *)
