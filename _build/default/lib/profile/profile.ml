type t = {
  block : float array;
  arc : float array;
  mutable total_blocks : float;
  mutable invocations : float;
}

let empty g =
  {
    block = Array.make (Graph.block_count g) 0.0;
    arc = Array.make (Graph.arc_count g) 0.0;
    total_blocks = 0.0;
    invocations = 0.0;
  }

let sinks ~program =
  let profiles =
    Array.init (Program.image_count program) (fun i -> empty (Program.graph program i))
  in
  let sink =
    {
      Engine.on_exec =
        (fun ~image ~block ->
          let p = profiles.(image) in
          p.block.(block) <- p.block.(block) +. 1.0;
          p.total_blocks <- p.total_blocks +. 1.0);
      on_arc =
        (fun ~image ~arc ->
          let p = profiles.(image) in
          p.arc.(arc) <- p.arc.(arc) +. 1.0);
      on_invocation_start =
        (fun _ ->
          let p = profiles.(Program.os_image) in
          p.invocations <- p.invocations +. 1.0);
      on_invocation_end = ignore;
    }
  in
  (profiles, sink)

let collect ~program ~workload ~words ~seed =
  let profiles, sink = sinks ~program in
  let stats = Engine.run ~program ~workload ~words ~seed ~sink in
  (profiles, stats)

let scale_to t target =
  let k = if t.total_blocks > 0.0 then target /. t.total_blocks else 0.0 in
  {
    block = Array.map (fun x -> x *. k) t.block;
    arc = Array.map (fun x -> x *. k) t.arc;
    total_blocks = t.total_blocks *. k;
    invocations = t.invocations *. k;
  }

let accumulate dst src =
  if Array.length dst.block <> Array.length src.block then
    invalid_arg "Profile.accumulate: shape mismatch";
  Array.iteri (fun i x -> dst.block.(i) <- dst.block.(i) +. x) src.block;
  Array.iteri (fun i x -> dst.arc.(i) <- dst.arc.(i) +. x) src.arc;
  dst.total_blocks <- dst.total_blocks +. src.total_blocks;
  dst.invocations <- dst.invocations +. src.invocations

let average = function
  | [] -> invalid_arg "Profile.average: empty list"
  | first :: _ as profiles ->
      let acc =
        {
          block = Array.make (Array.length first.block) 0.0;
          arc = Array.make (Array.length first.arc) 0.0;
          total_blocks = 0.0;
          invocations = 0.0;
        }
      in
      let n = float_of_int (List.length profiles) in
      List.iter (fun p -> accumulate acc (scale_to p 1_000_000.0)) profiles;
      scale_to acc (acc.total_blocks /. n)

let executed t b = t.block.(b) > 0.0

let block_fraction t b =
  if t.total_blocks > 0.0 then t.block.(b) /. t.total_blocks else 0.0

let arc_probability t g a =
  let src = (Graph.arc g a).Arc.src in
  if t.block.(src) > 0.0 then t.arc.(a) /. t.block.(src) else 0.0

let routine_invocations t g =
  Array.init (Graph.routine_count g) (fun r ->
      let entry = Graph.entry_of g r in
      let back =
        Array.fold_left
          (fun acc a -> acc +. t.arc.(a))
          0.0 (Graph.in_arcs g entry)
      in
      Float.max 0.0 (t.block.(entry) -. back))

let executed_routine_count t g =
  let n = ref 0 in
  Graph.iter_routines g (fun r ->
      if Array.exists (fun b -> executed t b) r.Routine.blocks then incr n);
  !n

let executed_block_count t =
  Array.fold_left (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 t.block

let executed_bytes t g =
  Graph.fold_blocks g ~init:0 ~f:(fun acc b ->
      if executed t b.Block.id then acc + b.Block.size else acc)

let dynamic_words t g =
  Graph.fold_blocks g ~init:0.0 ~f:(fun acc b ->
      acc +. (t.block.(b.Block.id) *. float_of_int (Block.instruction_words b)))
