(** Text serialization of execution profiles: the paper's deployment
    workflow is profile-once, lay-out-later, so profiles must survive the
    tracing session.  Sparse format (zero entries omitted), fractional
    counts round-trip exactly enough for averaged profiles.  The [shape]
    header ties a profile to its graph's block/arc counts. *)

val format_version : string

val to_string : graph:Graph.t -> Profile.t -> string

val of_string : graph:Graph.t -> string -> Profile.t
(** @raise Invalid_argument on malformed input, negative counts, indices
    out of range, or a shape mismatch with [graph]. *)

val save : string -> graph:Graph.t -> Profile.t -> unit

val load : string -> graph:Graph.t -> Profile.t

val write_channel : out_channel -> graph:Graph.t -> Profile.t -> unit
