(* Text serialization of execution profiles, enabling the paper's actual
   deployment workflow: profile a machine once (possibly merging several
   sessions), archive the profile, and rebuild layouts later without
   re-tracing.

     # icache-opt profile v1
     shape 42392 47978
     invocations 1234
     b 17 4096        (block 17 executed 4096 times)
     a 33 512         (arc 33 taken 512 times)

   Zero entries are omitted; counts are printed with enough precision to
   round-trip averaged (fractional) profiles. *)

let format_version = "icache-opt profile v1"

let write_channel oc ~graph:g (p : Profile.t) =
  Printf.fprintf oc "# %s\n" format_version;
  Printf.fprintf oc "shape %d %d\n" (Graph.block_count g) (Graph.arc_count g);
  Printf.fprintf oc "invocations %.17g\n" p.Profile.invocations;
  Array.iteri
    (fun b w -> if w > 0.0 then Printf.fprintf oc "b %d %.17g\n" b w)
    p.Profile.block;
  Array.iteri
    (fun a w -> if w > 0.0 then Printf.fprintf oc "a %d %.17g\n" a w)
    p.Profile.arc

let to_string ~graph (p : Profile.t) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" format_version);
  Buffer.add_string buf
    (Printf.sprintf "shape %d %d\n" (Graph.block_count graph) (Graph.arc_count graph));
  Buffer.add_string buf (Printf.sprintf "invocations %.17g\n" p.Profile.invocations);
  Array.iteri
    (fun b w ->
      if w > 0.0 then Buffer.add_string buf (Printf.sprintf "b %d %.17g\n" b w))
    p.Profile.block;
  Array.iteri
    (fun a w ->
      if w > 0.0 then Buffer.add_string buf (Printf.sprintf "a %d %.17g\n" a w))
    p.Profile.arc;
  Buffer.contents buf

let of_string ~graph:g s =
  let p = Profile.empty g in
  let blocks = Graph.block_count g and arcs = Graph.arc_count g in
  let fail lineno msg =
    invalid_arg (Printf.sprintf "Profile_file: line %d: %s" lineno msg)
  in
  let num lineno s =
    match float_of_string_opt s with
    | Some v when v >= 0.0 -> v
    | Some _ -> fail lineno "negative count"
    | None -> fail lineno (Printf.sprintf "bad number %S" s)
  in
  let idx lineno bound s =
    match int_of_string_opt s with
    | Some v when v >= 0 && v < bound -> v
    | Some _ -> fail lineno "index out of range"
    | None -> fail lineno (Printf.sprintf "bad index %S" s)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line with
        | [ "shape"; b; a ] ->
            if idx lineno (blocks + 1) b <> blocks || idx lineno (arcs + 1) a <> arcs
            then fail lineno "profile shape does not match the graph"
        | [ "invocations"; n ] -> p.Profile.invocations <- num lineno n
        | [ "b"; b; w ] ->
            let b = idx lineno blocks b in
            let w = num lineno w in
            p.Profile.block.(b) <- p.Profile.block.(b) +. w;
            p.Profile.total_blocks <- p.Profile.total_blocks +. w
        | [ "a"; a; w ] ->
            let a = idx lineno arcs a in
            p.Profile.arc.(a) <- p.Profile.arc.(a) +. num lineno w
        | _ -> fail lineno "malformed line")
    (String.split_on_char '\n' s);
  p

let save path ~graph p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc ~graph p)

let load path ~graph =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let s = really_input_string ic (in_channel_length ic) in
      of_string ~graph s)
