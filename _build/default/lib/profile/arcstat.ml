type bin = { lo : float; hi : float; count : int }

let default_edges =
  [| 0.01; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 |]

let distribution p g ?(edges = default_edges) () =
  let n = Array.length edges in
  let counts = Array.make (n + 1) 0 in
  let bucket_of prob =
    (* First bin i with prob <= edges.(i); else the last bin. *)
    let rec search i = if i >= n then n else if prob <= edges.(i) then i else search (i + 1) in
    search 0
  in
  let record prob = counts.(bucket_of prob) <- counts.(bucket_of prob) + 1 in
  Graph.iter_blocks g (fun b ->
      if Profile.executed p b.Block.id then begin
        Array.iter
          (fun a -> record (Profile.arc_probability p g a))
          (Graph.out_arcs g b.Block.id);
        if Block.ends_in_call b then record 1.0
      end);
  Array.init (n + 1) (fun i ->
      {
        lo = (if i = 0 then 0.0 else edges.(i - 1));
        hi = (if i = n then 1.0 else edges.(i));
        count = counts.(i);
      })

let total bins = Array.fold_left (fun acc b -> acc + b.count) 0 bins

let fraction_at_least bins threshold =
  let t = total bins in
  if t = 0 then 0.0
  else begin
    let n =
      Array.fold_left (fun acc b -> if b.lo >= threshold then acc + b.count else acc) 0 bins
    in
    float_of_int n /. float_of_int t
  end

let fraction_at_most bins threshold =
  let t = total bins in
  if t = 0 then 0.0
  else begin
    let n =
      Array.fold_left (fun acc b -> if b.hi <= threshold then acc + b.count else acc) 0 bins
    in
    float_of_int n /. float_of_int t
  end
