(** Execution profiles: per-block, per-arc and per-routine weights gathered
    from the trace engine, the input to every placement algorithm of the
    paper (node and arc weights of the flow graph G, Section 4). *)

type t = {
  block : float array;  (** Executions per {!Block.id}. *)
  arc : float array;  (** Traversals per {!Arc.id}. *)
  mutable total_blocks : float;  (** Sum of [block]. *)
  mutable invocations : float;
      (** OS invocations observed while profiling (0 for application
          images and hand-built profiles).  Scaled along with the counts
          by {!scale_to} and {!average}. *)
}

val empty : Graph.t -> t

val collect :
  program:Program.t -> workload:Workload.t -> words:int -> seed:int ->
  t array * Engine.stats
(** Run the engine and gather one profile per image (index 0 = OS). *)

val sinks : program:Program.t -> t array * Engine.sink
(** The per-image profiles and an engine sink that fills them (for callers
    that drive the engine themselves or combine sinks). *)

val scale_to : t -> float -> t
(** Copy, rescaled so [total_blocks] equals the given value. *)

val average : t list -> t
(** Equal-weight average: each profile is first normalized to the same
    total (the paper builds layouts from the average of all workload
    profiles).  @raise Invalid_argument on the empty list or mismatched
    shapes. *)

val accumulate : t -> t -> unit
(** [accumulate dst src] adds [src]'s raw counts into [dst]. *)

(** {1 Derived quantities} *)

val executed : t -> Block.id -> bool

val block_fraction : t -> Block.id -> float
(** Block weight over total block weight (compared against ExecThresh). *)

val arc_probability : t -> Graph.t -> Arc.id -> float
(** Arc weight over its source block's weight (compared against
    BranchThresh); 0 when the source never executed. *)

val routine_invocations : t -> Graph.t -> float array
(** Invocations of each routine: executions of its entry block minus
    loop-back-edge re-entries. *)

val executed_routine_count : t -> Graph.t -> int
val executed_block_count : t -> int
val executed_bytes : t -> Graph.t -> int

val dynamic_words : t -> Graph.t -> float
(** Total instruction words implied by the block counts. *)
