(** Temporal-locality measurement (Figure 7): OS instruction words fetched
    between two consecutive calls to the same routine within one OS
    invocation; statistics reset across invocations. *)

type t = {
  histogram : Histogram.t;
      (** Word-distance buckets (explicit decade-ish edges). *)
  last_invocation : int;
      (** Calls not followed by another call to the same routine in the
          same OS invocation (the paper's "Last Inv" column). *)
  calls : int;  (** Total calls observed to the tracked routines. *)
}

val default_edges : int array

val measure :
  trace:Trace.t -> graph:Graph.t -> routines:Routine.id list ->
  ?edges:int array -> unit -> t
(** Track the given routines (the paper uses the 10 most frequently
    invoked) through a captured trace. *)
