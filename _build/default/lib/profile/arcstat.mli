(** Arc-probability statistics (Figure 3): how deterministic the
    transitions between executed basic blocks are.

    Following the paper, the arcs considered are those leaving executed
    blocks: conditional and unconditional branches and fall-throughs (the
    graph's arcs) plus procedure-call transfers (a block that ends in a
    call always transfers to its callee, probability 1). *)

type bin = { lo : float; hi : float; count : int }

val default_edges : float array
(** [0.01; 0.05; 0.1; ...; 0.9; 0.95; 0.99]: bins matching Figure 3's
    x-axis granularity. *)

val distribution : Profile.t -> Graph.t -> ?edges:float array -> unit -> bin array
(** Counts of executed-block outgoing arcs per probability bin. *)

val fraction_at_least : bin array -> float -> float
(** Fraction of arcs whose bin lies entirely at or above the threshold
    (e.g. [fraction_at_least bins 0.99] reproduces the paper's
    "73.6% of the arcs have probability >= 0.99"). *)

val fraction_at_most : bin array -> float -> float
