(** Invocation-skew measurements: Figures 6 (routines) and 8 (basic blocks
    with loop iterations discounted). *)

val routine_series : Profile.t -> Graph.t -> float array
(** Per-routine invocation counts, sorted descending and normalized to sum
    to 100 (Figure 6).  Only routines invoked at least once appear. *)

val top_routines : Profile.t -> Graph.t -> n:int -> (Routine.id * float) list
(** The [n] most frequently invoked routines with their invocation counts,
    descending. *)

val deloop_factors : Graph.t -> Profile.t -> Loops.t list -> float array
(** Per block: the iteration count of its innermost executed loop (1.0 for
    blocks outside loops).  Dividing a block's count by its factor models
    the paper's "assume loops only perform one iteration per
    invocation". *)

val block_series_deloop : Profile.t -> Graph.t -> Loops.t list -> float array
(** Figure 8: executed blocks' loop-adjusted counts, sorted descending,
    normalized to sum to 100. *)

val count_above : float array -> threshold:float -> int
(** How many entries of a normalized series exceed [threshold] (e.g. the
    paper's "22 blocks are executed more than 3.0% of the total"). *)
