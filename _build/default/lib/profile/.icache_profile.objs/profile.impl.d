lib/profile/profile.ml: Arc Array Block Engine Float Graph List Program Routine
