lib/profile/profile_file.mli: Graph Profile
