lib/profile/loopstat.ml: Array Block Float Graph Hashtbl List Loops Profile Routine Stats
