lib/profile/arcstat.ml: Array Block Graph Profile
