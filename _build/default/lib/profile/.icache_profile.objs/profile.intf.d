lib/profile/profile.mli: Arc Block Engine Graph Program Workload
