lib/profile/arcstat.mli: Graph Profile
