lib/profile/loopstat.mli: Graph Hashtbl Loops Profile Routine
