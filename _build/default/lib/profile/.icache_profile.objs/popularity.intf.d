lib/profile/popularity.mli: Graph Loops Profile Routine
