lib/profile/popularity.ml: Array Float Graph List Loops Loopstat Profile
