lib/profile/reuse.mli: Graph Histogram Routine Trace
