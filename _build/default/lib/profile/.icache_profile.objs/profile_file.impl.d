lib/profile/profile_file.ml: Array Buffer Fun Graph List Printf Profile String
