lib/profile/reuse.ml: Array Block Graph Hashtbl Histogram List Program Trace
