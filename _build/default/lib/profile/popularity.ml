let sorted_normalized values =
  let arr = Array.of_list (List.filter (fun v -> v > 0.0) values) in
  Array.sort (fun a b -> compare b a) arr;
  let total = Array.fold_left ( +. ) 0.0 arr in
  if total > 0.0 then Array.map (fun v -> v *. 100.0 /. total) arr else arr

let routine_series p g =
  let inv = Profile.routine_invocations p g in
  sorted_normalized (Array.to_list inv)

let top_routines p g ~n =
  let inv = Profile.routine_invocations p g in
  let pairs = Array.mapi (fun r c -> (r, c)) inv in
  Array.sort (fun (_, a) (_, b) -> compare b a) pairs;
  Array.to_list (Array.sub pairs 0 (min n (Array.length pairs)))

let deloop_factors g p loops =
  let factors = Array.make (Graph.block_count g) 1.0 in
  (* Process loops from largest body to smallest so that the innermost
     (smallest) loop's factor wins for shared blocks. *)
  let infos = Loopstat.analyze g p loops in
  let sorted =
    List.sort
      (fun (a : Loopstat.info) b ->
        compare (Array.length b.loop.Loops.body) (Array.length a.loop.Loops.body))
      infos
  in
  List.iter
    (fun (i : Loopstat.info) ->
      let f = Float.max 1.0 i.iterations_per_invocation in
      Array.iter (fun b -> factors.(b) <- f) i.loop.Loops.body)
    sorted;
  factors

let block_series_deloop p g loops =
  let factors = deloop_factors g p loops in
  let adjusted =
    List.init (Graph.block_count g) (fun b -> p.Profile.block.(b) /. factors.(b))
  in
  sorted_normalized adjusted

let count_above series ~threshold =
  Array.fold_left (fun acc v -> if v > threshold then acc + 1 else acc) 0 series
