type t = { histogram : Histogram.t; last_invocation : int; calls : int }

let default_edges = [| 10; 32; 100; 316; 1000; 3162; 10_000; 31_623; 100_000 |]

let measure ~trace ~graph ~routines ?(edges = default_edges) () =
  let histogram = Histogram.explicit edges in
  (* Map tracked routines' entry blocks to a dense slot. *)
  let entry_slot = Hashtbl.create 16 in
  List.iteri
    (fun slot r -> Hashtbl.replace entry_slot (Graph.entry_of graph r) slot)
    routines;
  let n = List.length routines in
  let last_pos = Array.make n (-1) in
  let words = ref 0 in
  let last_inv = ref 0 in
  let calls = ref 0 in
  let flush_invocation () =
    Array.iteri
      (fun slot pos ->
        if pos >= 0 then begin
          incr last_inv;
          last_pos.(slot) <- -1
        end)
      last_pos;
    words := 0
  in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Invocation_start _ -> ()
      | Trace.Invocation_end -> flush_invocation ()
      | Trace.Exec { image; block } ->
          if Program.is_os image then begin
            (match Hashtbl.find_opt entry_slot block with
            | Some slot ->
                incr calls;
                if last_pos.(slot) >= 0 then
                  Histogram.add histogram (!words - last_pos.(slot));
                last_pos.(slot) <- !words
            | None -> ());
            words := !words + Block.instruction_words (Graph.block graph block)
          end);
  flush_invocation ();
  { histogram; last_invocation = !last_inv; calls = !calls }
