(** Profile-weighted loop statistics: the measurements behind Table 3 and
    Figures 4 and 5. *)

type info = {
  loop : Loops.t;
  invocations : float;  (** Entries into the loop from outside. *)
  iterations_per_invocation : float;  (** Header executions / entries. *)
  executed_body_bytes : int;  (** Static size of the executed body part. *)
  executed_bytes_with_callees : int;
      (** Figure 5: executed body plus the executed part of every routine
          the body calls, transitively. *)
  dynamic_words : float;  (** Instruction words executed inside the body. *)
}

val analyze : Graph.t -> Profile.t -> Loops.t list -> info list
(** Statistics for every loop whose header executed. *)

val executed_loops : info list -> info list
(** Loops actually entered at least once. *)

val split_by_calls : info list -> info list * info list
(** (without procedure calls, with procedure calls). *)

val dynamic_share_without_calls : Graph.t -> Profile.t -> Loops.t list -> float
(** Table 3, column 2: fraction of dynamic OS instruction words inside
    loops that make no procedure calls (each block counted once even when
    nested). *)

val static_executed_share_without_calls : Graph.t -> Profile.t -> Loops.t list -> float
(** Table 3, column 3. *)

val static_share_without_calls : ?profile:Profile.t -> Graph.t -> Loops.t list -> float
(** Table 3, column 4: call-free loop code as a fraction of the whole
    kernel.  With [profile], only loop blocks the profile executed are
    counted (the paper's columns 3 and 4 are mutually consistent only
    under that reading). *)

val reachable_routines : Graph.t -> Profile.t -> Routine.id -> (Routine.id, unit) Hashtbl.t
(** Routines transitively callable from the given routine through executed
    call blocks (including itself). *)

val executed_routine_bytes_with_descendants : Graph.t -> Profile.t -> int array
(** Per routine: executed bytes of the routine plus all routines it
    (transitively) calls from executed blocks, shared descendants counted
    once. *)
