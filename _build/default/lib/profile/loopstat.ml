type info = {
  loop : Loops.t;
  invocations : float;
  iterations_per_invocation : float;
  executed_body_bytes : int;
  executed_bytes_with_callees : int;
  dynamic_words : float;
}

let executed_routine_bytes g p =
  Array.init (Graph.routine_count g) (fun r ->
      Array.fold_left
        (fun acc b ->
          if Profile.executed p b then acc + (Graph.block g b).Block.size else acc)
        0
        (Graph.routine g r).Routine.blocks)

(* Routines transitively callable from [r] through executed call blocks. *)
let reachable_routines g p r =
  let seen = Hashtbl.create 16 in
  let rec visit r =
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.add seen r ();
      Array.iter
        (fun b ->
          if Profile.executed p b then
            match (Graph.block g b).Block.call with
            | Some callee -> visit callee
            | None -> ())
        (Graph.routine g r).Routine.blocks
    end
  in
  visit r;
  seen

let executed_routine_bytes_with_descendants g p =
  let own = executed_routine_bytes g p in
  Array.init (Graph.routine_count g) (fun r ->
      let seen = reachable_routines g p r in
      Hashtbl.fold (fun r' () acc -> acc + own.(r')) seen 0)

let analyze g p loops =
  let own = executed_routine_bytes g p in
  List.filter_map
    (fun (l : Loops.t) ->
      if not (Profile.executed p l.Loops.header) then None
      else begin
        let header_count = p.Profile.block.(l.Loops.header) in
        let back =
          Array.fold_left (fun acc a -> acc +. p.Profile.arc.(a)) 0.0 l.Loops.back_edges
        in
        let invocations = Float.max 1.0 (header_count -. back) in
        let executed_body_bytes = ref 0 in
        let dynamic_words = ref 0.0 in
        let callee_bytes =
          let seen = Hashtbl.create 8 in
          Array.iter
            (fun b ->
              let blk = Graph.block g b in
              if Profile.executed p b then begin
                executed_body_bytes := !executed_body_bytes + blk.Block.size;
                dynamic_words :=
                  !dynamic_words
                  +. (p.Profile.block.(b) *. float_of_int (Block.instruction_words blk));
                match blk.Block.call with
                | Some callee ->
                    let sub = reachable_routines g p callee in
                    Hashtbl.iter (fun r () -> Hashtbl.replace seen r ()) sub
                | None -> ()
              end)
            l.Loops.body;
          Hashtbl.fold (fun r () acc -> acc + own.(r)) seen 0
        in
        Some
          {
            loop = l;
            invocations;
            iterations_per_invocation = header_count /. invocations;
            executed_body_bytes = !executed_body_bytes;
            executed_bytes_with_callees = !executed_body_bytes + callee_bytes;
            dynamic_words = !dynamic_words;
          }
      end)
    loops

let executed_loops infos = List.filter (fun i -> i.invocations > 0.0) infos

let split_by_calls infos =
  List.partition (fun i -> not (Loops.has_calls i.loop)) infos

let plain_loop_marks g loops =
  Loops.blocks_in_loops g (List.filter (fun l -> not (Loops.has_calls l)) loops)

let dynamic_share_without_calls g p loops =
  let marks = plain_loop_marks g loops in
  let in_loops = ref 0.0 and total = ref 0.0 in
  Graph.iter_blocks g (fun b ->
      let w = p.Profile.block.(b.Block.id) *. float_of_int (Block.instruction_words b) in
      total := !total +. w;
      if marks.(b.Block.id) then in_loops := !in_loops +. w);
  if !total > 0.0 then !in_loops /. !total else 0.0

let static_executed_share_without_calls g p loops =
  let marks = plain_loop_marks g loops in
  let in_loops = ref 0 and total = ref 0 in
  Graph.iter_blocks g (fun b ->
      if Profile.executed p b.Block.id then begin
        total := !total + b.Block.size;
        if marks.(b.Block.id) then in_loops := !in_loops + b.Block.size
      end);
  Stats.ratio !in_loops !total

let static_share_without_calls ?profile g loops =
  let marks = plain_loop_marks g loops in
  let counted b =
    marks.(b.Block.id)
    &&
    match profile with
    | None -> true
    | Some p -> Profile.executed p b.Block.id
  in
  let in_loops = ref 0 in
  Graph.iter_blocks g (fun b ->
      if counted b then in_loops := !in_loops + b.Block.size);
  Stats.ratio !in_loops (Graph.code_bytes g)
