(** SelfConfFree selection (Section 4.2): the most frequently executed
    basic blocks, with loop iterations discounted (loops are optimized
    separately, so a block inside a loop is counted as if the loop ran one
    iteration per invocation). *)

val select :
  graph:Graph.t -> profile:Profile.t -> loops:Loops.t list -> cutoff:float ->
  Block.id list
(** Blocks whose loop-adjusted executions per OS invocation reach
    [cutoff] (falling back to the fraction of total block weight when the
    profile has no invocation count)
    (e.g. 0.02 for the paper's 2.0% layout), most popular first. *)

val bytes : Graph.t -> Block.id list -> int
