(** Sequence construction (Sections 3.2.1 and 4.1), the paper's central
    idea.

    Starting from a seed basic block, a greedy walk follows the most
    frequently executed path: into the callee when the block ends in a
    call, otherwise along the highest-probability outgoing arc.  The walk
    emits every first visit to a block whose execution weight passes
    ExecThresh; it abandons a direction when every continuation is visited,
    too cold, or reached through an arc below BranchThresh, then resumes
    from the best remaining side branch (the paper "starts again from the
    seed looking for the next acceptable basic block").  Each
    (seed, thresholds) pass yields one sequence; repeated passes with
    decreasing thresholds capture successively colder code, so sequences
    interleave caller and callee blocks across routine boundaries. *)

type t = {
  pass : Schedule.pass;
  blocks : Block.id array;  (** In placement order. *)
  bytes : int;
}

val build :
  graph:Graph.t -> profile:Profile.t -> seed_entry:(Service.t -> Block.id) ->
  schedule:Schedule.pass list -> ?follow_calls:bool -> unit -> t list
(** Run the whole schedule; a block appears in exactly one sequence (the
    first pass that reaches it).  Empty sequences are dropped.  With
    [~follow_calls:false] (ablation) the walk never descends into callees,
    so sequences stop at routine boundaries as in Chang-Hwu. *)

val covered : Graph.t -> t list -> bool array
(** Block id -> whether some sequence contains it. *)

val total_bytes : t list -> int
