(** The comparison algorithm ("C-H"): Hwu and Chang's profile-guided code
    placement (ISCA 1989), as the paper describes it in Sections 1 and 4:

    - within each routine, basic blocks that tend to execute in sequence
      are grouped by greedy trace selection and placed contiguously
      (executed traces first, unexecuted code last);
    - routines are ordered so that frequent callees follow immediately
      after their callers (greedy chain merging on the weighted call
      graph).

    Unlike the paper's own algorithm, C-H never interleaves a callee's
    blocks between blocks of the caller. *)

val intra_routine_order : Graph.t -> Profile.t -> Routine.t -> Block.id list
(** Trace-selected block order for one routine (exposed for testing). *)

val routine_order : Graph.t -> Profile.t -> Routine.id list
(** Caller/callee chained routine order, most popular chains first. *)

val layout : Graph.t -> Profile.t -> Address_map.t
