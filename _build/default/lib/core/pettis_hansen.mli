(** Pettis-Hansen profile-guided code positioning (PLDI 1990).

    Not part of the paper's evaluation (it compares against Hwu-Chang),
    but the natural second baseline: P-H is the immediate successor of
    C-H and the direct ancestor of today's BOLT/Propeller layouts.

    - {e Procedure ordering}: chains over the undirected, call-count
      weighted call graph, merged heaviest edge first with the
      "closest is best" rule (the four end-to-end orientations of the two
      chains are tried, keeping the one that places the edge's endpoints
      nearest each other).
    - {e Basic-block ordering}: bottom-up chaining along the heaviest
      executed arcs (a chain only grows tail-to-head, preserving
      fall-through), entry chain first, remaining chains by weight,
      never-executed blocks last. *)

val chain_order : n:int -> edges:(int * int * float) list -> int list
(** The generic closest-is-best chain merge over [n] elements (exposed
    for testing).  Returns a permutation of [0..n-1]. *)

val routine_order : Graph.t -> Profile.t -> Routine.id list
(** Permutation of all routines. *)

val intra_routine_order : Graph.t -> Profile.t -> Routine.t -> Block.id list
(** Permutation of the routine's blocks, entry chain first. *)

val layout : Graph.t -> Profile.t -> Address_map.t
(** Whole-image placement; validated. *)
