let layout g ~order =
  if Array.length order <> Graph.routine_count g then
    invalid_arg "Base.layout: order must list every routine";
  let map = Address_map.create g in
  let cursor = ref 0 in
  Array.iter
    (fun r ->
      Array.iter
        (fun b ->
          Address_map.place map b ~addr:!cursor ~region:Address_map.Cold;
          cursor := !cursor + (Graph.block g b).Block.size)
        (Graph.routine g r).Routine.blocks)
    order;
  Address_map.validate map;
  map
