let select ~graph:g ~profile:p ~loops ~cutoff =
  let factors = Popularity.deloop_factors g p loops in
  let adjusted =
    Array.init (Graph.block_count g) (fun b -> p.Profile.block.(b) /. factors.(b))
  in
  (* The paper's cut-offs (3/2/1% in Figure 16) are fractions of the
     number of OS invocations: a block qualifies when its loop-adjusted
     execution count reaches [cutoff] executions per invocation.  Profiles
     carrying no invocation count (applications, hand-built test profiles)
     fall back to fractions of the total block-execution weight. *)
  let base =
    if p.Profile.invocations > 0.0 then p.Profile.invocations
    else Array.fold_left ( +. ) 0.0 adjusted
  in
  if base <= 0.0 then []
  else begin
    let hot =
      List.filter
        (fun b -> adjusted.(b) /. base >= cutoff)
        (List.init (Graph.block_count g) Fun.id)
    in
    List.sort (fun a b -> compare adjusted.(b) adjusted.(a)) hot
  end

let bytes g blocks =
  List.fold_left (fun acc b -> acc + (Graph.block g b).Block.size) 0 blocks
