(** The advanced loop-callee placement of Section 4.4 ("Call" in Figure
    18).  The paper implements it, measures it, and rejects it: pulling a
    loop's callees out of the sequences removes loop/callee conflicts but
    destroys more spatial locality than it saves.

    Algorithm: loops with procedure calls and at least
    [min_loop_iterations] iterations per invocation are each assigned a
    logical cache past the sequence/loop area, with the loop body at offset
    SelfConfFree from the chunk start.  A {e conflict matrix} (loops x the
    50 most popular routines they call, directly or transitively) drives
    callee placement: each routine is placed as close as possible after its
    caller loop; a routine called by several loops is placed at an offset
    free in all of their logical caches, the other caches keeping a gap at
    that offset. *)

type stats = {
  candidate_loops : int;
  matrix_routines : int;
  extracted_blocks : int;
}

val layout :
  model:Model.t -> profile:Profile.t -> ?params:Opt.params ->
  ?max_matrix_routines:int -> unit -> Opt.result * stats
(** OptS assembly with the loop-callee extension applied on top.  The
    returned map is validated (every block placed exactly once). *)
