(* Text serialization of a code placement, in the spirit of a linker map:
   one line per block, sorted by address, with the owning routine and the
   Figure 13 region.  The format round-trips so a layout computed once can
   be re-simulated later or inspected with ordinary text tools.

     # icache-opt layout v1
     # addr  size  block  region  routine
     0x000000 24 1042 SelfConfFree intr_entry
     ... *)

let format_version = "icache-opt layout v1"

let region_of_string = function
  | "MainSeq" -> Address_map.Main_seq
  | "SelfConfFree" -> Address_map.Self_conf_free
  | "Loops" -> Address_map.Loop_area
  | "OtherSeq" -> Address_map.Other_seq
  | "Cold" -> Address_map.Cold
  | other -> invalid_arg (Printf.sprintf "Layout_file: unknown region %S" other)

let write_channel oc ~graph:g map =
  Printf.fprintf oc "# %s\n" format_version;
  Printf.fprintf oc "# addr size block region routine\n";
  Array.iter
    (fun b ->
      let blk = Graph.block g b in
      Printf.fprintf oc "0x%06x %d %d %s %s\n" (Address_map.addr map b)
        blk.Block.size b
        (Address_map.region_to_string (Address_map.region map b))
        (Graph.routine g blk.Block.routine).Routine.name)
    (Address_map.blocks_by_addr map)

let save path ~graph map =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc ~graph map)

let to_string ~graph map =
  let buf = Buffer.create 4096 in
  let header = Printf.sprintf "# %s\n# addr size block region routine\n" format_version in
  Buffer.add_string buf header;
  Array.iter
    (fun b ->
      let blk = Graph.block graph b in
      Buffer.add_string buf
        (Printf.sprintf "0x%06x %d %d %s %s\n" (Address_map.addr map b)
           blk.Block.size b
           (Address_map.region_to_string (Address_map.region map b))
           (Graph.routine graph blk.Block.routine).Routine.name))
    (Address_map.blocks_by_addr map);
  Buffer.contents buf

let parse_line lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | addr :: size :: block :: region :: _routine ->
      let num s =
        match int_of_string_opt s with
        | Some v -> v
        | None ->
            invalid_arg (Printf.sprintf "Layout_file: line %d: bad number %S" lineno s)
      in
      (num addr, num size, num block, region_of_string region)
  | _ -> invalid_arg (Printf.sprintf "Layout_file: line %d: malformed" lineno)

let of_string ~graph:g s =
  let map = Address_map.create g in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let addr, size, block, region = parse_line (i + 1) line in
        if block < 0 || block >= Graph.block_count g then
          invalid_arg (Printf.sprintf "Layout_file: line %d: block %d out of range" (i + 1) block);
        if (Graph.block g block).Block.size <> size then
          invalid_arg
            (Printf.sprintf "Layout_file: line %d: block %d has size %d, file says %d"
               (i + 1) block (Graph.block g block).Block.size size);
        Address_map.place map block ~addr ~region
      end)
    lines;
  Address_map.validate map;
  map

let load path ~graph =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string ~graph s)
