(** The Base layout: routines concatenated in link order, blocks in their
    original text order (hot code interleaved with the special-case code it
    branches around). *)

val layout : Graph.t -> order:Routine.id array -> Address_map.t
(** @raise Invalid_argument if [order] is not a permutation of the
    routines. *)
