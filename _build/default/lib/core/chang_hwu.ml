(* Greedy trace selection within one routine: repeatedly start a trace at
   the heaviest unvisited executed block and extend it along the heaviest
   outgoing arc whose target is unvisited; unexecuted blocks go last in
   text order. *)
let intra_routine_order g p (r : Routine.t) =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let emit b =
    Hashtbl.add visited b ();
    order := b :: !order
  in
  let heaviest_unvisited_successor b =
    let best = ref None in
    Array.iter
      (fun a ->
        let arc = Graph.arc g a in
        let w = p.Profile.arc.(a) in
        if w > 0.0 && not (Hashtbl.mem visited arc.Arc.dst) then
          match !best with
          | Some (_, w') when w' >= w -> ()
          | Some _ | None -> best := Some (arc.Arc.dst, w))
      (Graph.out_arcs g b);
    Option.map fst !best
  in
  let rec extend b =
    match heaviest_unvisited_successor b with
    | Some next ->
        emit next;
        extend next
    | None -> ()
  in
  (* Seed traces from executed blocks, heaviest first; the entry block
     always leads so the routine remains enterable at its start. *)
  let executed =
    Array.to_list r.Routine.blocks
    |> List.filter (fun b -> Profile.executed p b)
    |> List.sort (fun a b -> compare p.Profile.block.(b) p.Profile.block.(a))
  in
  let seeds =
    if Profile.executed p r.Routine.entry then
      r.Routine.entry :: List.filter (fun b -> b <> r.Routine.entry) executed
    else executed
  in
  List.iter
    (fun b ->
      if not (Hashtbl.mem visited b) then begin
        emit b;
        extend b
      end)
    seeds;
  Array.iter (fun b -> if not (Hashtbl.mem visited b) then emit b) r.Routine.blocks;
  List.rev !order

(* Call-graph edge weights: calls from executed blocks of [caller] to
   [callee]. *)
let call_edges g p =
  let tbl = Hashtbl.create 256 in
  Graph.iter_blocks g (fun b ->
      match b.Block.call with
      | Some callee when p.Profile.block.(b.Block.id) > 0.0 ->
          let key = (b.Block.routine, callee) in
          let w = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
          Hashtbl.replace tbl key (w +. p.Profile.block.(b.Block.id))
      | Some _ | None -> ());
  let edges = Hashtbl.fold (fun (c, r) w acc -> (c, r, w) :: acc) tbl [] in
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) edges

(* Chain merging: each routine starts as a singleton chain; for each call
   edge in decreasing weight, append the callee's chain right after the
   caller's chain if the caller ends a chain and the callee begins one. *)
let routine_order g p =
  let n = Graph.routine_count g in
  let chain_of = Array.init n (fun r -> r) (* routine -> chain representative *) in
  let chain_blocks = Array.init n (fun r -> [ r ]) (* representative -> members *) in
  let chain_weight =
    let inv = Profile.routine_invocations p g in
    Array.init n (fun r -> inv.(r))
  in
  let head = Array.init n (fun r -> r) in
  let tail = Array.init n (fun r -> r) in
  let rec rep r = if chain_of.(r) = r then r else rep chain_of.(r) in
  List.iter
    (fun (caller, callee, _w) ->
      let rc = rep caller and re = rep callee in
      if rc <> re && tail.(rc) = caller && head.(re) = callee then begin
        chain_of.(re) <- rc;
        chain_blocks.(rc) <- chain_blocks.(rc) @ chain_blocks.(re);
        tail.(rc) <- tail.(re);
        chain_weight.(rc) <- chain_weight.(rc) +. chain_weight.(re)
      end)
    (call_edges g p);
  let chains = ref [] in
  for r = 0 to n - 1 do
    if rep r = r then chains := (chain_weight.(r), chain_blocks.(r)) :: !chains
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !chains in
  List.concat_map snd sorted

let layout g p =
  let map = Address_map.create g in
  let cursor = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun b ->
          let region =
            if Profile.executed p b then Address_map.Other_seq else Address_map.Cold
          in
          Address_map.place map b ~addr:!cursor ~region;
          cursor := !cursor + (Graph.block g b).Block.size)
        (intra_routine_order g p (Graph.routine g r)))
    (routine_order g p);
  Address_map.validate map;
  map
