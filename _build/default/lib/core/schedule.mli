(** The (ExecThresh, BranchThresh) schedule of Table 4.

    Sequences are generated in passes of decreasing thresholds; the most
    popular seed (interrupt) is processed from the highest threshold level,
    the others join at lower levels, and every seed finishes with a (0, 0)
    sweep that captures all remaining reachable code. *)

type pass = {
  service : Service.t;
  exec_thresh : float;
      (** Minimum block weight as a fraction of total block weight. *)
  branch_thresh : float;  (** Minimum arc probability to follow. *)
}

val paper : pass list
(** The passes of Table 4, in table order (rows top to bottom, seeds left
    to right within a row). *)

val main_seq_exec_thresh : float
(** Blocks placed by passes with at least this ExecThresh are "MainSeq" in
    the Figure 13 classification (0.01% = 1e-4). *)

val flat : pass list
(** Ablation schedule: one exhaustive (0, 0) pass per seed, no threshold
    descent (so sequence popularity ordering is lost). *)

val restrict : Service.t list -> pass list -> pass list
(** Keep only the passes of the given seeds (ablation: fewer seeds). *)

val uniform : levels:(float * float) list -> pass list
(** A simple schedule applying the same threshold levels to every seed in
    turn (used for application layouts, which have a single seed). *)
