type pass = { service : Service.t; exec_thresh : float; branch_thresh : float }

let main_seq_exec_thresh = 1e-4

(* Table 4: rows are ExecThresh levels 1.4%, 0.5%, 0.1%, 0.01%, 1e-5 %, 0;
   the BranchThresh for each seed joining at each level.  "=" cells (seed
   not yet processed) are simply absent. *)
let paper =
  let p service exec_thresh branch_thresh = { service; exec_thresh; branch_thresh } in
  [
    p Service.Interrupt 1.4e-2 0.4;
    p Service.Interrupt 5e-3 0.1;
    p Service.Page_fault 5e-3 0.4;
    p Service.Interrupt 1e-3 0.01;
    p Service.Page_fault 1e-3 0.1;
    p Service.Syscall 1e-3 0.4;
    p Service.Interrupt 1e-4 0.01;
    p Service.Page_fault 1e-4 0.01;
    p Service.Syscall 1e-4 0.1;
    p Service.Other 1e-4 0.4;
    p Service.Interrupt 1e-7 0.001;
    p Service.Page_fault 1e-7 0.01;
    p Service.Syscall 1e-7 0.01;
    p Service.Other 1e-7 0.1;
    p Service.Interrupt 0.0 0.0;
    p Service.Page_fault 0.0 0.0;
    p Service.Syscall 0.0 0.0;
    p Service.Other 0.0 0.0;
  ]

(* Ablation: a single exhaustive pass per seed, no threshold descent. *)
let flat =
  Array.to_list
    (Array.map
       (fun service -> { service; exec_thresh = 0.0; branch_thresh = 0.0 })
       Service.all)

let restrict services passes =
  List.filter (fun p -> List.mem p.service services) passes

let uniform ~levels =
  List.map
    (fun (exec_thresh, branch_thresh) ->
      { service = Service.Interrupt; exec_thresh; branch_thresh })
    levels
