type stats = {
  sites : int;
  callees : int;
  added_bytes : int;
}

(* A call site qualifies when the callee is a small leaf (no calls of its
   own, static size within budget), is not a seed routine, and the site
   executes frequently enough to matter. *)
let inlinable ~graph:g ~profile:p ~max_callee_bytes ~min_site_rate ~seeds b =
  match (Graph.block g b).Block.call with
  | None -> None
  | Some c ->
      if List.mem c seeds then None
      else begin
        let routine = Graph.routine g c in
        let bytes =
          Array.fold_left
            (fun acc blk -> acc + (Graph.block g blk).Block.size)
            0 routine.Routine.blocks
        in
        let is_leaf =
          Array.for_all
            (fun blk -> not (Block.ends_in_call (Graph.block g blk)))
            routine.Routine.blocks
        in
        let rate =
          if p.Profile.invocations > 0.0 then
            p.Profile.block.(b) /. p.Profile.invocations
          else p.Profile.block.(b) /. Float.max 1.0 p.Profile.total_blocks
        in
        if is_leaf && bytes <= max_callee_bytes && rate >= min_site_rate then Some c
        else None
      end

let transform ~model ~profile:p ?(max_callee_bytes = 256) ?(min_site_rate = 0.05) () =
  let g = model.Model.graph in
  let seeds =
    Array.to_list (Array.map (fun (s : Model.seed_info) -> s.Model.routine) model.Model.seeds)
  in
  let site_callee = Array.make (Graph.block_count g) (-1) in
  let callees = Hashtbl.create 16 in
  let sites = ref 0 in
  Graph.iter_blocks g (fun blk ->
      match
        inlinable ~graph:g ~profile:p ~max_callee_bytes ~min_site_rate ~seeds
          blk.Block.id
      with
      | Some c ->
          site_callee.(blk.Block.id) <- c;
          Hashtbl.replace callees c ();
          incr sites
      | None -> ());

  let bld = Graph.builder () in
  (* Routine ids are preserved: declare in original order. *)
  for r = 0 to Graph.routine_count g - 1 do
    ignore (Graph.declare_routine bld (Graph.routine g r).Routine.name)
  done;

  (* Pass 1: blocks.  Original blocks keep their text order; an inlined
     site is followed immediately by its private clone of the callee's
     blocks (in the callee's text order), owned by the caller routine. *)
  let new_of_old = Array.make (Graph.block_count g) (-1) in
  let clone_of = Hashtbl.create 64 in
  (* (site, old callee block) -> clone id *)
  let added_bytes = ref 0 in
  Graph.iter_routines g (fun r ->
      Array.iter
        (fun b ->
          let blk = Graph.block g b in
          let c = site_callee.(b) in
          if c >= 0 then begin
            new_of_old.(b) <-
              Graph.add_block bld ~routine:r.Routine.id ~size:blk.Block.size ();
            Array.iter
              (fun cb ->
                let cblk = Graph.block g cb in
                added_bytes := !added_bytes + cblk.Block.size;
                Hashtbl.replace clone_of (b, cb)
                  (Graph.add_block bld ~routine:r.Routine.id ~size:cblk.Block.size ()))
              (Graph.routine g c).Routine.blocks
          end
          else
            new_of_old.(b) <-
              Graph.add_block bld ~routine:r.Routine.id ~size:blk.Block.size
                ?call:blk.Block.call ())
        r.Routine.blocks);

  (* Pass 2: arcs.  Original arcs are copied (skipping those leaving an
     inlined site: its continuation moves to the clone's exit blocks);
     each inlined site is wired site -> clone entry, clone internal arcs,
     clone exits -> the site's original successors. *)
  let new_arc_of_old = Array.make (Graph.arc_count g) (-1) in
  let probs = ref [] in
  let add_arc ~src ~dst kind prob =
    let a = Graph.add_arc bld ~src ~dst kind in
    probs := (a, prob) :: !probs;
    a
  in
  Graph.iter_arcs g (fun arc ->
      if site_callee.(arc.Arc.src) < 0 then
        new_arc_of_old.(arc.Arc.id) <-
          add_arc ~src:new_of_old.(arc.Arc.src) ~dst:new_of_old.(arc.Arc.dst)
            arc.Arc.kind
            model.Model.arc_prob.(arc.Arc.id));
  Graph.iter_blocks g (fun blk ->
      let b = blk.Block.id in
      let c = site_callee.(b) in
      if c >= 0 then begin
        let routine = Graph.routine g c in
        let clone cb = Hashtbl.find clone_of (b, cb) in
        ignore
          (add_arc ~src:new_of_old.(b) ~dst:(clone routine.Routine.entry)
             Arc.Fallthrough 1.0);
        Array.iter
          (fun cb ->
            Array.iter
              (fun a ->
                let arc = Graph.arc g a in
                ignore
                  (add_arc ~src:(clone arc.Arc.src) ~dst:(clone arc.Arc.dst)
                     arc.Arc.kind
                     model.Model.arc_prob.(a)))
              (Graph.out_arcs g cb))
          routine.Routine.blocks;
        (* Clone exits resume at the site's original successors. *)
        Array.iter
          (fun cb ->
            if Graph.is_exit g cb then
              Array.iter
                (fun a ->
                  let arc = Graph.arc g a in
                  ignore
                    (add_arc ~src:(clone cb) ~dst:new_of_old.(arc.Arc.dst)
                       arc.Arc.kind
                       model.Model.arc_prob.(a)))
                (Graph.out_arcs g b))
          routine.Routine.blocks
      end);

  let graph = Graph.freeze bld in
  let arc_prob = Array.make (Graph.arc_count graph) 0.0 in
  List.iter (fun (a, p) -> arc_prob.(a) <- p) !probs;
  let remap_seed (s : Model.seed_info) =
    { s with Model.entry = new_of_old.(s.Model.entry) }
  in
  let remap_dispatch (d : Model.dispatch) =
    {
      Model.block = new_of_old.(d.Model.block);
      arcs = Array.map (fun (a, hi) -> (new_arc_of_old.(a), hi)) d.Model.arcs;
    }
  in
  let model' =
    {
      model with
      Model.graph;
      arc_prob;
      seeds = Array.map remap_seed model.Model.seeds;
      dispatches = Array.map remap_dispatch model.Model.dispatches;
    }
  in
  (model', { sites = !sites; callees = Hashtbl.length callees; added_bytes = !added_bytes })
