type region = Main_seq | Self_conf_free | Loop_area | Other_seq | Cold

let region_to_string = function
  | Main_seq -> "MainSeq"
  | Self_conf_free -> "SelfConfFree"
  | Loop_area -> "Loops"
  | Other_seq -> "OtherSeq"
  | Cold -> "Cold"

type t = {
  graph : Graph.t;
  addr : int array;
  region : region array;
  mutable extent : int;
  mutable placed : int;
}

let create g =
  {
    graph = g;
    addr = Array.make (Graph.block_count g) (-1);
    region = Array.make (Graph.block_count g) Cold;
    extent = 0;
    placed = 0;
  }

let is_placed t b = t.addr.(b) >= 0

let place t b ~addr ~region =
  if addr < 0 then invalid_arg "Address_map.place: negative address";
  if is_placed t b then invalid_arg "Address_map.place: block already placed";
  t.addr.(b) <- addr;
  t.region.(b) <- region;
  t.placed <- t.placed + 1;
  let hi = addr + (Graph.block t.graph b).Block.size in
  if hi > t.extent then t.extent <- hi

let addr t b =
  if not (is_placed t b) then invalid_arg "Address_map.addr: block not placed";
  t.addr.(b)

let region t b = t.region.(b)

let extent t = t.extent

let placed_count t = t.placed

let graph t = t.graph

let blocks_by_addr t =
  let blocks =
    Array.of_seq
      (Seq.filter (is_placed t) (Seq.init (Graph.block_count t.graph) Fun.id))
  in
  Array.sort (fun a b -> compare t.addr.(a) t.addr.(b)) blocks;
  blocks

let validate t =
  let n = Graph.block_count t.graph in
  if t.placed <> n then
    failwith (Printf.sprintf "Address_map: %d of %d blocks placed" t.placed n);
  let order = blocks_by_addr t in
  Array.iteri
    (fun i b ->
      if i > 0 then begin
        let prev = order.(i - 1) in
        let prev_end = t.addr.(prev) + (Graph.block t.graph prev).Block.size in
        if t.addr.(b) < prev_end then
          failwith
            (Printf.sprintf "Address_map: blocks %d and %d overlap at %d" prev b t.addr.(b))
      end)
    order

let addr_array t = Array.copy t.addr

let bytes_array t =
  Array.init (Graph.block_count t.graph) (fun b -> (Graph.block t.graph b).Block.size)
