(** A code placement: the assignment of every basic block of one image to
    a byte address, with the region taxonomy used by the paper's Figure 13
    analysis. *)

type region =
  | Main_seq  (** Sequences built with ExecThresh >= 0.01%. *)
  | Self_conf_free  (** The protected hottest-blocks area. *)
  | Loop_area  (** Loop blocks extracted by OptL. *)
  | Other_seq  (** Remaining sequences. *)
  | Cold  (** Never/rarely executed filler. *)

val region_to_string : region -> string

type t

val create : Graph.t -> t

val place : t -> Block.id -> addr:int -> region:region -> unit
(** @raise Invalid_argument if the block is already placed or the address
    is negative. *)

val is_placed : t -> Block.id -> bool
val addr : t -> Block.id -> int
(** @raise Invalid_argument if not placed. *)

val region : t -> Block.id -> region
val extent : t -> int
(** One past the highest placed byte. *)

val placed_count : t -> int
val graph : t -> Graph.t

val validate : t -> unit
(** Check completeness (every block placed) and non-overlap.
    @raise Failure with a diagnostic otherwise. *)

val addr_array : t -> int array
(** Block id -> address (for cache replay). *)

val bytes_array : t -> int array
(** Block id -> size. *)

val blocks_by_addr : t -> Block.id array
(** All placed blocks sorted by address. *)
