(* Pettis-Hansen profile-guided positioning (PLDI 1990), the successor of
   Chang-Hwu and the ancestor of today's BOLT/Propeller layouts.  Included
   as a second baseline beyond the paper's C-H comparison.

   Procedure ordering: an undirected call graph weighted by call-site
   execution counts; chains are merged from the heaviest edge down, trying
   the four end-to-end orientations and keeping the one that places the
   edge's two routines closest ("closest is best").

   Basic-block ordering: bottom-up chaining on the heaviest arcs (an arc
   extends a chain only tail-to-head), the entry chain first, remaining
   chains by weight, never-executed blocks last (the "fluff"). *)

(* ------------------------------------------------------------------ *)
(* Chains with 4-orientation merge                                    *)
(* ------------------------------------------------------------------ *)

(* A chain is a list of elements; [chain_of.(x)] is the chain identifier
   (union-find style, but we keep explicit lists since merges rebuild
   positions anyway). *)

let merge_closest a b u v =
  (* Concatenate chains [a] and [b] (each optionally reversed) minimizing
     the distance between elements [u] (in a) and [v] (in b). *)
  let pos l x =
    let rec go i = function
      | [] -> invalid_arg "merge_closest: element not in chain"
      | y :: _ when y = x -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 l
  in
  let candidates =
    [ (a, b); (List.rev a, b); (a, List.rev b); (List.rev a, List.rev b) ]
  in
  let score (x, y) =
    let n = List.length x in
    (n - 1 - pos x u) + pos y v
  in
  let best =
    List.fold_left
      (fun acc c -> match acc with
        | Some (s, _) when s <= score c -> acc
        | _ -> Some (score c, c))
      None candidates
  in
  match best with
  | Some (_, (x, y)) -> x @ y
  | None -> a @ b

let chain_order ~n ~edges =
  (* [edges]: (u, v, weight) with u <> v; returns all n elements, chains
     merged heaviest-edge-first, leftover singletons in index order. *)
  let chain_id = Array.init n (fun i -> i) in
  let chains = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    Hashtbl.replace chains i [ i ]
  done;
  let find x = chain_id.(x) in
  let sorted =
    List.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1) edges
  in
  List.iter
    (fun (u, v, _) ->
      let cu = find u and cv = find v in
      if cu <> cv then begin
        let a = Hashtbl.find chains cu and b = Hashtbl.find chains cv in
        let merged = merge_closest a b u v in
        Hashtbl.remove chains cv;
        Hashtbl.replace chains cu merged;
        List.iter (fun x -> chain_id.(x) <- cu) merged
      end)
    sorted;
  (* Emit chains by total incident edge weight (heaviest first), then
     whatever remains in index order. *)
  let weight_of = Array.make n 0.0 in
  List.iter
    (fun (u, v, w) ->
      weight_of.(u) <- weight_of.(u) +. w;
      weight_of.(v) <- weight_of.(v) +. w)
    edges;
  let chain_weight c = List.fold_left (fun acc x -> acc +. weight_of.(x)) 0.0 c in
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) chains [] in
  let sorted_chains =
    List.sort
      (fun a b ->
        match compare (chain_weight b) (chain_weight a) with
        | 0 -> compare (List.hd a) (List.hd b)
        | c -> c)
      all
  in
  List.concat sorted_chains

(* ------------------------------------------------------------------ *)
(* Procedure ordering                                                 *)
(* ------------------------------------------------------------------ *)

let routine_order g p =
  let weights = Hashtbl.create 256 in
  Graph.iter_blocks g (fun blk ->
      match blk.Block.call with
      | Some callee when p.Profile.block.(blk.Block.id) > 0.0 ->
          let caller = blk.Block.routine in
          if caller <> callee then begin
            let key = (min caller callee, max caller callee) in
            let cur = Option.value ~default:0.0 (Hashtbl.find_opt weights key) in
            Hashtbl.replace weights key (cur +. p.Profile.block.(blk.Block.id))
          end
      | Some _ | None -> ());
  let edges =
    Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) weights []
  in
  chain_order ~n:(Graph.routine_count g) ~edges

(* ------------------------------------------------------------------ *)
(* Basic-block ordering (bottom-up chaining)                          *)
(* ------------------------------------------------------------------ *)

let intra_routine_order g p (r : Routine.t) =
  let blocks = r.Routine.blocks in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i b -> Hashtbl.replace index b i) blocks;
  let n = Array.length blocks in
  (* Chains over local indices; merge tail-to-head only (P-H block
     chaining preserves fall-through direction). *)
  let next = Array.make n (-1) and prev = Array.make n (-1) in
  let arcs = ref [] in
  Array.iter
    (fun b ->
      Array.iter
        (fun a ->
          let arc = Graph.arc g a in
          if p.Profile.arc.(a) > 0.0 && arc.Arc.src <> arc.Arc.dst then
            arcs :=
              ( Hashtbl.find index arc.Arc.src,
                Hashtbl.find index arc.Arc.dst,
                p.Profile.arc.(a) )
              :: !arcs)
        (Graph.out_arcs g b))
    blocks;
  let sorted = List.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1) !arcs in
  let rec chain_head i = if prev.(i) >= 0 then chain_head prev.(i) else i in
  List.iter
    (fun (s, d, _) ->
      if next.(s) < 0 && prev.(d) < 0 && chain_head s <> chain_head d then begin
        next.(s) <- d;
        prev.(d) <- s
      end)
    sorted;
  (* Chain weights for ordering. *)
  let weight = Array.make n 0.0 in
  Array.iteri (fun i b -> weight.(i) <- p.Profile.block.(b)) blocks;
  let chain_of_head h =
    let rec go acc i = if i < 0 then List.rev acc else go (i :: acc) next.(i) in
    go [] h
  in
  let heads = ref [] in
  for i = 0 to n - 1 do
    if prev.(i) < 0 then heads := i :: !heads
  done;
  let entry_idx = Hashtbl.find index r.Routine.entry in
  let entry_head = chain_head entry_idx in
  let chain_weight h =
    List.fold_left (fun acc i -> acc +. weight.(i)) 0.0 (chain_of_head h)
  in
  let executed_heads, fluff_heads =
    List.partition (fun h -> chain_weight h > 0.0) (List.rev !heads)
  in
  let rest =
    List.sort
      (fun a b -> compare (chain_weight b) (chain_weight a))
      (List.filter (fun h -> h <> entry_head) executed_heads)
  in
  let order =
    List.concat_map chain_of_head
      ((entry_head :: rest) @ List.filter (fun h -> h <> entry_head) fluff_heads)
  in
  List.map (fun i -> blocks.(i)) order

(* ------------------------------------------------------------------ *)
(* Layout                                                             *)
(* ------------------------------------------------------------------ *)

let layout g p =
  let map = Address_map.create g in
  let at = ref 0 in
  List.iter
    (fun rid ->
      let r = Graph.routine g rid in
      List.iter
        (fun b ->
          let executed = p.Profile.block.(b) > 0.0 in
          let region = if executed then Address_map.Main_seq else Address_map.Cold in
          Address_map.place map b ~addr:!at ~region;
          at := !at + (Graph.block g b).Block.size)
        (intra_routine_order g p r))
    (routine_order g p);
  Address_map.validate map;
  map
