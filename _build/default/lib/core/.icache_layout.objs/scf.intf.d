lib/core/scf.mli: Block Graph Loops Profile
