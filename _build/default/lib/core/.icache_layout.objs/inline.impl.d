lib/core/inline.ml: Arc Array Block Float Graph Hashtbl List Model Profile Routine
