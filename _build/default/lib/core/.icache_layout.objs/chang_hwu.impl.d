lib/core/chang_hwu.ml: Address_map Arc Array Block Graph Hashtbl List Option Profile Routine
