lib/core/schedule.mli: Service
