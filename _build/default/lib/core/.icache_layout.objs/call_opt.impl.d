lib/core/call_opt.ml: Address_map Array Block Graph Hashtbl List Loops Loopstat Model Opt Option Profile Program_layout Routine Schedule
