lib/core/base.mli: Address_map Graph Routine
