lib/core/inline.mli: Model Profile
