lib/core/chang_hwu.mli: Address_map Block Graph Profile Routine
