lib/core/program_layout.mli: Address_map Loops Model Opt Profile Program Replay
