lib/core/base.ml: Address_map Array Block Graph Routine
