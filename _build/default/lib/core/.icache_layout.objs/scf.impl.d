lib/core/scf.ml: Array Block Fun Graph List Popularity Profile
