lib/core/schedule.ml: Array List Service
