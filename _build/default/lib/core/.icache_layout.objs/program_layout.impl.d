lib/core/program_layout.ml: Address_map App_model Array Base Chang_hwu Loops Model Opt Program Replay
