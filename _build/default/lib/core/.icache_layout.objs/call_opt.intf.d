lib/core/call_opt.mli: Model Opt Profile
