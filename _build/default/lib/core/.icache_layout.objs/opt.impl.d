lib/core/opt.ml: Address_map App_model Array Block Fun Graph List Loops Loopstat Model Profile Scf Schedule Sequence
