lib/core/sequence.ml: Arc Array Block Fun Graph List Profile Schedule
