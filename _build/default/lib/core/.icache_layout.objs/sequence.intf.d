lib/core/sequence.mli: Block Graph Profile Schedule Service
