lib/core/pettis_hansen.ml: Address_map Arc Array Block Graph Hashtbl List Option Profile Routine
