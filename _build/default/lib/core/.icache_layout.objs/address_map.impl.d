lib/core/address_map.ml: Array Block Fun Graph Printf Seq
