lib/core/address_map.mli: Block Graph
