lib/core/layout_file.mli: Address_map Graph
