lib/core/pettis_hansen.mli: Address_map Block Graph Profile Routine
