lib/core/layout_file.ml: Address_map Array Block Buffer Fun Graph List Printf Routine String
