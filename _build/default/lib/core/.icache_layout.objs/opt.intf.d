lib/core/opt.mli: Address_map App_model Block Graph Loops Model Profile Schedule Sequence Service
