(** Text serialization of code placements (a linker-map-like format): one
    line per block, sorted by address, carrying the address, size, block
    id, Figure 13 region, and owning routine name.  Round-trips through
    {!to_string} / {!of_string} (and {!save} / {!load} for files), so a
    layout computed once can be archived, inspected with text tools, and
    re-simulated later. *)

val format_version : string

val to_string : graph:Graph.t -> Address_map.t -> string

val of_string : graph:Graph.t -> string -> Address_map.t
(** Parses and validates (every block placed exactly once, no overlap).
    @raise Invalid_argument on malformed input or a block/size mismatch
    with [graph]; @raise Failure if the resulting placement is invalid. *)

val save : string -> graph:Graph.t -> Address_map.t -> unit

val load : string -> graph:Graph.t -> Address_map.t

val write_channel : out_channel -> graph:Graph.t -> Address_map.t -> unit
