(** Function inlining, the alternative the paper considers and rejects
    (Section 4.1, citing Chen et al.): inserting the whole callee between
    the caller's blocks instead of interleaving a few of its blocks.
    "Function inlining, however, expands the active code size and may
    increase the chance of conflicts."

    [transform] rewrites the kernel model: every frequently executed call
    site whose callee is a small leaf routine receives a private clone of
    the callee's body; the call disappears and the clone's exit blocks
    resume at the site's original successors.  The original routine
    remains for the sites that were not inlined.  Routine ids are
    preserved; block and arc ids are not. *)

type stats = {
  sites : int;  (** Call sites inlined. *)
  callees : int;  (** Distinct routines that got inlined somewhere. *)
  added_bytes : int;  (** Static code growth. *)
}

val transform :
  model:Model.t -> profile:Profile.t -> ?max_callee_bytes:int ->
  ?min_site_rate:float -> unit -> Model.t * stats
(** [min_site_rate] is the minimum executions of the call block per OS
    invocation for the site to qualify (default 0.05); [max_callee_bytes]
    bounds the callee's static size (default 256).  The returned model
    walks identically to the original except that inlined callees occupy
    per-site addresses. *)
