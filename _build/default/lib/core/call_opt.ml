type stats = {
  candidate_loops : int;
  matrix_routines : int;
  extracted_blocks : int;
}

let layout ~model ~profile:p ?(params = Opt.params ()) ?(max_matrix_routines = 50) () =
  let g = model.Model.graph in
  let loops = Program_layout.os_loops model in
  let infos = Loopstat.analyze g p loops in
  let candidates =
    List.filter
      (fun (i : Loopstat.info) ->
        Loops.has_calls i.Loopstat.loop
        && i.Loopstat.iterations_per_invocation >= params.Opt.min_loop_iterations)
      infos
  in
  (* Claim blocks: loop bodies first (first claimer wins for nested or
     overlapping loops), then the matrix routines' executed blocks. *)
  let claimed = Array.make (Graph.block_count g) false in
  let loop_claims =
    List.map
      (fun (i : Loopstat.info) ->
        let blocks =
          Array.to_list i.Loopstat.loop.Loops.body
          |> List.filter (fun b ->
                 if claimed.(b) || not (Profile.executed p b) then false
                 else begin
                   claimed.(b) <- true;
                   true
                 end)
        in
        (i, blocks))
      candidates
  in
  (* Conflict matrix: which candidate loops call which routines. *)
  let loop_count = List.length loop_claims in
  let callers_of = Hashtbl.create 64 in
  List.iteri
    (fun li ((i : Loopstat.info), _) ->
      Array.iter
        (fun b ->
          if Profile.executed p b then
            match (Graph.block g b).Block.call with
            | Some callee ->
                Hashtbl.iter
                  (fun r () ->
                    let cur =
                      Option.value ~default:[] (Hashtbl.find_opt callers_of r)
                    in
                    if not (List.mem li cur) then Hashtbl.replace callers_of r (li :: cur))
                  (Loopstat.reachable_routines g p callee)
            | None -> ())
        i.Loopstat.loop.Loops.body)
    loop_claims;
  let invocations = Profile.routine_invocations p g in
  let matrix =
    Hashtbl.fold (fun r callers acc -> (r, callers) :: acc) callers_of []
    |> List.sort (fun (a, _) (b, _) -> compare invocations.(b) invocations.(a))
    |> List.filteri (fun i _ -> i < max_matrix_routines)
  in
  let routine_claims =
    List.map
      (fun (r, callers) ->
        let blocks =
          Array.to_list (Graph.routine g r).Routine.blocks
          |> List.filter (fun b ->
                 if claimed.(b) || not (Profile.executed p b) then false
                 else begin
                   claimed.(b) <- true;
                   true
                 end)
        in
        (r, callers, blocks))
      matrix
  in
  (* Base OptS assembly with all claimed blocks excluded. *)
  let seed_entry c = (Model.seed_for model c).Model.entry in
  let r =
    Opt.layout ~graph:g ~profile:p ~loops ~seed_entry ~schedule:Schedule.paper
      ~exclude:(fun b -> claimed.(b))
      params
  in
  let map = r.Opt.map in
  let cache = params.Opt.cache_size in
  (* Logical caches past everything placed so far; loop body at offset
     scf_bytes.  Placement runs in two passes: first every claim is
     recorded as a (block, chunk, offset) triple while tracking the free
     offset of each chunk, then chunks are given bases.  A chunk whose
     contents outgrow one cache span simply occupies several consecutive
     cache-sized spans; keeping every base a multiple of the cache size
     preserves the offset-equals-cache-index property the conflict-matrix
     gaps rely on. *)
  let first_chunk = (Address_map.extent map + cache - 1) / cache in
  let offsets = Array.make loop_count r.Opt.scf_bytes in
  let recorded = ref [] in
  let record_blocks blocks ~chunk ~offset =
    List.fold_left
      (fun off b ->
        recorded := (b, chunk, off) :: !recorded;
        off + (Graph.block g b).Block.size)
      offset blocks
  in
  List.iteri
    (fun li (_info, blocks) -> offsets.(li) <- record_blocks blocks ~chunk:li ~offset:offsets.(li))
    loop_claims;
  let extracted = ref 0 in
  List.iter
    (fun (_r, callers, blocks) ->
      extracted := !extracted + List.length blocks;
      match callers with
      | [] -> ()
      | first :: _ ->
          (* Free offset in every caller's logical cache. *)
          let offset = List.fold_left (fun acc li -> max acc offsets.(li)) 0 callers in
          let size =
            List.fold_left (fun acc b -> acc + (Graph.block g b).Block.size) 0 blocks
          in
          ignore (record_blocks blocks ~chunk:first ~offset);
          List.iter (fun li -> offsets.(li) <- offset + size) callers)
    routine_claims;
  let chunk_base = Array.make (max 1 loop_count) (first_chunk * cache) in
  for li = 1 to loop_count - 1 do
    let spans = max 1 ((offsets.(li - 1) + cache - 1) / cache) in
    chunk_base.(li) <- chunk_base.(li - 1) + (spans * cache)
  done;
  List.iter
    (fun (b, chunk, off) ->
      Address_map.place map b ~addr:(chunk_base.(chunk) + off)
        ~region:Address_map.Loop_area)
    !recorded;
  List.iter
    (fun (_info, blocks) -> extracted := !extracted + List.length blocks)
    loop_claims;
  Address_map.validate map;
  ( r,
    {
      candidate_loops = loop_count;
      matrix_routines = List.length routine_claims;
      extracted_blocks = !extracted;
    } )
