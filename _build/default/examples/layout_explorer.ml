(* Layout explorer: where does the hot kernel code end up?

   This example profiles the four paper workloads on the calibrated
   kernel, builds the OptS layout, and then dissects it: the hottest
   routines, the SelfConfFree area contents, the sequences grown from
   each of the four seeds, and the byte budget of each layout region.

   Run with:  dune exec examples/layout_explorer.exe *)

let () =
  let ctx = Context.create ~spec:Spec.small ~words:400_000 () in
  let model = ctx.Context.model in
  let g = Context.os_graph ctx in
  let profile = ctx.Context.avg_os_profile in

  (* The ten most frequently invoked routines (paper, Section 3.2.3: tiny
     utilities such as lock handling and timer management dominate). *)
  print_endline "== Ten most invoked OS routines ==";
  List.iter
    (fun (r, count) ->
      Printf.printf "  %-24s %10.0f invocations\n" (Model.routine_name model r) count)
    (Popularity.top_routines profile g ~n:10);

  (* Build the OptS layout and dissect it. *)
  let r =
    Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx) (Opt.params ())
  in
  Printf.printf "\n== SelfConfFree area: %d bytes, %d blocks ==\n" r.Opt.scf_bytes
    (List.length r.Opt.scf_blocks);
  let by_routine = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let routine = Graph.routine_of_block g b in
      let n = Option.value ~default:0 (Hashtbl.find_opt by_routine routine) in
      Hashtbl.replace by_routine routine (n + 1))
    r.Opt.scf_blocks;
  Hashtbl.iter
    (fun routine n ->
      Printf.printf "  %-24s %d block%s\n" (Model.routine_name model routine) n
        (if n = 1 then "" else "s"))
    by_routine;

  print_endline "\n== Sequences (pass thresholds -> blocks, bytes) ==";
  List.iter
    (fun (s : Sequence.t) ->
      Printf.printf "  %-10s ExecThresh=%-8g BranchThresh=%-5g %5d blocks %7d bytes\n"
        (Service.to_string s.Sequence.pass.Schedule.service)
        s.Sequence.pass.Schedule.exec_thresh s.Sequence.pass.Schedule.branch_thresh
        (Array.length s.Sequence.blocks) s.Sequence.bytes)
    r.Opt.sequences;

  (* Region census: how many bytes land in each region of Figure 10. *)
  print_endline "\n== Region byte budget ==";
  let census = Hashtbl.create 8 in
  Graph.iter_blocks g (fun blk ->
      let region = Address_map.region_to_string (Address_map.region r.Opt.map blk.Block.id) in
      let bytes = Option.value ~default:0 (Hashtbl.find_opt census region) in
      Hashtbl.replace census region (bytes + blk.Block.size));
  Hashtbl.iter (fun region bytes -> Printf.printf "  %-14s %8d bytes\n" region bytes) census;
  Printf.printf "  %-14s %8d bytes\n" "(total image)" (Address_map.extent r.Opt.map)
