examples/quickstart.ml: Array Config Counters Engine Generator Graph Model Printf Profile Program_layout Replay Spec Speedup System Trace Workload
