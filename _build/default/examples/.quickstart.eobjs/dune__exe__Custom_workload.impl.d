examples/custom_workload.ml: App_model Array Config Context Counters Engine Generator List Model Printf Prng Program Program_layout Replay Spec Stats System Table Trace Workload
