examples/quickstart.mli:
