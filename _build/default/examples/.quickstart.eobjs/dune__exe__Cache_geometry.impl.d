examples/cache_geometry.ml: Array Config Context Counters Levels List Program_layout Replay Spec Speedup System Table Trace
