examples/multiprocessor.mli:
