examples/multiprocessor.ml: Array Config Context Counters Levels Multiproc Printf Program_layout Replay Spec System Table Trace Workload
