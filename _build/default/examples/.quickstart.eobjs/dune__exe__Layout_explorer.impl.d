examples/layout_explorer.ml: Address_map Array Block Context Graph Hashtbl List Model Opt Option Popularity Printf Schedule Sequence Service Spec
