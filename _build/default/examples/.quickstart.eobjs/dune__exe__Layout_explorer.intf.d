examples/layout_explorer.mli:
