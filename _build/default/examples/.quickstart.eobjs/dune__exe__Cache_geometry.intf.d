examples/cache_geometry.mli:
