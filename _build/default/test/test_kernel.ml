open Helpers

let model () = Lazy.force small_model

(* ------------------------------------------------------------------ *)
(* Service                                                            *)
(* ------------------------------------------------------------------ *)

let test_service_roundtrip () =
  Array.iter
    (fun s -> check_bool "roundtrip" true (Service.of_index (Service.index s) = s))
    Service.all;
  check_int "count" 4 Service.count;
  check_raises_invalid "bad index" (fun () -> Service.of_index 4);
  check_raises_invalid "negative index" (fun () -> Service.of_index (-1))

let test_service_order () =
  check_int "interrupt first" 0 (Service.index Service.Interrupt);
  check_int "page fault" 1 (Service.index Service.Page_fault);
  check_int "syscall" 2 (Service.index Service.Syscall);
  check_int "other last" 3 (Service.index Service.Other)

let test_service_names_distinct () =
  let names = Array.map Service.to_string Service.all in
  let uniq = List.sort_uniq compare (Array.to_list names) in
  check_int "distinct names" 4 (List.length uniq)

(* ------------------------------------------------------------------ *)
(* Names                                                              *)
(* ------------------------------------------------------------------ *)

let test_names_deterministic () =
  check_string "leaf stable" (Names.leaf 0) (Names.leaf 0);
  check_bool "leaves differ" true (Names.leaf 0 <> Names.leaf 1);
  check_bool "layers differ" true (Names.mid 0 <> Names.sub_mid 0);
  check_bool "handler names differ per class" true
    (Names.handler Service.Interrupt 0 <> Names.handler Service.Syscall 0)

(* ------------------------------------------------------------------ *)
(* Generator / Model                                                  *)
(* ------------------------------------------------------------------ *)

let test_generate_small () =
  let m = model () in
  check_bool "has blocks" true (Graph.block_count m.Model.graph > 100);
  check_bool "has routines" true (Graph.routine_count m.Model.graph > 50)

let test_generate_leaf_count_guard () =
  check_raises_invalid "leaf_count < 12" (fun () ->
      Generator.generate { Spec.small with Spec.leaf_count = 11 })

let test_generate_deterministic () =
  let a = Generator.generate Spec.small in
  let b = Generator.generate Spec.small in
  check_int "same block count" (Graph.block_count a.Model.graph)
    (Graph.block_count b.Model.graph);
  check_int "same arc count" (Graph.arc_count a.Model.graph)
    (Graph.arc_count b.Model.graph);
  check_int "same code bytes" (Graph.code_bytes a.Model.graph)
    (Graph.code_bytes b.Model.graph);
  Alcotest.(check (array (float 1e-12)))
    "same arc probabilities" a.Model.arc_prob b.Model.arc_prob;
  Alcotest.(check (array int)) "same base order" a.Model.base_order b.Model.base_order

let test_generate_seed_sensitivity () =
  let a = Generator.generate Spec.small in
  let b = Generator.generate (Spec.with_seed Spec.small 43) in
  check_bool "different seed differs" true
    (a.Model.base_order <> b.Model.base_order
    || Graph.code_bytes a.Model.graph <> Graph.code_bytes b.Model.graph)

let test_model_seeds () =
  let m = model () in
  check_int "four seeds" 4 (Array.length m.Model.seeds);
  Array.iter
    (fun s ->
      let info = Model.seed_for m s in
      check_bool "seed service matches" true (info.Model.service = s);
      check_int "entry is routine entry"
        (Graph.entry_of m.Model.graph info.Model.routine)
        info.Model.entry)
    Service.all

let test_model_dispatch () =
  let m = model () in
  Array.iter
    (fun s ->
      let d = Model.dispatch_for m s in
      check_int "one dispatch arc per handler"
        (Model.handler_count m s)
        (Array.length d.Model.arcs);
      check_bool "dispatch block flagged" true (Model.is_dispatch_block m d.Model.block);
      Array.iter
        (fun (a, hi) ->
          let arc = Graph.arc m.Model.graph a in
          check_int "arc leaves the dispatch block" d.Model.block arc.Arc.src;
          check_bool "handler index in range" true
            (hi >= 0 && hi < Model.handler_count m s))
        d.Model.arcs)
    Service.all

let test_model_handler_counts () =
  let m = model () in
  Array.iteri
    (fun ci n ->
      check_int "handler count matches spec" n
        (Array.length m.Model.handlers.(ci)))
    Spec.small.Spec.handler_counts

let test_model_base_order_permutation () =
  let m = model () in
  let sorted = Array.copy m.Model.base_order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of routines"
    (Array.init (Graph.routine_count m.Model.graph) Fun.id)
    sorted

let test_model_arc_probabilities () =
  let m = model () in
  let g = m.Model.graph in
  (* Arc probabilities are conditional on the source block executing: for
     every block with outgoing arcs they must sum to at most ~1 and every
     probability lies in [0, 1]. *)
  Graph.iter_blocks g (fun b ->
      let arcs = Graph.out_arcs g b.Block.id in
      if Array.length arcs > 0 then begin
        let sum =
          Array.fold_left (fun acc a -> acc +. m.Model.arc_prob.(a)) 0.0 arcs
        in
        if not (sum <= 1.0 +. 1e-6) then
          Alcotest.failf "block %d arc probabilities sum to %f" b.Block.id sum;
        Array.iter
          (fun a ->
            let p = m.Model.arc_prob.(a) in
            if p < -.1e-9 || p > 1.0 +. 1e-9 then
              Alcotest.failf "arc %d probability %f out of range" a p)
          arcs
      end)

let test_model_hot_exit_probability () =
  (* Seed entry blocks must be able to continue: at least one outgoing arc
     with positive probability. *)
  let m = model () in
  let g = m.Model.graph in
  Array.iter
    (fun (info : Model.seed_info) ->
      let entry_arcs = Graph.out_arcs g info.Model.entry in
      check_bool "seed entry continues" true
        (Array.exists (fun a -> m.Model.arc_prob.(a) > 0.0) entry_arcs))
    m.Model.seeds

let test_model_routine_name () =
  let m = model () in
  check_bool "names nonempty" true (String.length (Model.routine_name m 0) > 0)

let test_model_code_size_calibration () =
  (* The default kernel must be in the neighbourhood of Concentrix 3.0:
     ~0.94 MB of code, tens of thousands of blocks, ~21 byte mean block. *)
  let m = Lazy.force default_model in
  let g = m.Model.graph in
  let bytes = Graph.code_bytes g in
  check_bool "code size ~1MB" true (bytes > 700_000 && bytes < 1_400_000);
  let mean_block = float_of_int bytes /. float_of_int (Graph.block_count g) in
  check_bool "mean block size ~21 bytes" true (mean_block > 15.0 && mean_block < 28.0);
  check_bool "routine population ~2K" true
    (Graph.routine_count g > 1_000 && Graph.routine_count g < 4_000)

(* ------------------------------------------------------------------ *)
(* Routine_gen                                                        *)
(* ------------------------------------------------------------------ *)

let emit_one shape_of =
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  let sink = Routine_gen.sink bld (Prng.of_int 17) in
  let hot = Routine_gen.emit sink (shape_of r) in
  let g = Graph.freeze bld in
  (g, r, hot, sink)

let test_routine_gen_hot_path () =
  let g, r, hot, _ =
    emit_one (fun r ->
        { (Routine_gen.default_shape ~routine:r) with Routine_gen.hot_len = 5 })
  in
  check_int "hot path length" 5 (Array.length hot);
  check_int "entry is first hot block" (Graph.entry_of g r) hot.(0);
  check_bool "exit is last hot block" true (Graph.is_exit g hot.(4))

let test_routine_gen_cold_detours () =
  let g, _, hot, _ =
    emit_one (fun r ->
        {
          (Routine_gen.default_shape ~routine:r) with
          Routine_gen.hot_len = 8;
          cold_detour_prob = 1.0;
        })
  in
  check_bool "cold blocks exist beyond the hot path" true
    (Graph.block_count g > Array.length hot)

let test_routine_gen_loop_shape () =
  let g, _, hot, _ =
    emit_one (fun r ->
        {
          (Routine_gen.default_shape ~routine:r) with
          Routine_gen.hot_len = 6;
          cold_loop_prob = 0.0;
          loops =
            [ (2, { Routine_gen.body_blocks = 2; mean_iterations = 8.0; loop_call = None }) ];
        })
  in
  ignore hot;
  let loops = Loops.find g in
  check_int "one natural loop emitted" 1 (List.length loops);
  check_bool "loop has no calls" false (Loops.has_calls (List.hd loops))

let test_routine_gen_cold_loops () =
  let g, _, _, _ =
    emit_one (fun r ->
        {
          (Routine_gen.default_shape ~routine:r) with
          Routine_gen.hot_len = 12;
          cold_detour_prob = 1.0;
          cold_loop_prob = 1.0;
        })
  in
  let loops = Loops.find g in
  check_bool "cold chains produced loops" true (loops <> []);
  List.iter
    (fun (l : Loops.t) ->
      check_bool "cold loop bodies are 1-2 blocks" true
        (Array.length l.Loops.body <= 2))
    loops

let test_routine_gen_invalid_shapes () =
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  let sink = Routine_gen.sink bld (Prng.of_int 17) in
  check_raises_invalid "hot_len 0" (fun () ->
      Routine_gen.emit sink
        { (Routine_gen.default_shape ~routine:r) with Routine_gen.hot_len = 0 })

let test_routine_gen_size_dists () =
  let g = Prng.of_int 3 in
  let mean = Dist.mean_estimate Routine_gen.hot_size_dist g 20_000 in
  check_bool "hot sizes average near 21 bytes" true (mean > 17.0 && mean < 26.0);
  for _ = 1 to 200 do
    let v = Dist.sample Routine_gen.hot_size_dist g in
    check_bool "multiple of 4" true (v mod 4 = 0);
    check_bool "positive" true (v > 0)
  done

let test_routine_gen_cold_probability () =
  let g = Prng.of_int 3 in
  for _ = 1 to 500 do
    let p = Routine_gen.cold_take_probability g in
    check_bool "in (0, 0.2]" true (p > 0.0 && p <= 0.2)
  done

(* ------------------------------------------------------------------ *)
(* App_model                                                          *)
(* ------------------------------------------------------------------ *)

let test_app_models_construct () =
  List.iter
    (fun name ->
      let app = App_model.by_name name in
      check_string "name recorded" name app.App_model.name;
      check_bool "nonempty graph" true (Graph.block_count app.App_model.graph > 10);
      let sorted = Array.copy app.App_model.base_order in
      Array.sort compare sorted;
      Alcotest.(check (array int))
        "base order is a permutation"
        (Array.init (Graph.routine_count app.App_model.graph) Fun.id)
        sorted)
    [ "trfd"; "arc2d"; "cc1"; "fsck" ]

let test_app_by_name_invalid () =
  check_raises_invalid "unknown app" (fun () -> App_model.by_name "doom")

let test_app_deterministic () =
  let a = App_model.trfd () and b = App_model.trfd () in
  check_int "same code size" (Graph.code_bytes a.App_model.graph)
    (Graph.code_bytes b.App_model.graph);
  Alcotest.(check (array (float 1e-12)))
    "same arc probabilities" a.App_model.arc_prob b.App_model.arc_prob

let test_app_loop_character () =
  (* Scientific codes must be loopy; the compiler model is the big one. *)
  let loops_of app = List.length (Loops.find app.App_model.graph) in
  let trfd = App_model.trfd () and cc1 = App_model.cc1 () in
  check_bool "trfd has loops" true (loops_of trfd > 0);
  check_bool "cc1 has loops" true (loops_of cc1 > 0);
  check_bool "cc1 is the bigger code" true
    (Graph.code_bytes cc1.App_model.graph > Graph.code_bytes trfd.App_model.graph)

let test_app_arc_prob_shape () =
  let app = App_model.fsck () in
  let g = app.App_model.graph in
  Graph.iter_blocks g (fun b ->
      let arcs = Graph.out_arcs g b.Block.id in
      if Array.length arcs > 0 then begin
        let sum =
          Array.fold_left (fun acc a -> acc +. app.App_model.arc_prob.(a)) 0.0 arcs
        in
        if not (sum <= 1.0 +. 1e-6) then
          Alcotest.failf "fsck block %d arc probabilities sum to %f" b.Block.id sum
      end)

let () =
  Alcotest.run "kernel_model"
    [
      ( "service",
        [
          case "roundtrip" test_service_roundtrip;
          case "paper order" test_service_order;
          case "distinct names" test_service_names_distinct;
        ] );
      ("names", [ case "deterministic" test_names_deterministic ]);
      ( "generator",
        [
          case "small generates" test_generate_small;
          case "leaf-count guard" test_generate_leaf_count_guard;
          case "deterministic" test_generate_deterministic;
          case "seed sensitivity" test_generate_seed_sensitivity;
          case "seeds" test_model_seeds;
          case "dispatch" test_model_dispatch;
          case "handler counts" test_model_handler_counts;
          case "base order permutation" test_model_base_order_permutation;
          case "arc probabilities" test_model_arc_probabilities;
          case "hot paths continue" test_model_hot_exit_probability;
          case "routine names" test_model_routine_name;
          case "code-size calibration" test_model_code_size_calibration;
        ] );
      ( "routine_gen",
        [
          case "hot path" test_routine_gen_hot_path;
          case "cold detours" test_routine_gen_cold_detours;
          case "loop shape" test_routine_gen_loop_shape;
          case "cold loops" test_routine_gen_cold_loops;
          case "invalid shapes" test_routine_gen_invalid_shapes;
          case "size distributions" test_routine_gen_size_dists;
          case "cold-take probability" test_routine_gen_cold_probability;
        ] );
      ( "app_model",
        [
          case "construct all" test_app_models_construct;
          case "by_name invalid" test_app_by_name_invalid;
          case "deterministic" test_app_deterministic;
          case "loop character" test_app_loop_character;
          case "arc probability shape" test_app_arc_prob_shape;
        ] );
    ]
