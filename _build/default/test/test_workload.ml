open Helpers

let model () = Lazy.force small_model

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let t = Trace.create ~capacity:2 () in
  let events =
    [
      Trace.Invocation_start Service.Interrupt;
      Trace.Exec { image = 0; block = 42 };
      Trace.Exec { image = 3; block = 0 };
      Trace.Invocation_end;
      Trace.Invocation_start Service.Syscall;
      Trace.Exec { image = 1; block = 123_456 };
      Trace.Invocation_end;
    ]
  in
  List.iter (Trace.append t) events;
  check_int "length" (List.length events) (Trace.length t);
  List.iteri
    (fun i e ->
      check_bool (Printf.sprintf "event %d round-trips" i) true (Trace.get t i = e))
    events;
  check_bool "events_to_list" true (Trace.events_to_list t = events)

let test_trace_capacity_growth () =
  let t = Trace.create ~capacity:1 () in
  for b = 0 to 999 do
    Trace.append t (Trace.Exec { image = 0; block = b })
  done;
  check_int "grew to 1000" 1000 (Trace.length t);
  check_bool "last intact" true (Trace.get t 999 = Trace.Exec { image = 0; block = 999 })

let test_trace_iter_exec () =
  let t = Trace.create () in
  Trace.append t (Trace.Invocation_start Service.Other);
  Trace.append t (Trace.Exec { image = 2; block = 7 });
  Trace.append t (Trace.Invocation_end);
  Trace.append t (Trace.Exec { image = 0; block = 9 });
  let seen = ref [] in
  Trace.iter_exec t (fun ~image ~block -> seen := (image, block) :: !seen);
  check_bool "only exec events" true (List.rev !seen = [ (2, 7); (0, 9) ]);
  let all = ref 0 in
  Trace.iter t (fun _ -> incr all);
  check_int "iter sees all" 4 !all

(* ------------------------------------------------------------------ *)
(* Walker                                                             *)
(* ------------------------------------------------------------------ *)

let collect_walk ?choose g arc_prob start =
  let w = Walker.create ~graph:g ~arc_prob ~prng:(Prng.of_int 5) ?choose () in
  Walker.start w start;
  let rec go acc =
    match Walker.step w with None -> List.rev acc | Some b -> go (b :: acc)
  in
  go []

let test_walker_follows_call () =
  let lc = loop_call () in
  (* Loop never repeats: back edge probability 0. *)
  let arc_prob = Array.make (Graph.arc_count lc.g) 1.0 in
  arc_prob.(lc.back_edge) <- 0.0;
  let walk = collect_walk lc.g arc_prob lc.c0 in
  check_bool "walk descends into callee and returns" true
    (walk = [ lc.c0; lc.c1; lc.c2; lc.l0; lc.l1; lc.c3; lc.c4 ])

let test_walker_loop_iterations () =
  let lc = loop_call () in
  let arc_prob = Array.make (Graph.arc_count lc.g) 1.0 in
  (* Deterministic 100% back edge would never terminate; use choose to take
     the back edge exactly twice. *)
  let taken = ref 0 in
  let choose _b (arcs : Arc.id array) =
    if Array.exists (fun a -> a = lc.back_edge) arcs then begin
      incr taken;
      if !taken <= 2 then Some lc.back_edge
      else Some (Array.to_list arcs |> List.find (fun a -> a <> lc.back_edge))
    end
    else None
  in
  let walk = collect_walk ~choose lc.g arc_prob lc.c0 in
  let count b = List.length (List.filter (fun x -> x = b) walk) in
  check_int "header executed 3 times" 3 (count lc.c1);
  check_int "callee body executed 3 times" 3 (count lc.l0);
  check_int "exit once" 1 (count lc.c4)

let test_walker_active_depth () =
  let lc = loop_call () in
  let arc_prob = Array.make (Graph.arc_count lc.g) 1.0 in
  arc_prob.(lc.back_edge) <- 0.0;
  let w = Walker.create ~graph:lc.g ~arc_prob ~prng:(Prng.of_int 5) () in
  check_bool "inactive before start" false (Walker.active w);
  Walker.start w lc.c0;
  check_bool "active after start" true (Walker.active w);
  (* Step until we are inside the callee. *)
  let rec step_until b =
    match Walker.step w with
    | Some x when x = b -> ()
    | Some _ -> step_until b
    | None -> Alcotest.fail "walk ended early"
  in
  step_until lc.l0;
  check_bool "depth positive inside callee" true (Walker.depth w >= 1);
  step_until lc.c4;
  check_bool "drained" true (Walker.step w = None);
  check_bool "inactive after completion" false (Walker.active w)

let test_walker_on_arc () =
  let d = diamond () in
  let arc_prob = Array.make (Graph.arc_count d.g) 0.0 in
  arc_prob.(d.arc_ea) <- 1.0;
  arc_prob.(d.arc_ax) <- 1.0;
  let arcs = ref [] in
  let w =
    Walker.create ~graph:d.g ~arc_prob ~prng:(Prng.of_int 5)
      ~on_arc:(fun a -> arcs := a :: !arcs)
      ()
  in
  Walker.start w d.entry;
  let rec drain () = match Walker.step w with Some _ -> drain () | None -> () in
  drain ();
  check_bool "took the hot path arcs" true (List.rev !arcs = [ d.arc_ea; d.arc_ax ])

let test_walker_probabilistic_split () =
  let d = diamond () in
  let arc_prob = Array.make (Graph.arc_count d.g) 1.0 in
  arc_prob.(d.arc_ea) <- 0.7;
  arc_prob.(d.arc_eb) <- 0.3;
  let a_count = ref 0 and n = 5_000 in
  let w = Walker.create ~graph:d.g ~arc_prob ~prng:(Prng.of_int 5) () in
  for _ = 1 to n do
    Walker.start w d.entry;
    let rec drain () =
      match Walker.step w with
      | Some b ->
          if b = d.a then incr a_count;
          drain ()
      | None -> ()
    in
    drain ()
  done;
  check_close 0.03 "split matches probabilities" 0.7
    (float_of_int !a_count /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Workload / Program                                                 *)
(* ------------------------------------------------------------------ *)

let test_workloads_standard () =
  let m = model () in
  let ws = Workload.standard m in
  check_int "four workloads" 4 (Array.length ws);
  Array.iter
    (fun (w : Workload.t) ->
      check_close 1e-9 "mix sums to 1" 1.0 (Stats.sum w.Workload.mix);
      check_int "weights for each class" Service.count
        (Array.length w.Workload.handler_weights);
      check_bool "os fraction in (0,1]" true
        (w.Workload.os_fraction > 0.0 && w.Workload.os_fraction <= 1.0);
      Array.iteri
        (fun ci hw ->
          check_int "one weight per handler"
            (Array.length m.Model.handlers.(ci))
            (Array.length hw))
        w.Workload.handler_weights)
    ws

let test_workload_characters () =
  let m = model () in
  let trfd = Workload.trfd_4 m and shell = Workload.shell m in
  let ix s = Service.index s in
  check_bool "TRFD_4 is interrupt dominated" true
    (trfd.Workload.mix.(ix Service.Interrupt) > trfd.Workload.mix.(ix Service.Syscall));
  check_bool "Shell is syscall dominated" true
    (shell.Workload.mix.(ix Service.Syscall) > shell.Workload.mix.(ix Service.Interrupt));
  check_float "TRFD_4 never syscalls" 0.0 (trfd.Workload.mix.(ix Service.Syscall));
  check_bool "Shell runs no traced app" true
    (Array.length shell.Workload.app_instances = 0 || shell.Workload.os_fraction = 1.0)

let test_focused_weights () =
  let g = Prng.of_int 9 in
  let w = Workload.focused_weights g ~n:10 ~used:4 ~common_weight:0.5 in
  check_int "length" 10 (Array.length w);
  check_float "handler 0 gets the common weight" 0.5 w.(0);
  let used = Array.fold_left (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 w in
  check_int "exactly [used] handlers weighted" 4 used;
  Array.iter (fun x -> check_bool "weights non-negative" true (x >= 0.0)) w

let test_program_images () =
  let m = model () in
  let apps = [| App_model.trfd () |] in
  let p = Program.make ~os:m ~apps in
  check_int "image count" 2 (Program.image_count p);
  check_bool "os image" true (Program.is_os Program.os_image);
  check_bool "app image" false (Program.is_os 1);
  check_bool "os graph" true (Program.graph p 0 == m.Model.graph);
  check_bool "app graph" true (Program.graph p 1 == apps.(0).App_model.graph);
  check_raises_invalid "bad image" (fun () -> Program.graph p 2);
  check_bool "image names differ" true
    (Program.image_name p 0 <> Program.image_name p 1)

let test_program_max_apps () =
  let m = model () in
  let apps = Array.init (Program.max_apps + 1) (fun _ -> App_model.trfd ()) in
  check_raises_invalid "too many apps" (fun () -> Program.make ~os:m ~apps)

let test_standard_programs () =
  let m = model () in
  let pairs = Workload.standard_programs m in
  check_int "four pairs" 4 (Array.length pairs);
  Array.iter
    (fun ((w : Workload.t), (p : Program.t)) ->
      Array.iter
        (fun inst ->
          check_bool "instance indexes a real image" true
            (inst >= 1 && inst < Program.image_count p))
        w.Workload.app_instances)
    pairs

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let run_one ?(words = 60_000) ?(seed = 3) which =
  let m = model () in
  let pairs = Workload.standard_programs m in
  let w, p = pairs.(which) in
  (w, p, Engine.capture ~program:p ~workload:w ~words ~seed)

let test_engine_word_budget () =
  let _, _, (_, stats) = run_one 1 in
  check_bool "at least the requested words" true (stats.Engine.total_words >= 60_000);
  check_int "words add up" stats.Engine.total_words
    (stats.Engine.os_words + stats.Engine.app_words)

let test_engine_os_fraction () =
  let w, _, (_, stats) = run_one 1 in
  let actual =
    float_of_int stats.Engine.os_words /. float_of_int stats.Engine.total_words
  in
  check_close 0.08 "OS share converges to target" w.Workload.os_fraction actual

let test_engine_invocation_markers_balanced () =
  let _, _, (trace, stats) = run_one 0 in
  let starts = ref 0 and ends = ref 0 and depth_bad = ref false in
  let depth = ref 0 in
  Trace.iter trace (fun e ->
      match e with
      | Trace.Invocation_start _ ->
          incr starts;
          incr depth;
          if !depth > 1 then depth_bad := true
      | Trace.Invocation_end ->
          incr ends;
          decr depth;
          if !depth < 0 then depth_bad := true
      | Trace.Exec _ -> ());
  check_bool "markers never nest or underflow" false !depth_bad;
  check_bool "starts within one of ends" true (abs (!starts - !ends) <= 1);
  check_int "stats count the invocations" !starts
    (Array.fold_left ( + ) 0 stats.Engine.invocations)

let test_engine_determinism () =
  let _, _, (t1, s1) = run_one ~seed:5 2 in
  let _, _, (t2, s2) = run_one ~seed:5 2 in
  check_int "same trace length" (Trace.length t1) (Trace.length t2);
  check_int "same total words" s1.Engine.total_words s2.Engine.total_words;
  let same = ref true in
  for i = 0 to Trace.length t1 - 1 do
    if Trace.get t1 i <> Trace.get t2 i then same := false
  done;
  check_bool "identical event streams" true !same

let test_engine_seed_changes_trace () =
  let _, _, (_, s1) = run_one ~seed:5 2 in
  let _, _, (_, s2) = run_one ~seed:6 2 in
  check_bool "different seeds give different runs" true
    (s1.Engine.total_words <> s2.Engine.total_words
    || s1.Engine.os_words <> s2.Engine.os_words)

let test_engine_mix_respected () =
  let m = model () in
  let pairs = Workload.standard_programs m in
  let w, p = pairs.(0) in
  (* TRFD_4: syscall share is 0; interrupts dominate. *)
  let _, stats = Engine.capture ~program:p ~workload:w ~words:80_000 ~seed:3 in
  let total = float_of_int (Array.fold_left ( + ) 0 stats.Engine.invocations) in
  let share s =
    float_of_int stats.Engine.invocations.(Service.index s) /. total
  in
  check_float "no syscalls in TRFD_4" 0.0 (share Service.Syscall);
  check_bool "interrupts dominate" true (share Service.Interrupt > 0.5)

let test_engine_context_switches () =
  let m = model () in
  let pairs = Workload.standard_programs m in
  let w, p = pairs.(1) in
  let _, stats = Engine.capture ~program:p ~workload:w ~words:80_000 ~seed:3 in
  if w.Workload.switch_period > 0 then
    check_bool "context switches happen" true (stats.Engine.context_switches > 0)

let test_engine_trace_agrees_with_stats () =
  let _, p, (trace, stats) = run_one 1 in
  let os = ref 0 and app = ref 0 in
  Trace.iter_exec trace (fun ~image ~block ->
      let words = Block.instruction_words (Graph.block (Program.graph p image) block) in
      if Program.is_os image then os := !os + words else app := !app + words);
  check_int "os words agree" stats.Engine.os_words !os;
  check_int "app words agree" stats.Engine.app_words !app

let test_engine_combine_sinks () =
  let m = model () in
  let pairs = Workload.standard_programs m in
  let w, p = pairs.(0) in
  let execs = ref 0 and invs = ref 0 in
  let counting =
    {
      Engine.on_exec = (fun ~image:_ ~block:_ -> incr execs);
      on_arc = (fun ~image:_ ~arc:_ -> ());
      on_invocation_start = (fun _ -> incr invs);
      on_invocation_end = (fun () -> ());
    }
  in
  let t = Trace.create () in
  let sink = Engine.combine_sinks [ counting; Engine.trace_sink t ] in
  let stats = Engine.run ~program:p ~workload:w ~words:30_000 ~seed:3 ~sink in
  check_bool "counting sink saw execs" true (!execs > 0);
  check_int "counting sink saw the invocations"
    (Array.fold_left ( + ) 0 stats.Engine.invocations)
    !invs;
  let trace_execs = ref 0 in
  Trace.iter_exec t (fun ~image:_ ~block:_ -> incr trace_execs);
  check_int "both sinks saw the same stream" !execs !trace_execs

let () =
  Alcotest.run "workload"
    [
      ( "trace",
        [
          case "roundtrip" test_trace_roundtrip;
          case "capacity growth" test_trace_capacity_growth;
          case "iter_exec" test_trace_iter_exec;
        ] );
      ( "walker",
        [
          case "follows calls" test_walker_follows_call;
          case "loop iterations via chooser" test_walker_loop_iterations;
          case "active/depth" test_walker_active_depth;
          case "on_arc callback" test_walker_on_arc;
          case "probabilistic split" test_walker_probabilistic_split;
        ] );
      ( "workload",
        [
          case "standard set" test_workloads_standard;
          case "paper characters" test_workload_characters;
          case "focused weights" test_focused_weights;
          case "program images" test_program_images;
          case "max apps" test_program_max_apps;
          case "standard programs" test_standard_programs;
        ] );
      ( "engine",
        [
          case "word budget" test_engine_word_budget;
          case "os fraction" test_engine_os_fraction;
          case "markers balanced" test_engine_invocation_markers_balanced;
          case "determinism" test_engine_determinism;
          case "seed sensitivity" test_engine_seed_changes_trace;
          case "mix respected" test_engine_mix_respected;
          case "context switches" test_engine_context_switches;
          case "trace agrees with stats" test_engine_trace_agrees_with_stats;
          case "combine sinks" test_engine_combine_sinks;
        ] );
    ]
