open Helpers

(* Whole-pipeline property tests: random kernel specifications and random
   profiles must never break the generator's structural invariants or any
   layout algorithm's placement invariants. *)

(* Random scaled-down specs (kept small so each case is fast). *)
let spec_gen =
  QCheck.Gen.(
    let* seed = 0 -- 10_000 in
    let* leaf = 12 -- 16 in
    let* sub = 6 -- 20 in
    let* mid = 8 -- 30 in
    let* h0 = 2 -- 5 and* h1 = 1 -- 4 and* h2 = 2 -- 8 and* h3 = 1 -- 3 in
    let* cold = 10 -- 80 in
    return
      {
        Spec.small with
        Spec.seed;
        leaf_count = leaf;
        sub_mid_count = sub;
        mid_count = mid;
        handler_counts = [| h0; h1; h2; h3 |];
        cold_count = cold;
      })

let spec_arb = QCheck.make ~print:(fun s -> Printf.sprintf "spec seed=%d" s.Spec.seed) spec_gen

let prop_generator_invariants =
  QCheck.Test.make ~name:"random specs generate well-formed kernels" ~count:30
    spec_arb (fun spec ->
      let m = Generator.generate spec in
      let g = m.Model.graph in
      (* Every routine non-empty with its entry in range. *)
      Graph.iter_routines g (fun r ->
          assert (Routine.block_count r > 0);
          assert (Graph.routine_of_block g r.Routine.entry = r.Routine.id));
      (* Arc probabilities well-formed. *)
      Graph.iter_blocks g (fun b ->
          let arcs = Graph.out_arcs g b.Block.id in
          let sum = Array.fold_left (fun acc a -> acc +. m.Model.arc_prob.(a)) 0.0 arcs in
          assert (Array.length arcs = 0 || sum <= 1.0 +. 1e-6));
      (* Base order is a permutation. *)
      let sorted = Array.copy m.Model.base_order in
      Array.sort compare sorted;
      sorted = Array.init (Graph.routine_count g) Fun.id)

let prop_pipeline_layouts_valid =
  QCheck.Test.make ~name:"random kernels: every layout places every block once"
    ~count:10 spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(0) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:40_000 ~seed:spec.Spec.seed ~sink in
      let p = profiles.(0) in
      let g = m.Model.graph in
      let loops = Loops.find g in
      let check map =
        Address_map.validate map;
        Address_map.placed_count map = Graph.block_count g
      in
      check (Base.layout g ~order:m.Model.base_order)
      && check (Chang_hwu.layout g p)
      && check (Pettis_hansen.layout g p)
      && check (Opt.os_layout ~model:m ~profile:p ~loops (Opt.params ())).Opt.map
      && check
           (Opt.os_layout ~model:m ~profile:p ~loops
              (Opt.params ~extract_loops:true ()))
             .Opt.map
      && check (fst (Call_opt.layout ~model:m ~profile:p ())).Opt.map)

let prop_sequences_cover_executed =
  QCheck.Test.make ~name:"random kernels: sequences cover all executed blocks"
    ~count:10 spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(1) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:40_000 ~seed:spec.Spec.seed ~sink in
      let p = profiles.(0) in
      let g = m.Model.graph in
      let seqs =
        Sequence.build ~graph:g ~profile:p
          ~seed_entry:(fun c -> (Model.seed_for m c).Model.entry)
          ~schedule:Schedule.paper ()
      in
      let covered = Sequence.covered g seqs in
      let ok = ref true in
      Graph.iter_blocks g (fun b ->
          if Profile.executed p b.Block.id && not covered.(b.Block.id) then ok := false);
      !ok)

let prop_inline_engine_runs =
  QCheck.Test.make ~name:"random kernels: inlined models still trace" ~count:8
    spec_arb (fun spec ->
      let m = Generator.generate spec in
      let pairs = Workload.standard_programs m in
      let w, program = pairs.(0) in
      let profiles, sink = Profile.sinks ~program in
      let _ = Engine.run ~program ~workload:w ~words:30_000 ~seed:1 ~sink in
      let inlined, _ = Inline.transform ~model:m ~profile:profiles.(0) () in
      let pairs' = Workload.standard_programs inlined in
      let w', program' = pairs'.(0) in
      let _, stats = Engine.capture ~program:program' ~workload:w' ~words:20_000 ~seed:2 in
      stats.Engine.total_words >= 20_000)

let prop_layout_file_roundtrip_random =
  QCheck.Test.make ~name:"random kernels: layout files round-trip" ~count:8
    spec_arb (fun spec ->
      let m = Generator.generate spec in
      let g = m.Model.graph in
      let map = Base.layout g ~order:m.Model.base_order in
      let map' = Layout_file.of_string ~graph:g (Layout_file.to_string ~graph:g map) in
      let ok = ref true in
      Graph.iter_blocks g (fun b ->
          if Address_map.addr map b.Block.id <> Address_map.addr map' b.Block.id then
            ok := false);
      !ok)

let () =
  Alcotest.run "properties"
    [
      ( "pipeline",
        [
          qcheck prop_generator_invariants;
          qcheck prop_pipeline_layouts_valid;
          qcheck prop_sequences_cover_executed;
          qcheck prop_inline_engine_runs;
          qcheck prop_layout_file_roundtrip_random;
        ] );
    ]
