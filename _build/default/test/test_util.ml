open Helpers

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.of_int 99 and b = Prng.of_int 99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  check_bool "different seeds give different streams" true !differs

let test_prng_copy () =
  let a = Prng.of_int 5 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check_bool "copy continues identically" true
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Prng.of_int 5 in
  let b = Prng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  check_bool "split stream differs" true !differs

let test_prng_int_bounds () =
  let g = Prng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    check_bool "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_prng_int_invalid () =
  let g = Prng.of_int 3 in
  check_raises_invalid "bound 0" (fun () -> Prng.int g 0);
  check_raises_invalid "negative bound" (fun () -> Prng.int g (-4))

let test_prng_int_in () =
  let g = Prng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-5) 5 in
    check_bool "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  check_int "degenerate range" 9 (Prng.int_in g 9 9);
  check_raises_invalid "hi < lo" (fun () -> Prng.int_in g 2 1)

let test_prng_unit_float () =
  let g = Prng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Prng.unit_float g in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_bound () =
  let g = Prng.of_int 3 in
  for _ = 1 to 100 do
    let v = Prng.float g 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bernoulli_extremes () =
  let g = Prng.of_int 3 in
  for _ = 1 to 50 do
    check_bool "p=1 always true" true (Prng.bernoulli g 1.0);
    check_bool "p=0 always false" false (Prng.bernoulli g 0.0)
  done

let test_prng_bernoulli_rate () =
  let g = Prng.of_int 3 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  check_close 0.02 "p=0.3 empirical" 0.3 (float_of_int !hits /. float_of_int n)

let test_prng_choose () =
  let g = Prng.of_int 3 in
  check_int "singleton" 42 (Prng.choose g [| 42 |]);
  check_raises_invalid "empty" (fun () -> Prng.choose g [||])

let test_prng_choose_weighted () =
  let g = Prng.of_int 3 in
  for _ = 1 to 200 do
    let v = Prng.choose_weighted g [| ("never", 0.0); ("always", 3.0) |] in
    check_string "zero-weight element never chosen" "always" v
  done;
  check_raises_invalid "all zero" (fun () ->
      Prng.choose_weighted g [| (1, 0.0); (2, 0.0) |])

let test_prng_shuffle_permutation () =
  let g = Prng.of_int 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (array_of_size Gen.(0 -- 30) small_int))
    (fun (seed, a) ->
      let b = Array.copy a in
      Prng.shuffle (Prng.of_int seed) b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let prop_int_uniformish =
  QCheck.Test.make ~name:"Prng.int covers its range" ~count:20
    QCheck.(int_range 2 20)
    (fun bound ->
      let g = Prng.of_int bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Prng.int g bound) <- true
      done;
      Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Dist                                                               *)
(* ------------------------------------------------------------------ *)

let test_dist_constant () =
  let g = Prng.of_int 1 in
  let d = Dist.constant 9 in
  for _ = 1 to 20 do
    check_int "constant" 9 (Dist.sample d g)
  done

let test_dist_uniform_bounds () =
  let g = Prng.of_int 1 in
  let d = Dist.uniform_int 3 8 in
  for _ = 1 to 500 do
    let v = Dist.sample d g in
    check_bool "in [3,8]" true (v >= 3 && v <= 8)
  done;
  check_raises_invalid "hi < lo" (fun () -> Dist.uniform_int 8 3)

let test_dist_geometric () =
  let g = Prng.of_int 1 in
  let d = Dist.geometric ~p:0.5 ~min:2 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let v = Dist.sample d g in
    check_bool ">= min" true (v >= 2);
    sum := !sum + v
  done;
  (* mean = min + (1-p)/p = 3 *)
  check_close 0.1 "geometric mean" 3.0 (float_of_int !sum /. float_of_int n);
  check_raises_invalid "p=0" (fun () -> Dist.geometric ~p:0.0 ~min:0);
  check_raises_invalid "p>1" (fun () -> Dist.geometric ~p:1.5 ~min:0)

let test_dist_zipf_mass () =
  let n = 20 and s = 1.25 in
  let total = ref 0.0 in
  for rank = 0 to n - 1 do
    let m = Dist.zipf_mass ~n ~s ~rank in
    check_bool "mass positive" true (m > 0.0);
    if rank > 0 then
      check_bool "mass decreasing" true (m <= Dist.zipf_mass ~n ~s ~rank:(rank - 1));
    total := !total +. m
  done;
  check_close 1e-9 "masses sum to 1" 1.0 !total

let test_dist_zipf_bounds () =
  let g = Prng.of_int 1 in
  let d = Dist.zipf ~n:10 ~s:1.0 in
  for _ = 1 to 1000 do
    let v = Dist.sample d g in
    check_bool "rank in [0,10)" true (v >= 0 && v < 10)
  done;
  check_raises_invalid "n=0" (fun () -> Dist.zipf ~n:0 ~s:1.0)

let test_dist_zipf_empirical () =
  let g = Prng.of_int 1 in
  let n = 8 and s = 1.5 in
  let d = Dist.zipf ~n ~s in
  let counts = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let v = Dist.sample d g in
    counts.(v) <- counts.(v) + 1
  done;
  check_close 0.02 "rank-0 empirical mass"
    (Dist.zipf_mass ~n ~s ~rank:0)
    (float_of_int counts.(0) /. float_of_int draws)

let test_dist_weighted () =
  let g = Prng.of_int 1 in
  let d = Dist.weighted [| (4, 0.0); (7, 1.0) |] in
  for _ = 1 to 100 do
    check_int "zero weight excluded" 7 (Dist.sample d g)
  done

let test_dist_scaled () =
  let g = Prng.of_int 1 in
  let d = Dist.scaled (Dist.constant 10) 2.5 in
  check_int "scaled" 25 (Dist.sample d g)

let test_dist_clamped () =
  let g = Prng.of_int 1 in
  let d = Dist.clamped (Dist.constant 100) ~min:0 ~max:12 in
  check_int "clamped above" 12 (Dist.sample d g);
  let d = Dist.clamped (Dist.constant 1) ~min:5 ~max:12 in
  check_int "clamped below" 5 (Dist.sample d g)

let test_dist_mean_estimate () =
  let g = Prng.of_int 1 in
  check_close 1e-9 "mean of constant" 6.0
    (Dist.mean_estimate (Dist.constant 6) g 100)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||])

let test_stats_geometric_mean () =
  check_close 1e-9 "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |]);
  check_float "geomean empty" 0.0 (Stats.geometric_mean [||]);
  check_raises_invalid "non-positive" (fun () ->
      Stats.geometric_mean [| 1.0; 0.0 |])

let test_stats_stddev () =
  check_close 1e-9 "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]);
  check_float "stddev single" 0.0 (Stats.stddev [| 5.0 |])

let test_stats_median () =
  check_float "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "empty" 0.0 (Stats.median [||]);
  let a = [| 9.0; 1.0 |] in
  ignore (Stats.median a);
  check_float "argument unchanged" 9.0 a.(0)

let test_stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0 = min" 10.0 (Stats.percentile a 0.0);
  check_float "p100 = max" 40.0 (Stats.percentile a 100.0);
  check_raises_invalid "empty" (fun () -> Stats.percentile [||] 50.0);
  check_raises_invalid "out of range" (fun () -> Stats.percentile a 101.0)

let test_stats_min_max_sum () =
  check_float "min" (-2.0) (Stats.minimum [| 3.0; -2.0; 7.0 |]);
  check_float "max" 7.0 (Stats.maximum [| 3.0; -2.0; 7.0 |]);
  check_float "sum" 8.0 (Stats.sum [| 3.0; -2.0; 7.0 |]);
  check_int "sum_int" 6 (Stats.sum_int [| 1; 2; 3 |]);
  check_raises_invalid "min empty" (fun () -> Stats.minimum [||])

let test_stats_normalize () =
  let n = Stats.normalize [| 1.0; 3.0 |] in
  check_float "first" 0.25 n.(0);
  check_float "second" 0.75 n.(1);
  let z = Stats.normalize [| 0.0; 0.0 |] in
  check_float "zero stays zero" 0.0 z.(0)

let test_stats_ratio_pct () =
  check_float "ratio" 0.5 (Stats.ratio 1 2);
  check_float "ratio zero den" 0.0 (Stats.ratio 5 0);
  check_float "pct" 50.0 (Stats.pct 1 2)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile between min and max" ~count:200
    QCheck.(pair (array_of_size Gen.(1 -- 40) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (a, p) ->
      let v = Stats.percentile a p in
      v >= Stats.minimum a && v <= Stats.maximum a)

let prop_normalize_sums_to_one =
  QCheck.Test.make ~name:"normalize sums to 1" ~count:200
    QCheck.(array_of_size Gen.(1 -- 40) (float_range 0.001 50.))
    (fun a -> abs_float (Stats.sum (Stats.normalize a) -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_hist_linear () =
  let h = Histogram.linear ~lo:0 ~hi:100 ~bucket:10 in
  check_int "bucket count" 10 (Histogram.bucket_count h);
  Histogram.add h 0;
  Histogram.add h 9;
  Histogram.add h 10;
  Histogram.add h 99;
  check_int "bucket 0" 2 (Histogram.count h 0);
  check_int "bucket 1" 1 (Histogram.count h 1);
  check_int "bucket 9" 1 (Histogram.count h 9);
  check_int "total" 4 (Histogram.total h)

let test_hist_linear_clamp () =
  let h = Histogram.linear ~lo:0 ~hi:100 ~bucket:10 in
  Histogram.add h (-5);
  Histogram.add h 1000;
  check_int "below clamps to first" 1 (Histogram.count h 0);
  check_int "above clamps to last" 1 (Histogram.count h 9)

let test_hist_linear_invalid () =
  check_raises_invalid "empty range" (fun () ->
      Histogram.linear ~lo:10 ~hi:10 ~bucket:1);
  check_raises_invalid "bad bucket" (fun () ->
      Histogram.linear ~lo:0 ~hi:10 ~bucket:0)

let test_hist_log2 () =
  let h = Histogram.log2 ~max_exp:5 in
  Histogram.add h 0;
  (* v+1 = 1 -> bucket 0 *)
  Histogram.add h 1;
  (* v+1 = 2 -> bucket 1 *)
  Histogram.add h 3;
  (* v+1 = 4 -> bucket 2 *)
  Histogram.add h 1000;
  (* overflow -> last *)
  check_int "bucket 0 holds v=0" 1 (Histogram.count h 0);
  check_int "bucket 1" 1 (Histogram.count h 1);
  check_int "bucket 2" 1 (Histogram.count h 2);
  check_int "overflow" 1 (Histogram.count h (Histogram.bucket_count h - 1))

let test_hist_explicit () =
  let h = Histogram.explicit [| 10; 100 |] in
  check_int "buckets = edges+1" 3 (Histogram.bucket_count h);
  Histogram.add h 5;
  Histogram.add h 10;
  Histogram.add h 99;
  Histogram.add h 100;
  check_int "below first edge" 1 (Histogram.count h 0);
  check_int "middle" 2 (Histogram.count h 1);
  check_int "last" 1 (Histogram.count h 2)

let test_hist_add_many_fraction () =
  let h = Histogram.linear ~lo:0 ~hi:10 ~bucket:5 in
  Histogram.add_many h 1 3;
  Histogram.add_many h 7 1;
  check_float "fraction" 0.75 (Histogram.fraction h 0);
  check_float "cumulative" 1.0 (Histogram.cumulative_fraction_below h 1);
  check_float "cumulative first" 0.75 (Histogram.cumulative_fraction_below h 0)

let test_hist_merge () =
  let a = Histogram.linear ~lo:0 ~hi:10 ~bucket:5 in
  let b = Histogram.copy_empty a in
  Histogram.add a 1;
  Histogram.add b 1;
  Histogram.add b 6;
  Histogram.merge a b;
  check_int "merged bucket 0" 2 (Histogram.count a 0);
  check_int "merged bucket 1" 1 (Histogram.count a 1);
  check_int "src untouched" 2 (Histogram.total b);
  let c = Histogram.linear ~lo:0 ~hi:20 ~bucket:5 in
  check_raises_invalid "mismatched merge" (fun () -> Histogram.merge a c)

let test_hist_labels () =
  let h = Histogram.linear ~lo:0 ~hi:10 ~bucket:5 in
  Histogram.add h 2;
  let l = Histogram.to_list h in
  check_int "list length" 2 (List.length l);
  check_int "first count" 1 (snd (List.hd l));
  check_bool "labels nonempty" true
    (List.for_all (fun (s, _) -> String.length s > 0) l)

(* ------------------------------------------------------------------ *)
(* Table and Chart                                                    *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "bb"; "22" ];
  let s = Table.render t in
  check_bool "mentions header" true
    (String.length s > 0
    && String.index_opt s 'n' <> None
    && String.length (String.trim s) > 10)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  check_raises_invalid "wrong arity" (fun () -> Table.add_row t [ "only one" ])

let test_table_cells () =
  check_string "cell_i separators" "1,234,567" (Table.cell_i 1234567);
  check_string "cell_i small" "42" (Table.cell_i 42);
  check_string "cell_f" "3.14" (Table.cell_f 3.14159);
  check_string "cell_f decimals" "3.1416" (Table.cell_f ~decimals:4 3.14159);
  check_string "cell_pct" "12.3%" (Table.cell_pct ~decimals:1 12.345)

let test_chart_bars () =
  let s = Chart.bars [ ("x", 10.0); ("y", 5.0) ] in
  check_bool "bars render" true (String.length s > 0);
  let s = Chart.bars [] in
  check_bool "empty ok" true (String.length s >= 0)

let test_chart_grouped () =
  let s =
    Chart.grouped
      ~group_header:(fun g -> "== " ^ g)
      [ ("g1", [ ("x", 1.0) ]); ("g2", [ ("y", 2.0) ]) ]
  in
  check_bool "grouped render" true (String.length s > 0)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          case "determinism" test_prng_determinism;
          case "seed sensitivity" test_prng_seed_sensitivity;
          case "copy" test_prng_copy;
          case "split independence" test_prng_split_independent;
          case "int bounds" test_prng_int_bounds;
          case "int invalid" test_prng_int_invalid;
          case "int_in" test_prng_int_in;
          case "unit_float" test_prng_unit_float;
          case "float bound" test_prng_float_bound;
          case "bernoulli extremes" test_prng_bernoulli_extremes;
          case "bernoulli rate" test_prng_bernoulli_rate;
          case "choose" test_prng_choose;
          case "choose_weighted" test_prng_choose_weighted;
          case "shuffle permutation" test_prng_shuffle_permutation;
          qcheck prop_shuffle_preserves_multiset;
          qcheck prop_int_uniformish;
        ] );
      ( "dist",
        [
          case "constant" test_dist_constant;
          case "uniform bounds" test_dist_uniform_bounds;
          case "geometric" test_dist_geometric;
          case "zipf mass" test_dist_zipf_mass;
          case "zipf bounds" test_dist_zipf_bounds;
          case "zipf empirical" test_dist_zipf_empirical;
          case "weighted" test_dist_weighted;
          case "scaled" test_dist_scaled;
          case "clamped" test_dist_clamped;
          case "mean_estimate" test_dist_mean_estimate;
        ] );
      ( "stats",
        [
          case "mean" test_stats_mean;
          case "geometric mean" test_stats_geometric_mean;
          case "stddev" test_stats_stddev;
          case "median" test_stats_median;
          case "percentile" test_stats_percentile;
          case "min/max/sum" test_stats_min_max_sum;
          case "normalize" test_stats_normalize;
          case "ratio/pct" test_stats_ratio_pct;
          qcheck prop_percentile_bounds;
          qcheck prop_normalize_sums_to_one;
        ] );
      ( "histogram",
        [
          case "linear" test_hist_linear;
          case "linear clamp" test_hist_linear_clamp;
          case "linear invalid" test_hist_linear_invalid;
          case "log2" test_hist_log2;
          case "explicit" test_hist_explicit;
          case "add_many / fraction" test_hist_add_many_fraction;
          case "merge" test_hist_merge;
          case "labels" test_hist_labels;
        ] );
      ( "table+chart",
        [
          case "render" test_table_render;
          case "arity" test_table_arity;
          case "cells" test_table_cells;
          case "bars" test_chart_bars;
          case "grouped" test_chart_grouped;
        ] );
    ]
