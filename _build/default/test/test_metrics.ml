open Helpers

(* ------------------------------------------------------------------ *)
(* Speedup: the paper's simple execution-time model (Section 5.2)     *)
(* ------------------------------------------------------------------ *)

let test_speedup_constants () =
  check_float "data ref ratio" 0.3 Speedup.data_ref_ratio;
  check_float "data miss rate" 0.05 Speedup.data_miss_rate;
  Alcotest.(check (array int)) "penalties" [| 10; 30; 50 |] Speedup.penalties

let test_speedup_cpi_formula () =
  (* CPI per instruction reference = 1 + m*P + 0.3 * (1 + 0.05*P), the
     last term prorating data accesses onto instruction references. *)
  let penalty = 30 in
  let m = 0.02 in
  let expected = 1.0 +. (m *. 30.0) +. (0.3 *. (1.0 +. (0.05 *. 30.0))) in
  check_close 1e-9 "cpi" expected
    (Speedup.cycles_per_instruction ~inst_miss_rate:m ~penalty)

let test_speedup_zero_miss_rate () =
  let cpi0 = Speedup.cycles_per_instruction ~inst_miss_rate:0.0 ~penalty:50 in
  let cpi1 = Speedup.cycles_per_instruction ~inst_miss_rate:0.01 ~penalty:50 in
  check_bool "misses cost cycles" true (cpi1 > cpi0)

let test_speedup_speed_increase () =
  let s =
    Speedup.speed_increase ~base_miss_rate:0.05 ~opt_miss_rate:0.02 ~penalty:30
  in
  check_bool "positive when optimized is better" true (s > 0.0);
  let zero =
    Speedup.speed_increase ~base_miss_rate:0.03 ~opt_miss_rate:0.03 ~penalty:30
  in
  check_close 1e-9 "zero when equal" 0.0 zero;
  let neg =
    Speedup.speed_increase ~base_miss_rate:0.02 ~opt_miss_rate:0.05 ~penalty:30
  in
  check_bool "negative when optimized is worse" true (neg < 0.0)

let test_speedup_monotone_in_penalty () =
  let s p = Speedup.speed_increase ~base_miss_rate:0.05 ~opt_miss_rate:0.02 ~penalty:p in
  check_bool "higher penalty, higher gain" true (s 50 > s 30 && s 30 > s 10)

let test_speedup_paper_magnitude () =
  (* The paper: miss-rate drops like 4% -> 1.5% yield ~10-25% gains at a
     30-cycle penalty. *)
  let s =
    Speedup.speed_increase ~base_miss_rate:0.04 ~opt_miss_rate:0.015 ~penalty:30
  in
  check_bool "order of 10-25%" true (s > 8.0 && s < 35.0)

(* ------------------------------------------------------------------ *)
(* Missmap (Figures 1 and 14)                                         *)
(* ------------------------------------------------------------------ *)

let test_missmap_by_address () =
  (* Three blocks at known positions; bin width 1024. *)
  let positions = [| 0; 1000; 2048 |] in
  let sizes = [| 16; 32; 16 |] in
  let misses = [| 5; 7; 11 |] in
  let bins = Missmap.by_address ~positions ~sizes ~misses ~bin:1024 in
  check_int "bin 0 holds blocks at 0 and 1000" 12 bins.(0);
  check_int "bin 2 holds the third block" 11 bins.(2);
  check_int "bin 1 empty" 0 bins.(1)

let test_missmap_peaks () =
  let bins = [| 3; 50; 7; 50; 1 |] in
  (match Missmap.peaks bins ~n:2 with
  | [ (i1, c1); (i2, c2) ] ->
      check_int "top counts" 100 (c1 + c2);
      check_bool "indices are the two 50s" true
        (List.sort compare [ i1; i2 ] = [ 1; 3 ])
  | l -> Alcotest.failf "expected 2 peaks, got %d" (List.length l));
  check_close 1e-9 "peak fraction" (100.0 /. 111.0) (Missmap.peak_fraction bins ~n:2)

let test_missmap_peak_fraction_bounds () =
  let bins = [| 1; 2; 3 |] in
  check_close 1e-9 "all bins = 1" 1.0 (Missmap.peak_fraction bins ~n:10);
  check_close 1e-9 "empty" 0.0 (Missmap.peak_fraction [||] ~n:3)

let () =
  Alcotest.run "metrics"
    [
      ( "speedup",
        [
          case "constants" test_speedup_constants;
          case "cpi formula" test_speedup_cpi_formula;
          case "zero miss rate" test_speedup_zero_miss_rate;
          case "speed increase" test_speedup_speed_increase;
          case "monotone in penalty" test_speedup_monotone_in_penalty;
          case "paper magnitude" test_speedup_paper_magnitude;
        ] );
      ( "missmap",
        [
          case "by_address" test_missmap_by_address;
          case "peaks" test_missmap_peaks;
          case "peak fraction bounds" test_missmap_peak_fraction_bounds;
        ] );
    ]
