test/test_cfg.ml: Alcotest Arc Array Block Dominators Graph Helpers List Loops Prng QCheck Routine
