test/test_integration.ml: Alcotest Array Config Context Counters Experiments Helpers Lazy Levels List Model Printexc Profile Program Runner Schedule Seqstat Sequence Spec String System Trace
