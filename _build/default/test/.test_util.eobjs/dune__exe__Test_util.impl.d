test/test_util.ml: Alcotest Array Chart Dist Fun Gen Helpers Histogram List Prng QCheck Stats String Table
