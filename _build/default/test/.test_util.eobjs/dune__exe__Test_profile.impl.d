test/test_profile.ml: Alcotest Arc Arcstat Array Context Graph Hashtbl Helpers Histogram Lazy List Loops Loopstat Popularity Profile Reuse Service Stats Trace
