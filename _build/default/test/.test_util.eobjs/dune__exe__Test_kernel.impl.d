test/test_kernel.ml: Alcotest App_model Arc Array Block Dist Fun Generator Graph Helpers Lazy List Loops Model Names Prng Routine_gen Service Spec String
