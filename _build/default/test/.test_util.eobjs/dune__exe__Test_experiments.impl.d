test/test_experiments.ml: Alcotest Arcstat Array Context Exp_fig12 Exp_fig14 Exp_fig15 Exp_fig16 Exp_fig3 Exp_fig7 Exp_table1 Helpers Lazy Levels List Service Speedup Stats
