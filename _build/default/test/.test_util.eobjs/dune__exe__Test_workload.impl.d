test/test_workload.ml: Alcotest App_model Arc Array Block Engine Graph Helpers Lazy List Model Printf Prng Program Service Stats Trace Walker Workload
