test/test_cache.ml: Alcotest Array Config Counters Gen Graph Helpers List Prng QCheck Replay Sim String System Trace
