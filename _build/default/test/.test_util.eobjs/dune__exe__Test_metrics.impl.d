test/test_metrics.ml: Alcotest Array Helpers List Missmap Speedup
