open Helpers

(* Typed assertions on the paper experiments' compute functions: beyond
   the "every driver runs" smoke test, these pin the structural and
   qualitative properties each table/figure must exhibit even on the
   mini-kernel. *)

let ctx () = Lazy.force small_context

let test_table1 () =
  let rows = Exp_table1.compute (ctx ()) in
  check_int "four rows" 4 (Array.length rows);
  Array.iter
    (fun (r : Exp_table1.row) ->
      check_bool "some code executed" true (r.Exp_table1.executed_bytes > 0);
      check_bool "a strict subset of the kernel" true
        (r.Exp_table1.executed_code_pct > 0.0 && r.Exp_table1.executed_code_pct < 50.0);
      check_close 0.5 "invocation mix sums to 100%" 100.0
        (Stats.sum r.Exp_table1.invocation_pct))
    rows;
  (* TRFD_4 never makes system calls. *)
  let trfd = rows.(0) in
  check_close 1e-6 "TRFD_4 syscall share 0" 0.0
    trfd.Exp_table1.invocation_pct.(Service.index Service.Syscall)

let test_fig3 () =
  let r = Exp_fig3.compute (ctx ()) in
  check_bool "bimodal: deterministic mass dominates" true (r.Exp_fig3.ge_99 > 0.5);
  check_bool "fractions are fractions" true
    (r.Exp_fig3.ge_99 <= 1.0 && r.Exp_fig3.le_01 >= 0.0 && r.Exp_fig3.le_01 <= 1.0);
  let total =
    Array.fold_left (fun acc (b : Arcstat.bin) -> acc + b.Arcstat.count) 0 r.Exp_fig3.bins
  in
  check_bool "bins populated" true (total > 0)

let test_fig7 () =
  let r = Exp_fig7.compute (ctx ()) in
  check_int "ten hot routines" 10 (List.length r.Exp_fig7.top_routines);
  check_bool "short-distance reuse exists" true (r.Exp_fig7.within_1000_pct > 0.0);
  check_bool "within-100 <= within-1000" true
    (r.Exp_fig7.within_100_pct <= r.Exp_fig7.within_1000_pct +. 1e-9);
  check_bool "last-inv share is a percentage" true
    (r.Exp_fig7.last_inv_pct >= 0.0 && r.Exp_fig7.last_inv_pct <= 100.0)

let test_fig12 () =
  let rows = Exp_fig12.compute (ctx ()) in
  Array.iter
    (fun (r : Exp_fig12.row) ->
      check_int "five bars" (Array.length Levels.all) (Array.length r.Exp_fig12.bars);
      let bar level =
        Array.to_list r.Exp_fig12.bars
        |> List.find (fun (b : Exp_fig12.miss_bar) -> b.Exp_fig12.level = level)
      in
      let base = bar Levels.Base in
      check_close 1e-9 "Base normalized to itself" 1.0 base.Exp_fig12.normalized;
      Array.iter
        (fun (b : Exp_fig12.miss_bar) ->
          check_int "breakdown sums to total"
            (b.Exp_fig12.os_self + b.Exp_fig12.os_cross + b.Exp_fig12.app_cross
           + b.Exp_fig12.app_self)
            b.Exp_fig12.total)
        r.Exp_fig12.bars;
      check_bool "OptS below Base" true
        ((bar Levels.OptS).Exp_fig12.normalized < 1.0);
      check_bool "OS refs share is a percentage" true
        (r.Exp_fig12.os_ref_pct > 0.0 && r.Exp_fig12.os_ref_pct <= 100.0))
    rows

let test_fig14 () =
  let results = Exp_fig14.compute (ctx ()) in
  let find level =
    Array.to_list results
    |> List.find (fun (r : Exp_fig14.result) -> r.Exp_fig14.level = level)
  in
  let base = find Levels.Base and opt = find Levels.OptS in
  check_bool "OptS total below Base" true (opt.Exp_fig14.total < base.Exp_fig14.total);
  check_bool "OptS tallest peak below Base's" true
    (opt.Exp_fig14.tallest_peak < base.Exp_fig14.tallest_peak);
  Array.iter
    (fun (r : Exp_fig14.result) ->
      check_int "bins sum to total" r.Exp_fig14.total
        (Array.fold_left ( + ) 0 r.Exp_fig14.bins);
      check_bool "top-5 share sane" true
        (r.Exp_fig14.top5_pct > 0.0 && r.Exp_fig14.top5_pct <= 100.0))
    results

let test_fig15 () =
  let points = Exp_fig15.compute (ctx ()) in
  check_int "4 sizes x 4 workloads" 16 (Array.length points);
  Array.iter
    (fun (p : Exp_fig15.point) ->
      check_bool "Base rate positive" true (p.Exp_fig15.base_pct > 0.0);
      check_bool "OptS below Base" true (p.Exp_fig15.opt_s_pct < p.Exp_fig15.base_pct);
      check_int "three speedups" (Array.length Speedup.penalties)
        (Array.length p.Exp_fig15.speedups);
      (* Speedups grow with the penalty when OptS wins. *)
      if p.Exp_fig15.opt_s_pct < p.Exp_fig15.base_pct then
        check_bool "speedup grows with penalty" true
          (p.Exp_fig15.speedups.(2) >= p.Exp_fig15.speedups.(0)))
    points;
  (* Miss rates fall with cache size for each workload under Base. *)
  let base_of kb w =
    (Array.to_list points
    |> List.find (fun (p : Exp_fig15.point) ->
           p.Exp_fig15.size_kb = kb && p.Exp_fig15.workload = w))
      .Exp_fig15.base_pct
  in
  Array.iter
    (fun w -> check_bool "bigger cache, lower Base rate" true (base_of 32 w < base_of 4 w))
    (Context.workload_names (ctx ()))

let test_fig16 () =
  let c = ctx () in
  let areas = Exp_fig16.scf_area_bytes c in
  check_int "one area per variant" (Array.length Exp_fig16.variants) (Array.length areas);
  (* Lower cut-offs admit more blocks: areas grow monotonically. *)
  let sizes = Array.map snd areas in
  check_int "no-area variant is empty" 0 sizes.(0);
  for i = 1 to Array.length sizes - 2 do
    check_bool "areas grow as the cut-off drops" true (sizes.(i) <= sizes.(i + 1))
  done;
  let rows = Exp_fig16.compute c in
  Array.iter
    (fun (r : Exp_fig16.row) ->
      Array.iter
        (fun (cell : Exp_fig16.cell) ->
          check_bool "every variant beats Base" true (cell.Exp_fig16.normalized < 1.0))
        r.Exp_fig16.cells)
    rows

let () =
  Alcotest.run "experiments"
    [
      ( "paper-computes",
        [
          case "table 1" test_table1;
          case "figure 3" test_fig3;
          case "figure 7" test_fig7;
          case "figure 12" test_fig12;
          case "figure 14" test_fig14;
          case "figure 15" test_fig15;
          case "figure 16" test_fig16;
        ] );
    ]
