open Helpers

let small_ctx () = Lazy.force small_context

(* ------------------------------------------------------------------ *)
(* Address_map                                                        *)
(* ------------------------------------------------------------------ *)

let test_address_map_place () =
  let d = diamond () in
  let m = Address_map.create d.g in
  check_bool "not placed" false (Address_map.is_placed m d.entry);
  Address_map.place m d.entry ~addr:0 ~region:Address_map.Main_seq;
  check_bool "placed" true (Address_map.is_placed m d.entry);
  check_int "addr" 0 (Address_map.addr m d.entry);
  check_bool "region" true (Address_map.region m d.entry = Address_map.Main_seq);
  check_int "extent is end of block" 16 (Address_map.extent m);
  check_int "placed count" 1 (Address_map.placed_count m)

let test_address_map_errors () =
  let d = diamond () in
  let m = Address_map.create d.g in
  Address_map.place m d.entry ~addr:0 ~region:Address_map.Cold;
  check_raises_invalid "double placement" (fun () ->
      Address_map.place m d.entry ~addr:64 ~region:Address_map.Cold);
  check_raises_invalid "negative address" (fun () ->
      Address_map.place m d.a ~addr:(-4) ~region:Address_map.Cold);
  check_raises_invalid "unplaced addr query" (fun () -> Address_map.addr m d.a)

let test_address_map_validate_missing () =
  let d = diamond () in
  let m = Address_map.create d.g in
  Address_map.place m d.entry ~addr:0 ~region:Address_map.Cold;
  match Address_map.validate m with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "validate must reject incomplete maps"

let test_address_map_validate_overlap () =
  let d = diamond () in
  let m = Address_map.create d.g in
  Address_map.place m d.entry ~addr:0 ~region:Address_map.Cold;
  (* entry is 16 bytes; placing the next block at 8 overlaps. *)
  Address_map.place m d.a ~addr:8 ~region:Address_map.Cold;
  Address_map.place m d.b ~addr:100 ~region:Address_map.Cold;
  Address_map.place m d.exit_ ~addr:200 ~region:Address_map.Cold;
  match Address_map.validate m with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "validate must reject overlaps"

let test_address_map_blocks_by_addr () =
  let d = diamond () in
  let m = Address_map.create d.g in
  Address_map.place m d.exit_ ~addr:0 ~region:Address_map.Cold;
  Address_map.place m d.entry ~addr:50 ~region:Address_map.Cold;
  Alcotest.(check (array int)) "sorted by address" [| d.exit_; d.entry |]
    (Address_map.blocks_by_addr m)

let test_address_map_arrays () =
  let d = diamond () in
  let m = Address_map.create d.g in
  Address_map.place m d.entry ~addr:32 ~region:Address_map.Cold;
  let addr = Address_map.addr_array m in
  check_int "addr exported" 32 addr.(d.entry);
  check_int "unplaced exported as -1" (-1) addr.(d.a);
  let bytes = Address_map.bytes_array m in
  check_int "sizes exported" 16 bytes.(d.entry)

(* ------------------------------------------------------------------ *)
(* Base layout                                                        *)
(* ------------------------------------------------------------------ *)

let test_base_layout () =
  let lc = loop_call () in
  let m = Base.layout lc.g ~order:[| lc.callee; lc.caller |] in
  Address_map.validate m;
  check_int "l0 first" 0 (Address_map.addr m lc.l0);
  check_int "l1 second" 16 (Address_map.addr m lc.l1);
  check_int "caller after callee" 32 (Address_map.addr m lc.c0);
  check_int "text order inside routine" 48 (Address_map.addr m lc.c1);
  check_int "extent" (7 * 16) (Address_map.extent m)

let test_base_layout_order_matters () =
  let lc = loop_call () in
  let m = Base.layout lc.g ~order:[| lc.caller; lc.callee |] in
  check_int "caller first now" 0 (Address_map.addr m lc.c0);
  check_int "callee last" (5 * 16) (Address_map.addr m lc.l0)

let test_base_layout_invalid_order () =
  let lc = loop_call () in
  check_raises_invalid "not a permutation" (fun () ->
      Base.layout lc.g ~order:[| lc.caller; lc.caller |]);
  check_raises_invalid "wrong length" (fun () ->
      Base.layout lc.g ~order:[| lc.caller |])

(* ------------------------------------------------------------------ *)
(* Schedule                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_paper () =
  let passes = Schedule.paper in
  check_bool "non-empty" true (List.length passes > 10);
  (match passes with
  | first :: _ ->
      check_bool "first seed is interrupt" true
        (first.Schedule.service = Service.Interrupt);
      check_close 1e-9 "ExecThresh 1.4%" 0.014 first.Schedule.exec_thresh;
      check_close 1e-9 "BranchThresh 40%" 0.4 first.Schedule.branch_thresh
  | [] -> Alcotest.fail "empty schedule");
  Array.iter
    (fun s ->
      let mine = List.filter (fun p -> p.Schedule.service = s) passes in
      check_bool "every seed appears" true (mine <> []);
      let last = List.nth mine (List.length mine - 1) in
      check_close 1e-9 "final ExecThresh 0" 0.0 last.Schedule.exec_thresh;
      check_close 1e-9 "final BranchThresh 0" 0.0 last.Schedule.branch_thresh;
      ignore
        (List.fold_left
           (fun prev p ->
             check_bool "ExecThresh decreasing" true
               (p.Schedule.exec_thresh <= prev +. 1e-12);
             p.Schedule.exec_thresh)
           1.0 mine))
    Service.all

let test_schedule_uniform () =
  (* Application schedules have a single seed: one pass per level. *)
  let passes = Schedule.uniform ~levels:[ (0.01, 0.1); (0.0, 0.0) ] in
  check_int "one pass per level" 2 (List.length passes)

(* ------------------------------------------------------------------ *)
(* Sequence construction: the paper's Figure 9 worked example          *)
(* ------------------------------------------------------------------ *)

let test_sequence_figure9_golden () =
  let r = Exp_fig9.compute () in
  Alcotest.(check (list string))
    "pass (0.01, 0.1) places blocks exactly as the paper"
    Exp_fig9.expected_pass1 r.Exp_fig9.pass1;
  Alcotest.(check (list string))
    "pass (0, 0) places the cold leftovers"
    Exp_fig9.expected_pass2 r.Exp_fig9.pass2

let test_sequence_no_duplicates_kernel () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let g = Context.os_graph ctx in
  let seqs =
    Sequence.build ~graph:g ~profile:ctx.Context.avg_os_profile
      ~seed_entry:(fun c -> (Model.seed_for model c).Model.entry)
      ~schedule:Schedule.paper ()
  in
  let seen = Array.make (Graph.block_count g) false in
  List.iter
    (fun (s : Sequence.t) ->
      Array.iter
        (fun b ->
          if seen.(b) then Alcotest.failf "block %d appears in two sequences" b;
          seen.(b) <- true)
        s.Sequence.blocks)
    seqs;
  List.iter
    (fun (s : Sequence.t) ->
      let sum =
        Array.fold_left
          (fun acc b -> acc + (Graph.block g b).Block.size)
          0 s.Sequence.blocks
      in
      check_int "sequence byte count" sum s.Sequence.bytes)
    seqs;
  check_int "total bytes"
    (List.fold_left (fun acc (s : Sequence.t) -> acc + s.Sequence.bytes) 0 seqs)
    (Sequence.total_bytes seqs);
  let covered = Sequence.covered g seqs in
  Array.iteri
    (fun b s -> check_bool "covered agrees with membership" s covered.(b))
    seen

let test_sequence_threshold_excludes_cold () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let g = Context.os_graph ctx in
  let p = ctx.Context.avg_os_profile in
  let seqs =
    Sequence.build ~graph:g ~profile:p
      ~seed_entry:(fun c -> (Model.seed_for model c).Model.entry)
      ~schedule:
        (List.map
           (fun s ->
             { Schedule.service = s; exec_thresh = 0.001; branch_thresh = 0.1 })
           (Array.to_list Service.all))
      ()
  in
  let seed_entries =
    Array.to_list
      (Array.map (fun s -> (Model.seed_for model s).Model.entry) Service.all)
  in
  List.iter
    (fun (s : Sequence.t) ->
      Array.iter
        (fun b ->
          (* Seeds themselves are emitted unconditionally. *)
          if Profile.block_fraction p b < 0.001 && not (List.mem b seed_entries)
          then Alcotest.failf "cold block %d admitted above ExecThresh" b)
        s.Sequence.blocks)
    seqs

let test_sequence_seed_first () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let g = Context.os_graph ctx in
  let entry = (Model.seed_for model Service.Interrupt).Model.entry in
  let seqs =
    Sequence.build ~graph:g ~profile:ctx.Context.avg_os_profile
      ~seed_entry:(fun c -> (Model.seed_for model c).Model.entry)
      ~schedule:Schedule.paper ()
  in
  match seqs with
  | first :: _ ->
      check_int "the first sequence starts at the interrupt seed" entry
        first.Sequence.blocks.(0)
  | [] -> Alcotest.fail "no sequences built"

(* ------------------------------------------------------------------ *)
(* SelfConfFree selection                                             *)
(* ------------------------------------------------------------------ *)

(* The loop_call profile again: 10 invocations, 3 iterations each. *)
let scf_profile (lc : loop_call) =
  let arcs b = Array.to_list (Graph.out_arcs lc.g b) in
  let arc_between src dst =
    List.find (fun a -> (Graph.arc lc.g a).Arc.dst = dst) (arcs src)
  in
  profile_of lc.g
    [
      (lc.c0, 10.0); (lc.c1, 30.0); (lc.c2, 30.0); (lc.c3, 30.0); (lc.c4, 10.0);
      (lc.l0, 30.0); (lc.l1, 30.0);
    ]
    [
      (arc_between lc.c0 lc.c1, 10.0);
      (arc_between lc.c1 lc.c2, 30.0);
      (arc_between lc.c2 lc.c3, 30.0);
      (lc.back_edge, 20.0);
      (arc_between lc.c3 lc.c4, 10.0);
      (arc_between lc.l0 lc.l1, 30.0);
    ]

let test_scf_loop_discount () =
  let lc = loop_call () in
  let p = scf_profile lc in
  let loops = Loops.find lc.g in
  (* No invocation data: the cutoff is a fraction of the adjusted total
     (110); the callee blocks (30/110 each) dominate because loop bodies
     are discounted to 10. *)
  let hot = Scf.select ~graph:lc.g ~profile:p ~loops ~cutoff:0.25 in
  check_bool "only the callee blocks qualify" true
    (List.sort compare hot = List.sort compare [ lc.l0; lc.l1 ]);
  let all = Scf.select ~graph:lc.g ~profile:p ~loops ~cutoff:0.05 in
  check_int "everything qualifies at 5%" 7 (List.length all);
  (match all with
  | first :: _ ->
      check_bool "most popular first" true (first = lc.l0 || first = lc.l1)
  | [] -> Alcotest.fail "empty");
  check_int "bytes" 32 (Scf.bytes lc.g hot)

let test_scf_invocation_relative () =
  let lc = loop_call () in
  let p = scf_profile lc in
  p.Profile.invocations <- 10.0;
  let loops = Loops.find lc.g in
  (* Per-invocation rates: c0/c4 = 1, loop body adjusted = 1, callee = 3. *)
  let hot = Scf.select ~graph:lc.g ~profile:p ~loops ~cutoff:2.0 in
  check_bool "only callee reaches 2 per invocation" true
    (List.sort compare hot = List.sort compare [ lc.l0; lc.l1 ]);
  let every = Scf.select ~graph:lc.g ~profile:p ~loops ~cutoff:0.9 in
  check_int "all blocks execute about once per invocation" 7 (List.length every)

let test_scf_kernel_area_size () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let hot =
    Scf.select ~graph:g ~profile:ctx.Context.avg_os_profile
      ~loops:(Context.os_loops ctx) ~cutoff:0.5
  in
  let bytes = Scf.bytes g hot in
  check_bool "default cutoff yields a usable area" true
    (bytes > 100 && bytes < 4096)

(* ------------------------------------------------------------------ *)
(* Opt layouts                                                        *)
(* ------------------------------------------------------------------ *)

let os_opt ?(params = Opt.params ()) ?(extract_loops = false) ctx =
  let model = ctx.Context.model in
  Opt.os_layout ~model ~profile:ctx.Context.avg_os_profile
    ~loops:(Context.os_loops ctx)
    { params with Opt.extract_loops }

let test_opt_s_valid_and_regions () =
  let ctx = small_ctx () in
  let r = os_opt ctx in
  let g = Context.os_graph ctx in
  Address_map.validate r.Opt.map;
  check_int "every block placed" (Graph.block_count g)
    (Address_map.placed_count r.Opt.map);
  check_bool "scf area non-empty" true (r.Opt.scf_bytes > 0);
  List.iter
    (fun b ->
      check_bool "scf block below scf_bytes" true
        (Address_map.addr r.Opt.map b < r.Opt.scf_bytes);
      check_bool "scf region" true
        (Address_map.region r.Opt.map b = Address_map.Self_conf_free))
    r.Opt.scf_blocks;
  check_int "scf bytes consistent" (Scf.bytes g r.Opt.scf_blocks) r.Opt.scf_bytes

let test_opt_s_holes_cold_only () =
  let ctx = small_ctx () in
  let r = os_opt ctx in
  let g = Context.os_graph ctx in
  let cache = (Opt.params ()).Opt.cache_size in
  let hole = r.Opt.scf_bytes in
  Graph.iter_blocks g (fun blk ->
      let b = blk.Block.id in
      let addr = Address_map.addr r.Opt.map b in
      let chunk = addr / cache in
      let off = addr mod cache in
      if chunk >= 1 && off < hole then
        match Address_map.region r.Opt.map b with
        | Address_map.Cold -> ()
        | region ->
            Alcotest.failf "hot block %d (%s) placed inside a hole" b
              (Address_map.region_to_string region))

let test_opt_s_hot_sequences_early () =
  let ctx = small_ctx () in
  let r = os_opt ctx in
  let g = Context.os_graph ctx in
  let sum_main = ref 0.0
  and n_main = ref 0
  and sum_other = ref 0.0
  and n_other = ref 0 in
  Graph.iter_blocks g (fun blk ->
      let b = blk.Block.id in
      match Address_map.region r.Opt.map b with
      | Address_map.Main_seq ->
          sum_main := !sum_main +. float_of_int (Address_map.addr r.Opt.map b);
          incr n_main
      | Address_map.Other_seq ->
          sum_other := !sum_other +. float_of_int (Address_map.addr r.Opt.map b);
          incr n_other
      | Address_map.Self_conf_free | Address_map.Loop_area | Address_map.Cold -> ());
  check_bool "main sequences exist" true (!n_main > 0);
  check_bool "other sequences exist" true (!n_other > 0);
  check_bool "main sequences placed lower" true
    (!sum_main /. float_of_int !n_main < !sum_other /. float_of_int !n_other)

let test_opt_l_extracts_loops () =
  let ctx = small_ctx () in
  let r = os_opt ~extract_loops:true ctx in
  Address_map.validate r.Opt.map;
  check_bool "loop blocks extracted" true (r.Opt.loop_blocks <> []);
  List.iter
    (fun b ->
      check_bool "loop region" true
        (Address_map.region r.Opt.map b = Address_map.Loop_area))
    r.Opt.loop_blocks

let test_opt_no_scf () =
  let ctx = small_ctx () in
  let r = os_opt ~params:(Opt.params ~scf_cutoff:None ()) ctx in
  Address_map.validate r.Opt.map;
  check_int "no scf blocks" 0 (List.length r.Opt.scf_blocks);
  check_int "no scf bytes" 0 r.Opt.scf_bytes

let test_opt_app_layout () =
  let ctx = small_ctx () in
  let app = (snd ctx.Context.pairs.(0)).Program.apps.(0) in
  let profile = ctx.Context.avg_app_profile app in
  let r = Opt.app_layout ~app ~profile (Opt.params ()) in
  Address_map.validate r.Opt.map;
  check_int "no scf area for applications" 0 r.Opt.scf_bytes;
  let entry = Graph.entry_of app.App_model.graph app.App_model.main in
  check_bool "main entry at the half-cache offset" true
    (Address_map.addr r.Opt.map entry >= 4096)

let test_opt_app_stagger () =
  let ctx = small_ctx () in
  let app = (snd ctx.Context.pairs.(0)).Program.apps.(0) in
  let profile = ctx.Context.avg_app_profile app in
  let a = Opt.app_layout ~app ~profile ~stagger:0 (Opt.params ()) in
  let b = Opt.app_layout ~app ~profile ~stagger:1 (Opt.params ()) in
  let entry = Graph.entry_of app.App_model.graph app.App_model.main in
  check_bool "staggered images differ" true
    (Address_map.addr a.Opt.map entry <> Address_map.addr b.Opt.map entry)

(* ------------------------------------------------------------------ *)
(* Chang-Hwu                                                          *)
(* ------------------------------------------------------------------ *)

let test_chang_hwu_intra_order () =
  let lc = loop_call () in
  let p = scf_profile lc in
  let order = Chang_hwu.intra_routine_order lc.g p (Graph.routine lc.g lc.caller) in
  check_int "all blocks present" 5 (List.length order);
  (match order with
  | first :: _ -> check_int "entry first" lc.c0 first
  | [] -> Alcotest.fail "empty order");
  check_int "no duplicates" 5 (List.length (List.sort_uniq compare order))

let test_chang_hwu_callee_follows_caller () =
  let lc = loop_call () in
  let p = scf_profile lc in
  let order = Chang_hwu.routine_order lc.g p in
  check_bool "caller then callee" true (order = [ lc.caller; lc.callee ])

let test_chang_hwu_layout_valid () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let m = Chang_hwu.layout g ctx.Context.avg_os_profile in
  Address_map.validate m;
  check_int "all blocks placed" (Graph.block_count g) (Address_map.placed_count m)

let test_chang_hwu_separates_cold () =
  let d = diamond () in
  let p =
    profile_of d.g
      [ (d.entry, 10.0); (d.a, 10.0); (d.exit_, 10.0) ]
      [ (d.arc_ea, 10.0); (d.arc_ax, 10.0) ]
  in
  let order = Chang_hwu.intra_routine_order d.g p (Graph.routine d.g d.routine) in
  match List.rev order with
  | last :: _ -> check_int "unexecuted block last" d.b last
  | [] -> Alcotest.fail "empty order"

(* ------------------------------------------------------------------ *)
(* Call_opt (Section 4.4)                                             *)
(* ------------------------------------------------------------------ *)

let test_call_opt_valid () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let r, stats = Call_opt.layout ~model ~profile:ctx.Context.avg_os_profile () in
  Address_map.validate r.Opt.map;
  check_bool "matrix routines bounded" true (stats.Call_opt.matrix_routines <= 50);
  if stats.Call_opt.extracted_blocks > 0 then begin
    let g = Context.os_graph ctx in
    let extracted = ref 0 in
    Graph.iter_blocks g (fun blk ->
        if Address_map.region r.Opt.map blk.Block.id = Address_map.Loop_area then
          incr extracted);
    check_bool "loop-area blocks exist" true (!extracted > 0)
  end

let test_call_opt_max_matrix () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let _, stats =
    Call_opt.layout ~model ~profile:ctx.Context.avg_os_profile
      ~max_matrix_routines:3 ()
  in
  check_bool "matrix capped" true (stats.Call_opt.matrix_routines <= 3)

(* ------------------------------------------------------------------ *)
(* Program_layout                                                     *)
(* ------------------------------------------------------------------ *)

let test_program_layout_levels () =
  let ctx = small_ctx () in
  Array.iter
    (fun level ->
      let layouts = Levels.build ctx level in
      check_int "one layout per workload" (Context.workload_count ctx)
        (Array.length layouts);
      Array.iter
        (fun (l : Program_layout.t) ->
          Address_map.validate l.Program_layout.os_map;
          Array.iter Address_map.validate l.Program_layout.app_maps)
        layouts)
    Levels.all

let test_program_layout_code_map () =
  let ctx = small_ctx () in
  let layouts = Levels.build ctx Levels.Base in
  let with_apps =
    Array.to_list layouts
    |> List.find (fun (l : Program_layout.t) ->
           Array.length l.Program_layout.app_maps > 0)
  in
  let cm = Program_layout.code_map with_apps in
  check_int "one address table per image"
    (1 + Array.length with_apps.Program_layout.app_maps)
    (Array.length cm.Replay.addr);
  let os_min = Array.fold_left min max_int cm.Replay.addr.(0) in
  check_int "OS at address 0" 0 os_min;
  let app_min = Array.fold_left min max_int cm.Replay.addr.(1) in
  check_bool "apps in their own region" true
    (app_min >= Program_layout.app_region_base)

let test_program_layout_os_loops_memoized () =
  let ctx = small_ctx () in
  let model = ctx.Context.model in
  let a = Program_layout.os_loops model in
  let b = Program_layout.os_loops model in
  check_bool "same physical list" true (a == b)

let () =
  Alcotest.run "layout"
    [
      ( "address_map",
        [
          case "place" test_address_map_place;
          case "errors" test_address_map_errors;
          case "validate missing" test_address_map_validate_missing;
          case "validate overlap" test_address_map_validate_overlap;
          case "blocks_by_addr" test_address_map_blocks_by_addr;
          case "arrays" test_address_map_arrays;
        ] );
      ( "base",
        [
          case "layout" test_base_layout;
          case "order matters" test_base_layout_order_matters;
          case "invalid order" test_base_layout_invalid_order;
        ] );
      ( "schedule",
        [ case "paper" test_schedule_paper; case "uniform" test_schedule_uniform ] );
      ( "sequence",
        [
          case "figure 9 golden" test_sequence_figure9_golden;
          case "no duplicates (kernel)" test_sequence_no_duplicates_kernel;
          case "threshold excludes cold" test_sequence_threshold_excludes_cold;
          case "seed first" test_sequence_seed_first;
        ] );
      ( "scf",
        [
          case "loop discount" test_scf_loop_discount;
          case "invocation-relative" test_scf_invocation_relative;
          case "kernel area size" test_scf_kernel_area_size;
        ] );
      ( "opt",
        [
          case "OptS valid, regions" test_opt_s_valid_and_regions;
          case "holes hold only cold code" test_opt_s_holes_cold_only;
          case "hot sequences early" test_opt_s_hot_sequences_early;
          case "OptL extracts loops" test_opt_l_extracts_loops;
          case "no SCF" test_opt_no_scf;
          case "app layout" test_opt_app_layout;
          case "app stagger" test_opt_app_stagger;
        ] );
      ( "chang_hwu",
        [
          case "intra-routine order" test_chang_hwu_intra_order;
          case "callee follows caller" test_chang_hwu_callee_follows_caller;
          case "layout valid" test_chang_hwu_layout_valid;
          case "cold code last" test_chang_hwu_separates_cold;
        ] );
      ( "call_opt",
        [
          case "valid" test_call_opt_valid;
          case "matrix cap" test_call_opt_max_matrix;
        ] );
      ( "program_layout",
        [
          case "levels" test_program_layout_levels;
          case "code map" test_program_layout_code_map;
          case "loop memoization" test_program_layout_os_loops_memoized;
        ] );
    ]
