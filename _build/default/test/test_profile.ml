open Helpers

let small_ctx () = Lazy.force small_context

(* A profile over the loop_call fixture: the caller is invoked 10 times,
   the loop runs 3 iterations per invocation, the callee is entered once
   per iteration. *)
let loop_profile (lc : loop_call) =
  let inv = 10.0 and iters = 3.0 in
  let body = inv *. iters in
  let arcs b = Array.to_list (Graph.out_arcs lc.g b) in
  let arc_between src dst =
    List.find (fun a -> (Graph.arc lc.g a).Arc.dst = dst) (arcs src)
  in
  profile_of lc.g
    [
      (lc.c0, inv); (lc.c1, body); (lc.c2, body); (lc.c3, body); (lc.c4, inv);
      (lc.l0, body); (lc.l1, body);
    ]
    [
      (arc_between lc.c0 lc.c1, inv);
      (arc_between lc.c1 lc.c2, body);
      (arc_between lc.c2 lc.c3, body);
      (lc.back_edge, inv *. (iters -. 1.0));
      (arc_between lc.c3 lc.c4, inv);
      (arc_between lc.l0 lc.l1, body);
    ]

(* ------------------------------------------------------------------ *)
(* Profile                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_fractions () =
  let lc = loop_call () in
  let p = loop_profile lc in
  check_bool "executed" true (Profile.executed p lc.c0);
  check_close 1e-9 "block fraction" (10.0 /. p.Profile.total_blocks)
    (Profile.block_fraction p lc.c0);
  let total =
    List.fold_left
      (fun acc b -> acc +. Profile.block_fraction p b)
      0.0
      [ lc.c0; lc.c1; lc.c2; lc.c3; lc.c4; lc.l0; lc.l1 ]
  in
  check_close 1e-9 "fractions sum to 1" 1.0 total

let test_profile_arc_probability () =
  let lc = loop_call () in
  let p = loop_profile lc in
  check_close 1e-9 "back edge 2/3" (2.0 /. 3.0)
    (Profile.arc_probability p lc.g lc.back_edge)

let test_profile_routine_invocations () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let inv = Profile.routine_invocations p lc.g in
  check_close 1e-9 "caller invoked 10 times" 10.0 inv.(lc.caller);
  check_close 1e-9 "callee invoked 30 times" 30.0 inv.(lc.callee)

let test_profile_executed_counts () =
  let lc = loop_call () in
  let p = loop_profile lc in
  check_int "routines" 2 (Profile.executed_routine_count p lc.g);
  check_int "blocks" 7 (Profile.executed_block_count p);
  check_int "bytes" (7 * 16) (Profile.executed_bytes p lc.g);
  check_close 1e-9 "dynamic words"
    (p.Profile.total_blocks *. 4.0)
    (Profile.dynamic_words p lc.g)

let test_profile_scale_average () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let s = Profile.scale_to p 1000.0 in
  check_close 1e-9 "scaled total" 1000.0 s.Profile.total_blocks;
  check_close 1e-9 "fractions preserved"
    (Profile.block_fraction p lc.c1)
    (Profile.block_fraction s lc.c1);
  let q = Profile.scale_to p 500.0 in
  let avg = Profile.average [ s; q ] in
  check_close 1e-9 "average keeps relative shape"
    (Profile.block_fraction p lc.c1)
    (Profile.block_fraction avg lc.c1)

let test_profile_average_invalid () =
  check_raises_invalid "empty average" (fun () -> ignore (Profile.average []))

let test_profile_accumulate () =
  let lc = loop_call () in
  let a = loop_profile lc and b = loop_profile lc in
  Profile.accumulate a b;
  check_close 1e-9 "doubled" 20.0 a.Profile.block.(lc.c0)

let test_profile_collect_consistency () =
  let ctx = small_ctx () in
  let p = ctx.Context.os_profiles.(0) in
  let g = Context.os_graph ctx in
  let sum = Array.fold_left ( +. ) 0.0 p.Profile.block in
  check_close 1e-6 "total_blocks matches sum" sum p.Profile.total_blocks;
  check_bool "invocations recorded" true (p.Profile.invocations > 0.0);
  Graph.iter_arcs g (fun a ->
      if p.Profile.arc.(a.Arc.id) > 0.0 then begin
        if not (Profile.executed p a.Arc.src) then
          Alcotest.failf "arc %d weighted but source unexecuted" a.Arc.id;
        if Profile.arc_probability p g a.Arc.id > 1.0 +. 1e-9 then
          Alcotest.failf "arc %d probability > 1" a.Arc.id
      end)

(* ------------------------------------------------------------------ *)
(* Arcstat (Figure 3)                                                 *)
(* ------------------------------------------------------------------ *)

let test_arcstat_bins () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let bins = Arcstat.distribution p lc.g () in
  let total = Array.fold_left (fun acc (b : Arcstat.bin) -> acc + b.count) 0 bins in
  check_bool "some arcs counted" true (total > 0);
  Array.iter
    (fun (b : Arcstat.bin) -> check_bool "bins ordered" true (b.Arcstat.lo <= b.hi))
    bins

let test_arcstat_fractions () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let bins = Arcstat.distribution p lc.g () in
  let hi = Arcstat.fraction_at_least bins 0.99 in
  let lo = Arcstat.fraction_at_most bins 0.01 in
  check_bool "fractions in range" true
    (hi >= 0.0 && hi <= 1.0 && lo >= 0.0 && lo <= 1.0);
  (* The deterministic arcs (probability 1) dominate this fixture. *)
  check_bool "deterministic arcs detected" true (hi > 0.4)

let test_arcstat_bimodal_kernel () =
  (* The paper's Figure 3: most arcs have probability >= 0.99 or <= 0.01.
     Our synthetic kernel must reproduce the bimodality. *)
  let ctx = small_ctx () in
  let p = ctx.Context.avg_os_profile in
  let bins = Arcstat.distribution p (Context.os_graph ctx) () in
  let hi = Arcstat.fraction_at_least bins 0.99 in
  check_bool "most arcs near-deterministic" true (hi > 0.5)

(* ------------------------------------------------------------------ *)
(* Popularity (Figures 6 and 8)                                       *)
(* ------------------------------------------------------------------ *)

let test_popularity_series () =
  let ctx = small_ctx () in
  let p = ctx.Context.avg_os_profile in
  let series = Popularity.routine_series p (Context.os_graph ctx) in
  check_close 1e-6 "sums to 100" 100.0 (Stats.sum series);
  let sorted = Array.copy series in
  Array.sort (fun a b -> compare b a) sorted;
  Alcotest.(check (array (float 1e-12))) "descending" sorted series

let test_popularity_top_routines () =
  let ctx = small_ctx () in
  let p = ctx.Context.avg_os_profile in
  let g = Context.os_graph ctx in
  let top = Popularity.top_routines p g ~n:10 in
  check_int "ten routines" 10 (List.length top);
  let counts = List.map snd top in
  check_bool "descending" true
    (List.for_all2 ( >= ) counts (List.tl counts @ [ 0.0 ]))

let test_popularity_deloop () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let loops = Loops.find lc.g in
  let f = Popularity.deloop_factors lc.g p loops in
  check_close 1e-9 "loop body discounted by 3" 3.0 f.(lc.c1);
  check_close 1e-9 "loop body discounted by 3 (c2)" 3.0 f.(lc.c2);
  check_close 1e-9 "non-loop block factor 1" 1.0 f.(lc.c0);
  check_close 1e-9 "callee factor 1 (not part of the natural loop)" 1.0 f.(lc.l0)

let test_popularity_count_above () =
  check_int "count above" 2 (Popularity.count_above [| 5.0; 3.0; 1.0 |] ~threshold:2.0);
  check_int "none above" 0 (Popularity.count_above [||] ~threshold:1.0)

(* ------------------------------------------------------------------ *)
(* Loopstat (Table 3, Figures 4-5)                                    *)
(* ------------------------------------------------------------------ *)

let test_loopstat_iterations () =
  let lc = loop_call () in
  let p = loop_profile lc in
  match Loopstat.analyze lc.g p (Loops.find lc.g) with
  | [ info ] ->
      check_close 1e-9 "10 invocations" 10.0 info.Loopstat.invocations;
      check_close 1e-9 "3 iterations per invocation" 3.0
        info.Loopstat.iterations_per_invocation;
      check_int "executed body bytes" 48 info.Loopstat.executed_body_bytes;
      check_int "with callees adds the callee" (48 + 32)
        info.Loopstat.executed_bytes_with_callees;
      check_close 1e-9 "dynamic words" (30.0 *. 3.0 *. 4.0) info.Loopstat.dynamic_words
  | l -> Alcotest.failf "expected one loop info, got %d" (List.length l)

let test_loopstat_split () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let infos = Loopstat.analyze lc.g p (Loops.find lc.g) in
  let without, with_calls = Loopstat.split_by_calls infos in
  check_int "no call-free loops" 0 (List.length without);
  check_int "one loop with calls" 1 (List.length with_calls)

let test_loopstat_shares () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let loops = Loops.find lc.g in
  (* The only loop calls a procedure, so the without-calls shares are 0. *)
  check_close 1e-9 "dynamic share" 0.0
    (Loopstat.dynamic_share_without_calls lc.g p loops);
  check_close 1e-9 "static executed share" 0.0
    (Loopstat.static_executed_share_without_calls lc.g p loops);
  check_close 1e-9 "static share" 0.0
    (Loopstat.static_share_without_calls ~profile:p lc.g loops)

let test_loopstat_shares_kernel () =
  let ctx = small_ctx () in
  let g = Context.os_graph ctx in
  let p = ctx.Context.avg_os_profile in
  let loops = Context.os_loops ctx in
  let dyn = Loopstat.dynamic_share_without_calls g p loops in
  check_bool "dynamic share in (0,1)" true (dyn > 0.0 && dyn < 1.0);
  let st = Loopstat.static_share_without_calls ~profile:p g loops in
  check_bool "executed static share small" true (st > 0.0 && st < 0.05);
  let st_all = Loopstat.static_share_without_calls g loops in
  check_bool "unrestricted share includes unexecuted loops" true (st_all >= st)

let test_loopstat_reachable () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let reach = Loopstat.reachable_routines lc.g p lc.caller in
  check_bool "includes itself" true (Hashtbl.mem reach lc.caller);
  check_bool "includes callee" true (Hashtbl.mem reach lc.callee);
  let reach_leaf = Loopstat.reachable_routines lc.g p lc.callee in
  check_bool "callee reaches only itself" false (Hashtbl.mem reach_leaf lc.caller)

let test_loopstat_descendant_bytes () =
  let lc = loop_call () in
  let p = loop_profile lc in
  let bytes = Loopstat.executed_routine_bytes_with_descendants lc.g p in
  check_int "callee alone" 32 bytes.(lc.callee);
  check_int "caller includes callee once" ((5 * 16) + 32) bytes.(lc.caller)

(* ------------------------------------------------------------------ *)
(* Reuse (Figure 7)                                                   *)
(* ------------------------------------------------------------------ *)

let test_reuse_distances () =
  let lc = loop_call () in
  (* One invocation in which the callee is entered twice, separated by a
     known number of words, then never again. *)
  let t = Trace.create () in
  Trace.append t (Trace.Invocation_start Service.Interrupt);
  List.iter
    (fun b -> Trace.append t (Trace.Exec { image = 0; block = b }))
    [ lc.c0; lc.c1; lc.c2; lc.l0; lc.l1; lc.c3; lc.c1; lc.c2; lc.l0; lc.l1; lc.c3; lc.c4 ];
  Trace.append t Trace.Invocation_end;
  let r = Reuse.measure ~trace:t ~graph:lc.g ~routines:[ lc.callee ] () in
  check_int "two calls" 2 r.Reuse.calls;
  check_int "one last-invocation call" 1 r.Reuse.last_invocation;
  (* Distance between the two l0 executions: l0,l1,c3,c1,c2 = 5 blocks of
     16 bytes = 20 words; it lands in the [10,32) bucket (index 1). *)
  check_int "distance bucketed" 1 (Histogram.count r.Reuse.histogram 1);
  check_int "single distance sample" 1 (Histogram.total r.Reuse.histogram)

let test_reuse_resets_across_invocations () =
  let lc = loop_call () in
  let t = Trace.create () in
  let one_invocation () =
    Trace.append t (Trace.Invocation_start Service.Syscall);
    List.iter
      (fun b -> Trace.append t (Trace.Exec { image = 0; block = b }))
      [ lc.c0; lc.c1; lc.c2; lc.l0; lc.l1; lc.c3; lc.c4 ];
    Trace.append t Trace.Invocation_end
  in
  one_invocation ();
  one_invocation ();
  let r = Reuse.measure ~trace:t ~graph:lc.g ~routines:[ lc.callee ] () in
  check_int "two calls" 2 r.Reuse.calls;
  check_int "no cross-invocation distance" 0 (Histogram.total r.Reuse.histogram);
  check_int "both calls are last in their invocation" 2 r.Reuse.last_invocation

let () =
  Alcotest.run "profile"
    [
      ( "profile",
        [
          case "fractions" test_profile_fractions;
          case "arc probability" test_profile_arc_probability;
          case "routine invocations" test_profile_routine_invocations;
          case "executed counts" test_profile_executed_counts;
          case "scale/average" test_profile_scale_average;
          case "average invalid" test_profile_average_invalid;
          case "accumulate" test_profile_accumulate;
          case "collect consistency" test_profile_collect_consistency;
        ] );
      ( "arcstat",
        [
          case "bins" test_arcstat_bins;
          case "fractions" test_arcstat_fractions;
          case "kernel bimodality" test_arcstat_bimodal_kernel;
        ] );
      ( "popularity",
        [
          case "series" test_popularity_series;
          case "top routines" test_popularity_top_routines;
          case "deloop factors" test_popularity_deloop;
          case "count_above" test_popularity_count_above;
        ] );
      ( "loopstat",
        [
          case "iterations" test_loopstat_iterations;
          case "split by calls" test_loopstat_split;
          case "shares (fixture)" test_loopstat_shares;
          case "shares (kernel)" test_loopstat_shares_kernel;
          case "reachable routines" test_loopstat_reachable;
          case "descendant bytes" test_loopstat_descendant_bytes;
        ] );
      ( "reuse",
        [
          case "distances" test_reuse_distances;
          case "resets across invocations" test_reuse_resets_across_invocations;
        ] );
    ]
