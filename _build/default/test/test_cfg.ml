open Helpers

(* ------------------------------------------------------------------ *)
(* Block                                                              *)
(* ------------------------------------------------------------------ *)

let test_block_words () =
  let d = diamond () in
  let b = Graph.block d.g d.entry in
  check_int "16 bytes = 4 words" 4 (Block.instruction_words b);
  check_int "word size" 4 Block.word_bytes;
  let small = { b with Block.size = 2 } in
  check_int "at least 1 word" 1 (Block.instruction_words small)

let test_block_ends_in_call () =
  let lc = loop_call () in
  check_bool "call block" true (Block.ends_in_call (Graph.block lc.g lc.c2));
  check_bool "plain block" false (Block.ends_in_call (Graph.block lc.g lc.c0))

(* ------------------------------------------------------------------ *)
(* Graph builder and queries                                          *)
(* ------------------------------------------------------------------ *)

let test_graph_counts () =
  let d = diamond () in
  check_int "blocks" 4 (Graph.block_count d.g);
  check_int "arcs" 4 (Graph.arc_count d.g);
  check_int "routines" 1 (Graph.routine_count d.g)

let test_graph_entry () =
  let d = diamond () in
  check_int "first block is entry" d.entry (Graph.entry_of d.g d.routine)

let test_graph_out_in_arcs () =
  let d = diamond () in
  let outs = Graph.out_arcs d.g d.entry in
  check_int "entry has 2 out arcs" 2 (Array.length outs);
  check_int "insertion order" d.arc_ea outs.(0);
  check_int "insertion order 2" d.arc_eb outs.(1);
  check_int "exit in-arcs" 2 (Array.length (Graph.in_arcs d.g d.exit_));
  check_int "exit out-arcs" 0 (Array.length (Graph.out_arcs d.g d.exit_))

let test_graph_is_exit () =
  let d = diamond () in
  check_bool "exit block" true (Graph.is_exit d.g d.exit_);
  check_bool "entry not exit" false (Graph.is_exit d.g d.entry)

let test_graph_code_bytes () =
  let d = diamond () in
  check_int "code bytes" (16 + 24 + 8 + 12) (Graph.code_bytes d.g)

let test_graph_routine_of_block () =
  let lc = loop_call () in
  check_int "caller block" lc.caller (Graph.routine_of_block lc.g lc.c0);
  check_int "callee block" lc.callee (Graph.routine_of_block lc.g lc.l0)

let test_graph_callers () =
  let lc = loop_call () in
  let cs = Graph.callers lc.g lc.callee in
  check_int "one caller block" 1 (Array.length cs);
  check_int "it is c2" lc.c2 cs.(0);
  check_int "caller has no callers" 0 (Array.length (Graph.callers lc.g lc.caller))

let test_graph_iterators () =
  let d = diamond () in
  let blocks = ref 0 and arcs = ref 0 and routines = ref 0 in
  Graph.iter_blocks d.g (fun _ -> incr blocks);
  Graph.iter_arcs d.g (fun _ -> incr arcs);
  Graph.iter_routines d.g (fun _ -> incr routines);
  check_int "iter blocks" 4 !blocks;
  check_int "iter arcs" 4 !arcs;
  check_int "iter routines" 1 !routines;
  let total = Graph.fold_blocks d.g ~init:0 ~f:(fun acc b -> acc + b.Block.size) in
  check_int "fold sums sizes" (Graph.code_bytes d.g) total

let test_graph_invalid_size () =
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  check_raises_invalid "zero size" (fun () ->
      Graph.add_block bld ~routine:r ~size:0 ())

let test_graph_cross_routine_arc () =
  let bld = Graph.builder () in
  let r1 = Graph.declare_routine bld "r1" in
  let r2 = Graph.declare_routine bld "r2" in
  let b1 = Graph.add_block bld ~routine:r1 ~size:4 () in
  let b2 = Graph.add_block bld ~routine:r2 ~size:4 () in
  check_raises_invalid "cross-routine arc" (fun () ->
      Graph.add_arc bld ~src:b1 ~dst:b2 Arc.Taken)

let test_graph_empty_routine_rejected () =
  let bld = Graph.builder () in
  let _r = Graph.declare_routine bld "empty" in
  check_raises_invalid "freeze with empty routine" (fun () -> Graph.freeze bld)

let test_graph_unknown_routine_block () =
  let bld = Graph.builder () in
  check_raises_invalid "unknown routine" (fun () ->
      Graph.add_block bld ~routine:3 ~size:4 ())

let test_routine_block_count () =
  let lc = loop_call () in
  check_int "caller blocks" 5 (Routine.block_count (Graph.routine lc.g lc.caller));
  check_int "callee blocks" 2 (Routine.block_count (Graph.routine lc.g lc.callee))

let test_arc_kinds () =
  check_bool "kind strings differ" true
    (Arc.kind_to_string Arc.Fallthrough <> Arc.kind_to_string Arc.Taken)

(* ------------------------------------------------------------------ *)
(* Dominators                                                         *)
(* ------------------------------------------------------------------ *)

let test_dominators_diamond () =
  let d = diamond () in
  let dom = Dominators.compute d.g (Graph.routine d.g d.routine) in
  check_bool "entry has no idom" true (Dominators.idom dom d.entry = None);
  Alcotest.(check (option int)) "idom a = entry" (Some d.entry) (Dominators.idom dom d.a);
  Alcotest.(check (option int)) "idom b = entry" (Some d.entry) (Dominators.idom dom d.b);
  Alcotest.(check (option int)) "idom exit = entry (not a or b)" (Some d.entry)
    (Dominators.idom dom d.exit_)

let test_dominators_relation () =
  let d = diamond () in
  let dom = Dominators.compute d.g (Graph.routine d.g d.routine) in
  check_bool "entry dominates all" true
    (Dominators.dominates dom d.entry d.exit_
    && Dominators.dominates dom d.entry d.a
    && Dominators.dominates dom d.entry d.b);
  check_bool "reflexive" true (Dominators.dominates dom d.a d.a);
  check_bool "a does not dominate exit" false (Dominators.dominates dom d.a d.exit_)

let test_dominators_chain () =
  let lc = loop_call () in
  let dom = Dominators.compute lc.g (Graph.routine lc.g lc.caller) in
  check_bool "c1 dominates c3" true (Dominators.dominates dom lc.c1 lc.c3);
  check_bool "c1 dominates c4" true (Dominators.dominates dom lc.c1 lc.c4);
  Alcotest.(check (option int)) "idom c1 = c0" (Some lc.c0) (Dominators.idom dom lc.c1)

let test_dominators_unreachable () =
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  let e = Graph.add_block bld ~routine:r ~size:4 () in
  let orphan = Graph.add_block bld ~routine:r ~size:4 () in
  let g = Graph.freeze bld in
  let dom = Dominators.compute g (Graph.routine g r) in
  check_bool "entry reachable" true (Dominators.reachable dom e);
  check_bool "orphan unreachable" false (Dominators.reachable dom orphan);
  check_bool "nothing dominates unreachable" false (Dominators.dominates dom e orphan)

let test_dominators_rpo () =
  let d = diamond () in
  let dom = Dominators.compute d.g (Graph.routine d.g d.routine) in
  let rpo = Dominators.reverse_postorder dom in
  check_int "all reachable in rpo" 4 (Array.length rpo);
  check_int "entry first" d.entry rpo.(0);
  check_int "exit last" d.exit_ rpo.(3)

(* ------------------------------------------------------------------ *)
(* Loops                                                              *)
(* ------------------------------------------------------------------ *)

let test_loops_none_in_diamond () =
  let d = diamond () in
  check_int "diamond has no loops" 0 (List.length (Loops.find d.g))

let test_loops_natural () =
  let lc = loop_call () in
  match Loops.find lc.g with
  | [ l ] ->
      check_int "header" lc.c1 l.Loops.header;
      Alcotest.(check (array int)) "body = c1,c2,c3" [| lc.c1; lc.c2; lc.c3 |] l.Loops.body;
      check_int "routine" lc.caller l.Loops.routine;
      check_bool "has calls" true (Loops.has_calls l);
      Alcotest.(check (array int)) "calls callee" [| lc.callee |] l.Loops.calls_routines;
      check_int "static bytes" 48 l.Loops.static_bytes;
      check_int "one back edge" 1 (Array.length l.Loops.back_edges);
      check_int "the back edge" lc.back_edge l.Loops.back_edges.(0)
  | ls -> Alcotest.failf "expected exactly one loop, got %d" (List.length ls)

let test_loops_contains () =
  let lc = loop_call () in
  let l = List.hd (Loops.find lc.g) in
  check_bool "header in body" true (Loops.contains l lc.c1);
  check_bool "c2 in body" true (Loops.contains l lc.c2);
  check_bool "c0 not in body" false (Loops.contains l lc.c0);
  check_bool "c4 not in body" false (Loops.contains l lc.c4)

let test_loops_self_loop () =
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  let e = Graph.add_block bld ~routine:r ~size:4 () in
  let s = Graph.add_block bld ~routine:r ~size:4 () in
  let x = Graph.add_block bld ~routine:r ~size:4 () in
  ignore (Graph.add_arc bld ~src:e ~dst:s Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:s ~dst:s Arc.Taken);
  ignore (Graph.add_arc bld ~src:s ~dst:x Arc.Fallthrough);
  let g = Graph.freeze bld in
  match Loops.find g with
  | [ l ] ->
      check_int "self-loop header" s l.Loops.header;
      Alcotest.(check (array int)) "body is just s" [| s |] l.Loops.body;
      check_bool "no calls" false (Loops.has_calls l)
  | ls -> Alcotest.failf "expected one self-loop, got %d" (List.length ls)

let test_loops_shared_header_merged () =
  (* Two back edges to the same header from different paths: the standard
     construction merges them into one loop. *)
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  let e = Graph.add_block bld ~routine:r ~size:4 () in
  let h = Graph.add_block bld ~routine:r ~size:4 () in
  let a = Graph.add_block bld ~routine:r ~size:4 () in
  let b = Graph.add_block bld ~routine:r ~size:4 () in
  let x = Graph.add_block bld ~routine:r ~size:4 () in
  ignore (Graph.add_arc bld ~src:e ~dst:h Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:h ~dst:a Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:h ~dst:b Arc.Taken);
  ignore (Graph.add_arc bld ~src:a ~dst:h Arc.Taken);
  ignore (Graph.add_arc bld ~src:b ~dst:h Arc.Taken);
  ignore (Graph.add_arc bld ~src:h ~dst:x Arc.Taken);
  let g = Graph.freeze bld in
  match Loops.find g with
  | [ l ] ->
      check_int "merged header" h l.Loops.header;
      Alcotest.(check (array int)) "merged body" [| h; a; b |] l.Loops.body;
      check_int "two back edges" 2 (Array.length l.Loops.back_edges)
  | ls -> Alcotest.failf "expected one merged loop, got %d" (List.length ls)

let test_loops_nested () =
  (* e -> h1 -> h2 -> b2 -> h2 (inner), b2 -> b1 -> h1 (outer), b1 -> x *)
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "r" in
  let blk () = Graph.add_block bld ~routine:r ~size:4 () in
  let e = blk () and h1 = blk () and h2 = blk () and b2 = blk () and b1 = blk ()
  and x = blk () in
  ignore (Graph.add_arc bld ~src:e ~dst:h1 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:h1 ~dst:h2 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:h2 ~dst:b2 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:b2 ~dst:h2 Arc.Taken);
  ignore (Graph.add_arc bld ~src:b2 ~dst:b1 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:b1 ~dst:h1 Arc.Taken);
  ignore (Graph.add_arc bld ~src:b1 ~dst:x Arc.Fallthrough);
  let g = Graph.freeze bld in
  let loops = Loops.find g in
  check_int "two loops" 2 (List.length loops);
  let inner = List.find (fun l -> l.Loops.header = h2) loops in
  let outer = List.find (fun l -> l.Loops.header = h1) loops in
  Alcotest.(check (array int)) "inner body" [| h2; b2 |] inner.Loops.body;
  Alcotest.(check (array int)) "outer contains inner" [| h1; h2; b2; b1 |] outer.Loops.body

let test_loops_find_in_routine () =
  let lc = loop_call () in
  check_int "loop in caller" 1
    (List.length (Loops.find_in_routine lc.g (Graph.routine lc.g lc.caller)));
  check_int "no loop in callee" 0
    (List.length (Loops.find_in_routine lc.g (Graph.routine lc.g lc.callee)))

let test_loops_blocks_in_loops () =
  let lc = loop_call () in
  let flags = Loops.blocks_in_loops lc.g (Loops.find lc.g) in
  check_bool "c1 flagged" true flags.(lc.c1);
  check_bool "c2 flagged" true flags.(lc.c2);
  check_bool "c0 unflagged" false flags.(lc.c0);
  check_bool "l0 unflagged" false flags.(lc.l0)

(* ------------------------------------------------------------------ *)
(* Properties on random CFGs                                          *)
(* ------------------------------------------------------------------ *)

(* A random single-routine CFG: n blocks along a spine (so everything is
   reachable), plus random forward and backward arcs. *)
let random_cfg_gen =
  QCheck.Gen.(
    let* n = 3 -- 25 in
    let* seed = 0 -- 10_000 in
    return (n, seed))

let build_random_cfg (n, seed) =
  let g = Prng.of_int seed in
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "rand" in
  let blocks =
    Array.init n (fun _ -> Graph.add_block bld ~routine:r ~size:(4 * (1 + Prng.int g 8)) ())
  in
  for i = 0 to n - 2 do
    ignore (Graph.add_arc bld ~src:blocks.(i) ~dst:blocks.(i + 1) Arc.Fallthrough);
    if Prng.bernoulli g 0.4 && i + 2 <= n - 1 then begin
      let dst = i + 2 + Prng.int g (n - i - 2) in
      ignore (Graph.add_arc bld ~src:blocks.(i) ~dst:blocks.(dst) Arc.Taken)
    end;
    if i > 0 && Prng.bernoulli g 0.25 then begin
      let dst = Prng.int g i in
      ignore (Graph.add_arc bld ~src:blocks.(i) ~dst:blocks.(dst) Arc.Taken)
    end
  done;
  (Graph.freeze bld, r, blocks)

let prop_entry_dominates_reachable =
  QCheck.Test.make ~name:"entry dominates every reachable block" ~count:100
    (QCheck.make random_cfg_gen) (fun spec ->
      let g, r, blocks = build_random_cfg spec in
      let dom = Dominators.compute g (Graph.routine g r) in
      Array.for_all
        (fun b ->
          (not (Dominators.reachable dom b)) || Dominators.dominates dom blocks.(0) b)
        blocks)

let prop_idom_dominates =
  QCheck.Test.make ~name:"idom strictly dominates its block" ~count:100
    (QCheck.make random_cfg_gen) (fun spec ->
      let g, r, blocks = build_random_cfg spec in
      let dom = Dominators.compute g (Graph.routine g r) in
      Array.for_all
        (fun b ->
          match Dominators.idom dom b with
          | None -> true
          | Some d -> d <> b && Dominators.dominates dom d b)
        blocks)

let prop_loop_bodies_well_formed =
  QCheck.Test.make ~name:"loop bodies contain their header, sorted" ~count:100
    (QCheck.make random_cfg_gen) (fun spec ->
      let g, _, _ = build_random_cfg spec in
      List.for_all
        (fun (l : Loops.t) ->
          Loops.contains l l.Loops.header
          && l.Loops.static_bytes
             = Array.fold_left
                 (fun acc b -> acc + (Graph.block g b).Block.size)
                 0 l.Loops.body
          &&
          let sorted = Array.copy l.Loops.body in
          Array.sort compare sorted;
          sorted = l.Loops.body)
        (Loops.find g))

let prop_back_edges_enter_header =
  QCheck.Test.make ~name:"every back edge targets its loop header" ~count:100
    (QCheck.make random_cfg_gen) (fun spec ->
      let g, _, _ = build_random_cfg spec in
      List.for_all
        (fun (l : Loops.t) ->
          Array.for_all
            (fun a ->
              let arc = Graph.arc g a in
              arc.Arc.dst = l.Loops.header && Loops.contains l arc.Arc.src)
            l.Loops.back_edges)
        (Loops.find g))

let () =
  Alcotest.run "cfg"
    [
      ( "block",
        [
          case "instruction words" test_block_words;
          case "ends_in_call" test_block_ends_in_call;
          case "arc kinds" test_arc_kinds;
        ] );
      ( "graph",
        [
          case "counts" test_graph_counts;
          case "entry" test_graph_entry;
          case "out/in arcs" test_graph_out_in_arcs;
          case "is_exit" test_graph_is_exit;
          case "code bytes" test_graph_code_bytes;
          case "routine_of_block" test_graph_routine_of_block;
          case "callers" test_graph_callers;
          case "iterators" test_graph_iterators;
          case "invalid size" test_graph_invalid_size;
          case "cross-routine arc" test_graph_cross_routine_arc;
          case "empty routine rejected" test_graph_empty_routine_rejected;
          case "unknown routine" test_graph_unknown_routine_block;
          case "routine block count" test_routine_block_count;
        ] );
      ( "dominators",
        [
          case "diamond" test_dominators_diamond;
          case "relation" test_dominators_relation;
          case "chain" test_dominators_chain;
          case "unreachable" test_dominators_unreachable;
          case "reverse postorder" test_dominators_rpo;
          qcheck prop_entry_dominates_reachable;
          qcheck prop_idom_dominates;
        ] );
      ( "loops",
        [
          case "none in diamond" test_loops_none_in_diamond;
          case "natural loop" test_loops_natural;
          case "contains" test_loops_contains;
          case "self loop" test_loops_self_loop;
          case "shared header merged" test_loops_shared_header_merged;
          case "nested" test_loops_nested;
          case "find_in_routine" test_loops_find_in_routine;
          case "blocks_in_loops" test_loops_blocks_in_loops;
          qcheck prop_loop_bodies_well_formed;
          qcheck prop_back_edges_enter_header;
        ] );
    ]
