(* Shared fixtures for the test suites.

   Expensive artifacts (the small synthetic kernel, a traced context) are
   memoized so every suite in one executable reuses them. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let check_raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let case name f = Alcotest.test_case name `Quick f

let qcheck cell = QCheck_alcotest.to_alcotest cell

(* ------------------------------------------------------------------ *)
(* Hand-built flow graphs.                                            *)
(* ------------------------------------------------------------------ *)

(* One routine shaped as a diamond:
     entry -> a (p=0.8) | b (p=0.2);  a -> exit;  b -> exit. *)
type diamond = {
  g : Graph.t;
  routine : Routine.id;
  entry : Block.id;
  a : Block.id;
  b : Block.id;
  exit_ : Block.id;
  arc_ea : Arc.id;
  arc_eb : Arc.id;
  arc_ax : Arc.id;
  arc_bx : Arc.id;
}

let diamond () =
  let bld = Graph.builder () in
  let r = Graph.declare_routine bld "diamond" in
  let blk size = Graph.add_block bld ~routine:r ~size () in
  let entry = blk 16 in
  let a = blk 24 in
  let b = blk 8 in
  let exit_ = blk 12 in
  let arc_ea = Graph.add_arc bld ~src:entry ~dst:a Arc.Fallthrough in
  let arc_eb = Graph.add_arc bld ~src:entry ~dst:b Arc.Taken in
  let arc_ax = Graph.add_arc bld ~src:a ~dst:exit_ Arc.Fallthrough in
  let arc_bx = Graph.add_arc bld ~src:b ~dst:exit_ Arc.Taken in
  let g = Graph.freeze bld in
  { g; routine = r; entry; a; b; exit_; arc_ea; arc_eb; arc_ax; arc_bx }

(* Two routines: [caller] with a loop around a call to [callee].
     c0 -> c1(header) -> c2(calls callee) -> c3 -> back to c1 | c4(exit)
     callee: l0 -> l1. *)
type loop_call = {
  g : Graph.t;
  caller : Routine.id;
  callee : Routine.id;
  c0 : Block.id;
  c1 : Block.id;
  c2 : Block.id;
  c3 : Block.id;
  c4 : Block.id;
  l0 : Block.id;
  l1 : Block.id;
  back_edge : Arc.id;
}

let loop_call () =
  let bld = Graph.builder () in
  let caller = Graph.declare_routine bld "caller" in
  let callee = Graph.declare_routine bld "callee" in
  let blk ?call r size = Graph.add_block bld ~routine:r ~size ?call () in
  let c0 = blk caller 16 in
  let c1 = blk caller 16 in
  let c2 = blk ~call:callee caller 16 in
  let c3 = blk caller 16 in
  let c4 = blk caller 16 in
  let l0 = blk callee 16 in
  let l1 = blk callee 16 in
  ignore (Graph.add_arc bld ~src:c0 ~dst:c1 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:c1 ~dst:c2 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:c2 ~dst:c3 Arc.Fallthrough);
  let back_edge = Graph.add_arc bld ~src:c3 ~dst:c1 Arc.Taken in
  ignore (Graph.add_arc bld ~src:c3 ~dst:c4 Arc.Fallthrough);
  ignore (Graph.add_arc bld ~src:l0 ~dst:l1 Arc.Fallthrough);
  let g = Graph.freeze bld in
  { g; caller; callee; c0; c1; c2; c3; c4; l0; l1; back_edge }

(* A profile with explicit block/arc weights over a graph. *)
let profile_of g block_weights arc_weights =
  let p = Profile.empty g in
  List.iter
    (fun (b, w) ->
      p.Profile.block.(b) <- w;
      p.Profile.total_blocks <- p.Profile.total_blocks +. w)
    block_weights;
  List.iter (fun (a, w) -> p.Profile.arc.(a) <- w) arc_weights;
  p

(* ------------------------------------------------------------------ *)
(* Memoized expensive fixtures.                                       *)
(* ------------------------------------------------------------------ *)

let small_model = lazy (Generator.generate Spec.small)
let default_model = lazy (Generator.generate Spec.default)

(* A traced context over the small kernel: fast enough for integration
   tests, big enough that every region of the pipeline is exercised. *)
let small_context =
  lazy (Context.create ~spec:Spec.small ~words:150_000 ~seed:7 ())

let full_context = lazy (Context.create ~words:400_000 ~seed:7 ())
