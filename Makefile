.PHONY: all build test check validate bench clean

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: build, then run the tier-1 suite single-domain and
# multi-domain so the determinism guarantee (parallel == sequential, see
# test/test_parallel.ml) is exercised on every run.
check: build
	ICACHE_JOBS=1 dune runtest --force
	ICACHE_JOBS=4 dune runtest --force
	$(MAKE) validate

# End-to-end check of the structured output path: run the full repro as
# JSON and make sure every report parses back and the run manifest's
# invariants hold (stage seconds >= 0, sim-cache hits + misses = lookups,
# batch cache_hits + simulated <= members, and per layout stage
# hits + misses = lookups with seconds >= 0).  Run single- and
# multi-domain so the fused batch replay and the parallel staged layout
# builds are validated under both fan-out modes.
validate: build
	ICACHE_JOBS=1 _build/default/bin/icache_opt.exe repro --small --words 60000 --format json \
	  | _build/default/bin/icache_opt.exe validate
	ICACHE_JOBS=4 _build/default/bin/icache_opt.exe repro --small --words 60000 --format json \
	  | _build/default/bin/icache_opt.exe validate

bench:
	dune exec bench/main.exe -- --no-timing

clean:
	dune clean
