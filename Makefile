.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: build, then run the tier-1 suite single-domain and
# multi-domain so the determinism guarantee (parallel == sequential, see
# test/test_parallel.ml) is exercised on every run.
check: build
	ICACHE_JOBS=1 dune runtest --force
	ICACHE_JOBS=4 dune runtest --force

bench:
	dune exec bench/main.exe -- --no-timing

clean:
	dune clean
