.PHONY: all build test check validate trace bench clean

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: build, then run the tier-1 suite single-domain and
# multi-domain so the determinism guarantee (parallel == sequential, see
# test/test_parallel.ml) is exercised on every run.
check: build
	ICACHE_JOBS=1 dune runtest --force
	ICACHE_JOBS=4 dune runtest --force
	$(MAKE) validate

# End-to-end check of the structured output path: run the full repro as
# JSON and make sure every report parses back and the run manifest's
# invariants hold (stage seconds >= 0, sim-cache hits + misses = lookups,
# batch cache_hits + simulated <= members, per layout stage
# hits + misses = lookups with seconds >= 0, metrics counters consistent,
# GC sample present).  The same runs record a span trace (--trace), which
# is then validated too: begin/end balanced per track, durations
# non-negative, no unclosed spans.  Run single- and multi-domain so the
# fused batch replay, the parallel staged layout builds and the
# per-worker trace tracks are validated under both fan-out modes.
validate: build
	ICACHE_JOBS=1 _build/default/bin/icache_opt.exe repro --small --words 60000 --format json \
	  --trace _build/trace_j1.json \
	  | _build/default/bin/icache_opt.exe validate
	_build/default/bin/icache_opt.exe validate _build/trace_j1.json
	ICACHE_JOBS=4 _build/default/bin/icache_opt.exe repro --small --words 60000 --format json \
	  --trace _build/trace_j4.json \
	  | _build/default/bin/icache_opt.exe validate
	_build/default/bin/icache_opt.exe validate _build/trace_j4.json

# Capture a span timeline of the small repro and print its hot spans.
# The Chrome-format trace lands in _build/trace.json: load it in
# https://ui.perfetto.dev or summarize with `icache-opt trace-summary`.
trace: build
	_build/default/bin/icache_opt.exe repro --small --trace _build/trace.json
	_build/default/bin/icache_opt.exe trace-summary _build/trace.json

bench:
	dune exec bench/main.exe -- --no-timing

clean:
	dune clean
