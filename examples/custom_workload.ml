(* Custom workload: a database-like load.

   The paper notes that Shell resembles database loads in its heavy
   system-call activity.  This example goes one step further and defines
   a new workload from scratch - an OLTP-flavoured mix of system calls
   (reads/writes), page faults on the buffer pool, and I/O interrupts -
   then checks whether a layout optimized on the paper's four standard
   workloads still helps it.  This is the paper's deployment question:
   the kernel is laid out once, from an average profile, and must serve
   loads that were never profiled.

   Run with:  dune exec examples/custom_workload.exe *)

let () =
  let model = Generator.generate Spec.small in
  let g = Prng.of_int 4242 in

  (* An unseen workload: syscall-heavy with bursty faults, running one
     compiler-like application image (the closest stand-in for a database
     engine among the bundled models: large, branchy code). *)
  let oltp =
    {
      Workload.name = "OLTP-like";
      mix = [| 0.25; 0.20; 0.53; 0.02 |];
      handler_weights =
        Array.map
          (fun handlers ->
            Workload.focused_weights g ~n:(Array.length handlers)
              ~used:(max 1 (Array.length handlers / 2))
              ~common_weight:0.4)
          model.Model.handlers;
      app_instances = [| 1; 1 |];
      os_fraction = 0.7;
      switch_period = 4;
      repeat_prob = 0.5;
    }
  in
  let program = Program.make ~os:model ~apps:[| App_model.cc1 () |] in

  (* Layouts are built from the *standard* profiles - the new workload is
     deliberately absent, exactly as a shipped pre-linked kernel would
     be. *)
  let ctx = Context.create ~spec:Spec.small ~words:300_000 () in
  let os_profile = ctx.Context.avg_os_profile in
  let base = Program_layout.base ~model ~program in
  let ch = Program_layout.chang_hwu ~model ~program ~os_profile in
  let opt_s = Program_layout.opt_s ~model ~program ~os_profile () in

  (* Trace the new workload and replay it against all three layouts. *)
  let trace, stats = Engine.capture ~program ~workload:oltp ~words:800_000 ~seed:9 in
  Printf.printf "traced %s: %d words, OS share %.0f%%\n" oltp.Workload.name
    stats.Engine.total_words
    (100.0 *. float_of_int stats.Engine.os_words /. float_of_int stats.Engine.total_words);

  let t =
    Table.create ~title:"Unseen OLTP-like workload, 8KB direct-mapped cache"
      [
        ("layout", Table.Left); ("miss rate", Table.Right); ("OS misses", Table.Right);
        ("norm", Table.Right);
      ]
  in
  let base_misses = ref 0 in
  List.iter
    (fun (name, layout) ->
      let system = System.unified (Config.make ~size_kb:8 ()) in
      Replay.run_range ~trace ~map:(Program_layout.code_map layout)
        ~systems:[| system |]
        ~warmup:(Trace.length trace / 5);
      let c = System.counters system in
      if name = "Base" then base_misses := Counters.misses c;
      Table.add_row t
        [
          name;
          Table.cell_pct ~decimals:3 (100.0 *. Counters.miss_rate c);
          Table.cell_i (Counters.os_misses c);
          Table.cell_f (Stats.ratio (Counters.misses c) !base_misses);
        ])
    [ ("Base", base); ("C-H", ch); ("OptS", opt_s) ];
  Table.print t;
  print_endline
    "\nThe popular OS paths (interrupt entry, fault handling, syscall entry)\n\
     are shared across workloads (paper, Figure 2), so the pre-built OptS\n\
     layout transfers to a load it was never profiled on."
