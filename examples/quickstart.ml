(* Quickstart: generate a synthetic kernel, trace an OS-intensive
   workload, build the Base and OptS code layouts, and compare their
   instruction-cache miss rates on the paper's 8 KB direct-mapped cache.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A synthetic kernel.  [Spec.default] is calibrated against the
     Concentrix 3.0 statistics the paper reports; [Spec.small] is a fast
     scaled-down variant, fine for a demo. *)
  let model = Generator.generate Spec.small in
  Printf.printf "kernel: %d routines, %d basic blocks, %d KB of code\n"
    (Graph.routine_count model.Model.graph)
    (Graph.block_count model.Model.graph)
    (Graph.code_bytes model.Model.graph / 1024);

  (* 2. One of the paper's four workloads: TRFD_4, four parallel copies of
     a scientific code driving scheduler and cross-processor interrupt
     activity. *)
  let workload, program =
    (Workload.standard_programs model).(0)
  in
  Printf.printf "workload: %s (target OS share of fetches: %.0f%%)\n"
    workload.Workload.name
    (100.0 *. workload.Workload.os_fraction);

  (* 3. Trace one million instruction words and profile them. *)
  let profiles, sink = Profile.sinks ~program in
  let trace = Trace.create () in
  let stats =
    Engine.run ~program ~workload ~words:1_000_000 ~seed:1
      ~sink:(Engine.combine_sinks [ sink; Engine.trace_sink trace ])
  in
  Printf.printf "traced %d instruction words (%d OS invocations)\n"
    stats.Engine.total_words
    (Array.fold_left ( + ) 0 stats.Engine.invocations);
  let os_profile = profiles.(0) in

  (* 4. Two layouts: the original link order (Base) and the paper's OptS
     (sequences grown from the four seeds + a SelfConfFree area). *)
  let base = Program_layout.base ~model ~program in
  let opt_s = Program_layout.opt_s ~model ~program ~os_profile () in

  (* 5. Replay the same trace against both layouts through an 8 KB
     direct-mapped cache with 32-byte lines. *)
  let miss_rate layout =
    let system = System.unified (Config.make ~size_kb:8 ()) in
    Replay.run ~trace ~map:(Program_layout.code_map layout) ~systems:[| system |];
    Counters.miss_rate (System.counters system)
  in
  let base_rate = miss_rate base in
  let opt_rate = miss_rate opt_s in
  Printf.printf "\n8KB direct-mapped, 32B lines:\n";
  Printf.printf "  Base miss rate: %.3f%%\n" (100.0 *. base_rate);
  Printf.printf "  OptS miss rate: %.3f%%  (%.0f%% fewer misses)\n"
    (100.0 *. opt_rate)
    (100.0 *. (1.0 -. (opt_rate /. base_rate)));
  Printf.printf "  estimated speed increase at a 30-cycle miss penalty: %.1f%%\n"
    (Speedup.speed_increase ~base_miss_rate:base_rate ~opt_miss_rate:opt_rate
       ~penalty:30)
