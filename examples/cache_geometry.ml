(* Cache geometry study: choosing an instruction cache for an
   OS-intensive machine.

   The scenario from the paper's evaluation: a designer must pick the
   on-chip I-cache geometry, and wants to know how much a profile-guided
   kernel layout changes the answer.  We sweep size, line size and
   associativity over the Shell workload (heavy multiprogrammed system
   call load) and print, for each geometry, the Base and OptS miss rates
   and the estimated speedup of OptS at a 30-cycle miss penalty.

   Run with:  dune exec examples/cache_geometry.exe *)

let () =
  let ctx = Context.create ~spec:Spec.small ~words:600_000 () in
  let shell_index = 3 in
  let base = (Levels.build ctx Levels.Base).(shell_index) in
  let opt_s = (Levels.build ctx Levels.OptS).(shell_index) in
  let trace = ctx.Context.traces.(shell_index) in

  let rate layout config =
    let system = System.unified config in
    Replay.run_range ~trace ~map:(Program_layout.code_map layout)
      ~systems:[| system |]
      ~warmup:(Trace.length trace / 5);
    Counters.miss_rate (System.counters system)
  in

  let t =
    Table.create ~title:"Shell workload: Base vs OptS across geometries"
      [
        ("geometry", Table.Left); ("Base %", Table.Right); ("OptS %", Table.Right);
        ("speedup@30", Table.Right);
      ]
  in
  let row config =
    let b = rate base config and o = rate opt_s config in
    Table.add_row t
      [
        Config.to_string config;
        Table.cell_f ~decimals:3 (100.0 *. b);
        Table.cell_f ~decimals:3 (100.0 *. o);
        Table.cell_pct ~decimals:1
          (Speedup.speed_increase ~base_miss_rate:b ~opt_miss_rate:o ~penalty:30);
      ]
  in
  List.iter (fun kb -> row (Config.make ~size_kb:kb ())) [ 4; 8; 16; 32 ];
  Table.add_separator t;
  List.iter (fun line -> row (Config.make ~size_kb:8 ~line ())) [ 16; 64; 128 ];
  Table.add_separator t;
  List.iter (fun assoc -> row (Config.make ~size_kb:8 ~assoc ())) [ 2; 4; 8 ];
  Table.print t;
  print_endline
    "\nThe paper's conclusion holds here too: a direct-mapped cache with an\n\
     optimized layout outperforms a set-associative cache with the original\n\
     layout, so the layout optimization substitutes for hardware complexity."
