(* Multiprocessor scenario: the machine the paper measured.

   The Alliant FX/8 ran four processors, each with its own instruction
   cache, time-sharing one kernel image; parallel applications hammer the
   cross-processor interrupt path.  This example traces the TRFD_4
   workload on a 4-CPU machine model, replays each CPU's trace through
   its own 8 KB cache under the Base and OptS layouts, and shows both the
   per-CPU numbers and the coupling (how much of each CPU's OS activity
   is cross-processor interrupts forced by its peers).

   Run with:  dune exec examples/multiprocessor.exe *)

let () =
  let ctx = Context.create ~spec:Spec.small ~words:400_000 () in
  let workload, program = ctx.Context.pairs.(0) in
  Printf.printf "workload: %s on 4 CPUs, one 8KB I-cache each\n"
    workload.Workload.name;

  let r =
    Multiproc.run ~program ~workload ~cpus:4 ~words_per_cpu:200_000 ~seed:3
      ~xcall_prob:0.5 ()
  in
  Printf.printf "cross-processor broadcasts sent: %d\n\n" r.Multiproc.xcalls_sent;

  let base = (Levels.build ctx Levels.Base).(0) in
  let opt_s = (Levels.build ctx Levels.OptS).(0) in
  let t =
    Table.create
      [
        ("CPU", Table.Left); ("OS words", Table.Right); ("xcalls", Table.Right);
        ("Base %", Table.Right); ("OptS %", Table.Right); ("saved", Table.Right);
      ]
  in
  Array.iteri
    (fun i (cpu : Multiproc.cpu) ->
      let rate layout =
        let system = System.unified (Config.make ~size_kb:8 ()) in
        Replay.run_range ~trace:cpu.Multiproc.trace
          ~map:(Program_layout.code_map layout)
          ~systems:[| system |]
          ~warmup:(Trace.length cpu.Multiproc.trace / 5);
        Counters.miss_rate (System.counters system)
      in
      let b = rate base and o = rate opt_s in
      Table.add_row t
        [
          Printf.sprintf "cpu%d" i;
          Table.cell_i cpu.Multiproc.os_words;
          Table.cell_i cpu.Multiproc.forced;
          Table.cell_f ~decimals:3 (100.0 *. b);
          Table.cell_f ~decimals:3 (100.0 *. o);
          Table.cell_pct ~decimals:0 (100.0 *. (1.0 -. (o /. b)));
        ])
    r.Multiproc.cpus;
  Table.print t;
  print_endline
    "\nEvery CPU sees the same hot kernel paths (clock ticks, cross-processor\n\
     interrupts, locks), so one shared OptS layout serves all four caches -\n\
     the same observation that lets the paper average its four probes."
