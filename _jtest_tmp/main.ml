let () =
  List.iter
    (fun s ->
      match Icache_util.Json.of_string s with
      | Ok _ -> Printf.printf "%S -> Ok\n" s
      | Error e -> Printf.printf "%S -> Error %s\n" s e
      | exception ex -> Printf.printf "%S -> EXCEPTION %s\n" s (Printexc.to_string ex))
    [ "1e"; "1e+"; "[1.5e]"; "{\"a\": 2e}"; "nan"; "1.5"; "[1,2]" ]
