type point = {
  label : string;
  workload : string;
  base_pct : float;
  ch_pct : float;
  opt_s_pct : float;
}

let levels = [| Levels.Base; Levels.CH; Levels.OptS |]

let sweep (ctx : Context.t) configs =
  let params = Opt.params ~cache_size:8192 () in
  (* One batch per sweep: all geometries of a level share that level's
     single replay pass per workload (the placement, and hence the fed
     event stream, is geometry-independent). *)
  let configs = Array.of_list configs in
  let members =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (_label, config) ->
              Array.map
                (fun level -> (Levels.build ctx ~params level, config))
                levels)
            configs))
  in
  let batch = Runner.simulate_batch ctx ~members () in
  let points = ref [] in
  Array.iteri
    (fun ci (label, _config) ->
      let rates k =
        Array.map
          (fun (r : Runner.run) -> 100.0 *. Counters.miss_rate r.Runner.counters)
          batch.((ci * Array.length levels) + k)
      in
      let base = rates 0 in
      let ch = rates 1 in
      let opt_s = rates 2 in
      Array.iteri
        (fun i (w, _) ->
          points :=
            {
              label;
              workload = w.Workload.name;
              base_pct = base.(i);
              ch_pct = ch.(i);
              opt_s_pct = opt_s.(i);
            }
            :: !points)
        ctx.Context.pairs)
    configs;
  Array.of_list (List.rev !points)

let compute_line_sizes ctx =
  sweep ctx
    (List.map
       (fun line -> (Printf.sprintf "%dB" line, Config.make ~size_kb:8 ~line ()))
       [ 16; 32; 64; 128 ])

let compute_associativities ctx =
  sweep ctx
    (List.map
       (fun assoc -> (Printf.sprintf "%dway" assoc, Config.make ~size_kb:8 ~assoc ()))
       [ 1; 2; 4; 8 ])

let average_reduction points ~label =
  let selected = Array.to_list points |> List.filter (fun p -> p.label = label) in
  let reductions =
    List.map (fun p -> 100.0 *. (1.0 -. (p.opt_s_pct /. p.base_pct))) selected
  in
  Stats.mean (Array.of_list reductions)

let point_items title points =
  let t =
    Table.create
      [
        ("Config", Table.Right); ("Workload", Table.Left);
        ("Base%", Table.Right); ("C-H%", Table.Right); ("OptS%", Table.Right);
      ]
  in
  Array.iter
    (fun p ->
      Table.add_row t
        [
          p.label; p.workload;
          Table.cell_f ~decimals:3 p.base_pct;
          Table.cell_f ~decimals:3 p.ch_pct;
          Table.cell_f ~decimals:3 p.opt_s_pct;
        ])
    points;
  [ Result.note "%s" title; Result.of_table t ]

let report ctx =
  let lines = compute_line_sizes ctx in
  let assoc = compute_associativities ctx in
  Result.report ~id:"fig17"
    ~section:"Figure 17: line size and associativity sweeps (8KB cache)"
    (point_items "(a) line size, direct-mapped:" lines
    @ [
        Result.note "OptS average reduction: %.0f%% @16B -> %.0f%% @128B"
          (average_reduction lines ~label:"16B")
          (average_reduction lines ~label:"128B");
      ]
    @ point_items "(b) associativity, 32B lines:" assoc
    @ [
        Result.note "OptS average reduction: %.0f%% @1way -> %.0f%% @8way"
          (average_reduction assoc ~label:"1way")
          (average_reduction assoc ~label:"8way");
        Result.paper "gains grow with line size (59% @16B -> 70% @128B) and shrink with";
        Result.paper "associativity (55% DM -> 41% 8-way); DM OptS beats 8-way Base";
      ])

let run ctx = Result.print (report ctx)
