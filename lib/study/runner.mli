(** Trace-replay driver: simulates cache systems for every workload under
    given per-workload layouts.

    A warm-up prefix of each trace fills the cache before counters start,
    matching the paper's mid-execution hardware traces ("misses caused by
    first-time references are negligible").

    Workloads replay concurrently on up to [jobs] domains (default
    {!Parallel.default_jobs}, i.e. [--jobs]/[ICACHE_JOBS] or the core
    count).  Every domain owns a fresh {!System.t} and results merge in
    workload order, so counters and per-block miss arrays are bit-identical
    across job counts — [test/test_parallel.ml] asserts this. *)

type run = {
  counters : Counters.t;
  os_block_misses : int array;  (** Per OS block; empty unless requested. *)
}

val simulate :
  Context.t -> layouts:Program_layout.t array ->
  system:(unit -> System.t) ->
  ?attribute_os:bool -> ?warmup_fraction:float -> ?jobs:int -> unit ->
  run array
(** One run per workload.  [system] builds a fresh cache system per
    workload (it is called from worker domains, so it must not capture
    shared mutable state).  Default warm-up: the first 20% of events. *)

val simulate_config :
  Context.t -> layouts:Program_layout.t array -> config:Config.t ->
  ?attribute_os:bool -> ?warmup_fraction:float -> ?jobs:int -> unit ->
  run array
(** {!simulate} with a unified cache of the given geometry, memoized in
    {!Sim_cache}: re-simulating an identical (trace identity, layout
    digests, geometry, attribution) combination returns the cached runs
    (as fresh copies) instead of replaying. *)

val simulate_batch :
  Context.t -> members:(Program_layout.t array * Config.t) array ->
  ?attribute_os:bool -> ?warmup_fraction:float -> ?jobs:int -> unit ->
  run array array
(** Fused sweep: simulate every (per-workload layouts, unified cache
    geometry) member of a configuration grid, replaying each workload
    trace {e once per distinct placement} while feeding all of that
    placement's uncached members simultaneously ({!Replay.run_range} with
    several systems).  Result [.(m).(i)] is member [m]'s run on workload
    [i], bit-identical to [simulate_config ~layouts ~config] called per
    member — same counters, same attribution arrays — just without the
    redundant trace decodes.

    Every member consults {!Sim_cache} first (hits skip replay entirely)
    and every simulated member is published to it, so batched and
    per-config call sites share one memo.  Effectiveness (members served
    from cache, replay passes and decoded events saved) is recorded via
    {!Manifest.record_batch}. *)

val total : run array -> Counters.t
(** Sum of all workloads' counters. *)
