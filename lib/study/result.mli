(** Typed experiment reports.

    Every experiment's [compute] produces a {!report}: a section banner
    plus an ordered list of {!item}s — tables, labelled series (rendered
    as ASCII bar charts in text mode), named scalars, free-form notes and
    the paper's reference values.  Three renderers consume the same value:

    - {!render_text} reproduces the classic stdout transcript byte for
      byte (the golden tests in [test/test_golden.ml] prove this for all
      experiments);
    - {!to_json} / {!render} with {!Json} emit a machine-readable
      document that {!of_json} parses back to a structurally equal
      report (QCheck round-trip property in [test/test_report.ml]);
    - {!render} with {!Csv} emits flat comma-separated blocks for
      spreadsheet / plotting consumption.

    The module intentionally shadows [Stdlib.Result] inside the
    [icache_study] namespace; the standard module stays reachable as
    [Stdlib.Result]. *)

type item =
  | Table of {
      title : string option;
      columns : (string * Table.align) list;
      rows : Table.row list;
    }
  | Series of { label : string; points : (string * float) list }
  | Scalar of { label : string; value : float; text : string }
  | Note of string
  | Paper_ref of string

type report = { id : string; section : string; items : item list }

type format = Text | Json | Csv

(** {1 Construction} *)

val report : id:string -> section:string -> item list -> report

val of_table : Table.t -> item
(** Snapshot an imperatively built {!Table.t} as a report item. *)

val series : label:string -> (string * float) list -> item

val scalar : label:string -> value:float -> text:string -> item
(** A named number.  [text] is the exact human-readable line the classic
    transcript printed for it (indentation and newline added by the
    renderer), so text output stays byte-identical while JSON/CSV
    consumers get [label]/[value]. *)

val note : ('a, unit, string, item) format4 -> 'a
(** Printf-style free-form remark. *)

val paper : string -> item
(** The paper's reported value/shape for side-by-side comparison. *)

(** {1 Rendering} *)

val render_text : report -> string
(** Byte-identical to the historical [Report]/[Table.print]/[Chart]
    stdout output for the same content. *)

val render : format -> report -> string

val print : report -> unit
(** [render_text] to stdout (the experiment drivers' [run]). *)

val section_banner : string -> string
(** The ["=== title ==="] banner line group (exposed for {!Report}). *)

(** {1 JSON} *)

val to_json : report -> Json.t

val of_json : Json.t -> (report, string) result
(** Inverse of {!to_json}: [of_json (to_json r) = Ok r] for every report
    whose floats are finite. *)

val format_of_string : string -> (format, string) result
(** ["text" | "json" | "csv"], case-insensitive. *)

val format_to_string : format -> string

val extension : format -> string
(** File extension (without dot) used by [--out] directories. *)

(** {1 CSV} *)

val csv_of_table : (string * Table.align) list -> Table.row list -> string
(** Bare CSV: one header line then one line per {!Table.row} [Cells]
    (separators are skipped).  Fields containing commas, double quotes or
    newlines are quoted.  This is exactly the [sweep] subcommand's CSV
    shape. *)
