type row = {
  workload : string;
  executed_bytes : int;
  executed_code_pct : float;
  executed_bb_pct : float;
  invocation_pct : float array;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  Array.mapi
    (fun i (w, _) ->
      let p = ctx.Context.os_profiles.(i) in
      let s = ctx.Context.stats.(i) in
      let total_inv = Array.fold_left ( + ) 0 s.Engine.invocations in
      {
        workload = w.Workload.name;
        executed_bytes = Profile.executed_bytes p g;
        executed_code_pct = Stats.pct (Profile.executed_bytes p g) (Graph.code_bytes g);
        executed_bb_pct = Stats.pct (Profile.executed_block_count p) (Graph.block_count g);
        invocation_pct =
          Array.map (fun c -> Stats.pct c total_inv) s.Engine.invocations;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("OS code characteristic", Table.Left);
        ("TRFD_4", Table.Right); ("TRFD+Make", Table.Right);
        ("ARC2D+Fsck", Table.Right); ("Shell", Table.Right);
      ]
  in
  let line label f = Table.add_row t (label :: Array.to_list (Array.map f rows)) in
  line "Size of Executed OS Code (Bytes)" (fun r -> Table.cell_i r.executed_bytes);
  line "Size of Executed OS Code (%)" (fun r -> Table.cell_f ~decimals:1 r.executed_code_pct);
  line "Number of Executed OS BBs (%)" (fun r -> Table.cell_f ~decimals:1 r.executed_bb_pct);
  Array.iteri
    (fun ci c ->
      line
        (Service.to_string c ^ " Invoc. (% of Total)")
        (fun r -> Table.cell_pct r.invocation_pct.(ci)))
    Service.all;
  Result.report ~id:"table1" ~section:"Table 1: OS instruction-reference characteristics"
    [
      Result.of_table t;
      Result.paper
        "executed bytes 31,866 / 122,710 / 76,228 / 92,908 (3.4 / 13.1 / 8.1 / 9.9 %);";
      Result.paper
        "mix: interrupts 76.0/65.7/73.8/29.7, faults 23.0/21.3/21.9/12.0, syscalls 0.0/11.2/2.4/54.7";
    ]

let run ctx = Result.print (report ctx)
