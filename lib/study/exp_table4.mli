(** Table 4: the (ExecThresh, BranchThresh) schedule and the length (basic
    blocks and bytes) of the sequence each pass generates on the averaged
    profile. *)

type row = {
  service : Service.t;
  exec_thresh : float;
  branch_thresh : float;
  blocks : int;
  bytes : int;
}

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
