type result = {
  workload : string;
  bins : int array;
  touched_kb : int;
  top10_pct : float;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let base = Base.layout g ~order:ctx.Context.model.Model.base_order in
  let positions = Address_map.addr_array base in
  let sizes = Address_map.bytes_array base in
  Array.mapi
    (fun i (w, _) ->
      let p = ctx.Context.os_profiles.(i) in
      let words =
        Array.init (Graph.block_count g) (fun b ->
            int_of_float
              (p.Profile.block.(b)
              *. float_of_int (Block.instruction_words (Graph.block g b))))
      in
      let bins = Missmap.by_address ~positions ~sizes ~misses:words ~bin:1024 in
      let touched = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 bins in
      {
        workload = w.Workload.name;
        bins;
        touched_kb = touched;
        top10_pct = 100.0 *. Missmap.peak_fraction bins ~n:10;
      })
    ctx.Context.pairs

let top_bins r n = List.map fst (Missmap.peaks r.bins ~n)

let overlap_pct results =
  let n = Array.length results in
  if n < 2 then 100.0
  else begin
    let shares =
      Array.to_list results
      |> List.map (fun r ->
             let mine = top_bins r 20 in
             let everywhere =
               List.filter
                 (fun bin ->
                   Array.for_all
                     (fun (other : result) ->
                       bin < Array.length other.bins && other.bins.(bin) > 0)
                     results)
                 mine
             in
             Stats.pct (List.length everywhere) (List.length mine))
    in
    Stats.mean (Array.of_list shares)
  end

let report ctx =
  let results = compute ctx in
  let overlap = overlap_pct results in
  let per_workload =
    Array.to_list results
    |> List.map (fun r ->
           Result.note
             "%-10s: %d KB of address space touched; top-10 bins hold %.1f%% of refs"
             r.workload r.touched_kb r.top10_pct)
  in
  Result.report ~id:"fig2"
    ~section:"Figure 2: OS reference-address distribution per workload"
    (per_workload
    @ [
        Result.scalar ~label:"top20_overlap_pct" ~value:overlap
          ~text:
            (Printf.sprintf "top-20 peak bins referenced by every workload: %.0f%%"
               overlap);
        Result.paper
          "references are concentrated; peaks sit at similar addresses across workloads";
      ])

let run ctx = Result.print (report ctx)
