(** Figure 12: normalized references (OS vs application) and normalized
    misses under Base / C-H / OptS / OptL / OptA in an 8 KB direct-mapped
    cache with 32-byte lines, with the four-way miss breakdown. *)

type miss_bar = {
  level : Levels.level;
  os_self : int;
  os_cross : int;
  app_cross : int;
  app_self : int;
  total : int;
  normalized : float;  (** Total misses over Base total. *)
}

type row = {
  workload : string;
  os_ref_pct : float;
  bars : miss_bar array;  (** In {!Levels.all} order. *)
}

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
