(** Registry of every reproduced table and figure. *)

type t = {
  id : string;  (** e.g. "table1", "fig12". *)
  title : string;
  compute : Context.t -> Result.report;  (** The typed result. *)
}

val all : t list
(** In paper order. *)

val find : string -> t
(** @raise Not_found on an unknown id. *)

val compute : t -> Context.t -> Result.report
(** [e.compute], with the wall-clock spent recorded in the run
    {!Manifest} under the experiment's id. *)

val run : t -> Context.t -> unit
(** {!compute} rendered as text to stdout — the classic transcript. *)

val run_all : Context.t -> unit
