type run = { counters : Counters.t; os_block_misses : int array }

let default_warmup_fraction = 0.2

(* Replay distributions: how long one sweep member's share of a replay
   pass took and how fast passes decode events.  Observed per pass (and,
   for member seconds, once per member riding that pass), so batch fusion
   shows up as many members sharing one pass's wall-clock. *)
let member_seconds_hist =
  Metrics_registry.histogram ~unit_:"seconds" "simulate.member_seconds"

let events_per_sec_hist =
  Metrics_registry.histogram ~unit_:"events/s" "simulate.pass_events_per_sec"

let record_pass ~members ~events dt =
  for _ = 1 to members do
    Metrics_registry.observe member_seconds_hist
      (dt /. float_of_int (max 1 members))
  done;
  if dt > 0.0 then
    Metrics_registry.observe events_per_sec_hist (float_of_int events /. dt)

(* Warm-up thresholds count replayed executions (Replay.run_range only
   advances on exec events), so they must come from Trace.exec_count: a
   threshold derived from the marker-inclusive Trace.length would drift
   with invocation-marker density. *)
let warmup_of trace ~warmup_fraction =
  int_of_float (warmup_fraction *. float_of_int (Trace.exec_count trace))

let attribution_blocks program =
  Array.init (Program.image_count program) (fun k ->
      Graph.block_count (Program.graph program k))

let simulate (ctx : Context.t) ~layouts ~system ?(attribute_os = false)
    ?(warmup_fraction = default_warmup_fraction) ?jobs () =
  (* Each workload's replay is independent: a fresh System.t per slot, the
     shared trace/layout data is immutable, and results merge by index —
     so the output is bit-identical for every job count. *)
  Manifest.time "simulate" @@ fun () ->
  Trace_log.with_span "simulate"
    ~args:[ ("workloads", Json.Int (Array.length ctx.Context.pairs)) ]
  @@ fun () ->
  Parallel.map_array ?jobs
    (fun i (w, program) ->
      let trace = ctx.Context.traces.(i) in
      Trace_log.with_span "replay_pass"
        ~args:
          [
            ("workload", Json.String w.Workload.name);
            ("members", Json.Int 1);
            ("events", Json.Int (Trace.length trace));
            ("domain", Json.Int (Domain.self () :> int));
          ]
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let sys = system () in
      if attribute_os then
        System.enable_block_attribution sys ~images:(Program.image_count program)
          ~blocks:(attribution_blocks program);
      let map = Program_layout.code_map layouts.(i) in
      Replay.run_range ~trace ~map ~systems:[| sys |]
        ~warmup:(warmup_of trace ~warmup_fraction);
      record_pass ~members:1 ~events:(Trace.length trace)
        (Unix.gettimeofday () -. t0);
      {
        counters = System.counters sys;
        os_block_misses = (if attribute_os then System.block_misses sys ~image:0 else [||]);
      })
    ctx.Context.pairs

let run_of_entry (e : Sim_cache.entry) =
  { counters = e.counters; os_block_misses = e.os_block_misses }

let entry_of_run r =
  { Sim_cache.counters = r.counters; os_block_misses = r.os_block_misses }

let member_key ctx ~warmup_fraction ~attribute_os (layouts, config) =
  Sim_cache.key ~context:(Context.key ctx)
    ~layouts:(Array.map Program_layout.digest layouts)
    ~config ~warmup_fraction ~attribute_os

let simulate_config ctx ~layouts ~config ?(attribute_os = false)
    ?(warmup_fraction = default_warmup_fraction) ?jobs () =
  (* Unified-cache runs are fully described by (trace identity, layout
     digests, geometry, warm-up, attribution), so they memoize; arbitrary
     [system] closures in [simulate] cannot be keyed and never cache. *)
  let key = member_key ctx ~warmup_fraction ~attribute_os (layouts, config) in
  match Sim_cache.find key with
  | Some entries -> Array.map run_of_entry entries
  | None ->
      let runs =
        simulate ctx ~layouts
          ~system:(fun () -> System.unified config)
          ~attribute_os ~warmup_fraction ?jobs ()
      in
      Sim_cache.add key (Array.map entry_of_run runs);
      runs

let copy_run r =
  {
    counters = Counters.copy r.counters;
    os_block_misses = Array.copy r.os_block_misses;
  }

let simulate_batch ctx ~members ?(attribute_os = false)
    ?(warmup_fraction = default_warmup_fraction) ?jobs () =
  let n = Array.length members in
  let results : run array array = Array.make n [||] in
  if n > 0 then begin
    let keys =
      Array.map (member_key ctx ~warmup_fraction ~attribute_os) members
    in
    (* Consult the memo per member; hits skip replay entirely. *)
    let cached = Array.map Sim_cache.find keys in
    (* One representative per distinct uncached key (first occurrence
       wins); equal keys provably replay to equal results, so duplicates
       within the batch share the representative's runs. *)
    let rep_of_key : (Sim_cache.key, int) Hashtbl.t = Hashtbl.create 16 in
    let rev_reps = ref [] in
    Array.iteri
      (fun m k ->
        if cached.(m) = None && not (Hashtbl.mem rep_of_key k) then begin
          Hashtbl.add rep_of_key k m;
          rev_reps := m :: !rev_reps
        end)
      keys;
    let reps = Array.of_list (List.rev !rev_reps) in
    (* Group representatives by placement digest: members whose layouts
       resolve to the same code maps ride one replay pass per workload,
       with every member's cache system fed from the same decoded event
       stream. *)
    let group_of_digest : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let rev_groups = ref [] in
    Array.iter
      (fun m ->
        let layouts, _ = members.(m) in
        let d =
          String.concat "|"
            (Array.to_list (Array.map Program_layout.digest layouts))
        in
        match Hashtbl.find_opt group_of_digest d with
        | Some cell -> cell := m :: !cell
        | None ->
            let cell = ref [ m ] in
            Hashtbl.add group_of_digest d cell;
            rev_groups := cell :: !rev_groups)
      reps;
    let groups =
      List.rev !rev_groups
      |> List.map (fun cell -> Array.of_list (List.rev !cell))
      |> Array.of_list
    in
    if Array.length reps > 0 then begin
      (* One pass per (workload, layout group); workloads fan out across
         domains exactly like [simulate], merging by index. *)
      let per_workload =
        Manifest.time "simulate" @@ fun () ->
        Trace_log.with_span "simulate_batch"
          ~args:
            [
              ("members", Json.Int n);
              ("uncached", Json.Int (Array.length reps));
              ("groups", Json.Int (Array.length groups));
              ("workloads", Json.Int (Array.length ctx.Context.pairs));
            ]
        @@ fun () ->
        Parallel.map_array ?jobs
          (fun i (w, program) ->
            let trace = ctx.Context.traces.(i) in
            let warmup = warmup_of trace ~warmup_fraction in
            Array.map
              (fun group ->
                Trace_log.with_span "replay_pass"
                  ~args:
                    [
                      ("workload", Json.String w.Workload.name);
                      ("members", Json.Int (Array.length group));
                      ("events", Json.Int (Trace.length trace));
                      ("domain", Json.Int (Domain.self () :> int));
                    ]
                @@ fun () ->
                let t0 = Unix.gettimeofday () in
                let rep_layouts, _ = members.(group.(0)) in
                let map = Program_layout.code_map rep_layouts.(i) in
                let systems =
                  Array.map
                    (fun m ->
                      let sys = System.unified (snd members.(m)) in
                      if attribute_os then
                        System.enable_block_attribution sys
                          ~images:(Program.image_count program)
                          ~blocks:(attribution_blocks program);
                      sys)
                    group
                in
                Replay.run_range ~trace ~map ~systems ~warmup;
                record_pass ~members:(Array.length group)
                  ~events:(Trace.length trace)
                  (Unix.gettimeofday () -. t0);
                Array.map
                  (fun sys ->
                    {
                      counters = System.counters sys;
                      os_block_misses =
                        (if attribute_os then System.block_misses sys ~image:0
                         else [||]);
                    })
                  systems)
              groups)
          ctx.Context.pairs
      in
      (* Transpose (workload, group, slot) -> per-member workload runs and
         publish them to the memo, so later sweeps (and duplicates below)
         are served from cache. *)
      let workloads = Array.length ctx.Context.pairs in
      Array.iteri
        (fun g group ->
          Array.iteri
            (fun j m ->
              let runs =
                Array.init workloads (fun i -> per_workload.(i).(g).(j))
              in
              Sim_cache.add keys.(m) (Array.map entry_of_run runs);
              results.(m) <- runs)
            group)
        groups
    end;
    (* Cache hits and within-batch duplicates. *)
    Array.iteri
      (fun m entries ->
        match entries with
        | Some entries -> results.(m) <- Array.map run_of_entry entries
        | None ->
            if Array.length results.(m) = 0 then
              let rep = Hashtbl.find rep_of_key keys.(m) in
              results.(m) <- Array.map copy_run results.(rep))
      cached;
    let cache_hits =
      Array.fold_left (fun acc c -> if c = None then acc else acc + 1) 0 cached
    in
    let simulated = Array.length reps in
    let group_count = Array.length groups in
    let workloads = Array.length ctx.Context.pairs in
    let total_events =
      Array.fold_left (fun acc t -> acc + Trace.length t) 0 ctx.Context.traces
    in
    Manifest.record_batch ~members:n ~cache_hits ~simulated
      ~replay_passes:(group_count * workloads)
      ~passes_saved:((simulated - group_count) * workloads)
      ~events_replayed:(group_count * total_events)
      ~events_saved:((simulated - group_count) * total_events)
  end;
  results

let total runs =
  let acc = Counters.create () in
  Array.iter (fun r -> Counters.add acc r.counters) runs;
  acc
