type run = { counters : Counters.t; os_block_misses : int array }

let default_warmup_fraction = 0.2

let simulate (ctx : Context.t) ~layouts ~system ?(attribute_os = false)
    ?(warmup_fraction = default_warmup_fraction) ?jobs () =
  (* Each workload's replay is independent: a fresh System.t per slot, the
     shared trace/layout data is immutable, and results merge by index —
     so the output is bit-identical for every job count. *)
  Manifest.time "simulate" @@ fun () ->
  Parallel.map_array ?jobs
    (fun i (_w, program) ->
      let sys = system () in
      if attribute_os then begin
        let blocks =
          Array.init (Program.image_count program) (fun k ->
              Graph.block_count (Program.graph program k))
        in
        System.enable_block_attribution sys ~images:(Program.image_count program)
          ~blocks
      end;
      let map = Program_layout.code_map layouts.(i) in
      let trace = ctx.Context.traces.(i) in
      let warmup =
        int_of_float (warmup_fraction *. float_of_int (Trace.length trace))
      in
      Replay.run_range ~trace ~map ~systems:[ sys ] ~warmup;
      {
        counters = System.counters sys;
        os_block_misses = (if attribute_os then System.block_misses sys ~image:0 else [||]);
      })
    ctx.Context.pairs

let simulate_config ctx ~layouts ~config ?(attribute_os = false)
    ?(warmup_fraction = default_warmup_fraction) ?jobs () =
  (* Unified-cache runs are fully described by (trace identity, layout
     digests, geometry, warm-up, attribution), so they memoize; arbitrary
     [system] closures in [simulate] cannot be keyed and never cache. *)
  let key =
    Sim_cache.key ~context:(Context.key ctx)
      ~layouts:(Array.map Program_layout.digest layouts)
      ~config ~warmup_fraction ~attribute_os
  in
  match Sim_cache.find key with
  | Some entries ->
      Array.map
        (fun (e : Sim_cache.entry) ->
          { counters = e.counters; os_block_misses = e.os_block_misses })
        entries
  | None ->
      let runs =
        simulate ctx ~layouts
          ~system:(fun () -> System.unified config)
          ~attribute_os ~warmup_fraction ?jobs ()
      in
      Sim_cache.add key
        (Array.map
           (fun r ->
             {
               Sim_cache.counters = r.counters;
               os_block_misses = r.os_block_misses;
             })
           runs);
      runs

let total runs =
  let acc = Counters.create () in
  Array.iter (fun r -> Counters.add acc r.counters) runs;
  acc
