(** Figure 2: number of references to OS code as a function of code
    virtual address (1 KB bins), one chart per workload; shows that the
    references concentrate in narrow shared regions. *)

type result = {
  workload : string;
  bins : int array;  (** Reference words per 1 KB of Base address space. *)
  touched_kb : int;  (** Bins with any references. *)
  top10_pct : float;  (** Share of references in the 10 busiest bins. *)
}

val compute : Context.t -> result array

val overlap_pct : result array -> float
(** Share of each workload's busiest 20 bins also busy in every other
    workload (averaged) - the paper's "peaks are in similar positions". *)

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
