(** Run manifest: the observability layer of a reproduction run.

    A process-global, domain-safe recorder of where the wall-clock time of
    a run went and what it was a run {e of}.  The pipeline's hot stages
    report here ({!Context.create} times trace capture, {!Levels.build}
    times layout construction on memo misses, {!Runner.simulate} times
    trace replay), the experiment drivers report per-experiment totals,
    and {!Sim_cache}'s hit/miss counters are sampled at emission time.
    [icache-opt repro --format json] and the bench harness emit the
    manifest as JSON so the perf trajectory is recorded run over run
    instead of scraped from ad-hoc prints.

    JSON schema (see DESIGN.md for a worked example):
    {v
    { "schema_version": 4,
      "run": { "spec_seed": int, "spec_digest": hex, "words": int,
               "seed": int, "jobs": int, "context_key": hex,
               "gc": { "minor_collections": int, "major_collections": int,
                       "compactions": int, "minor_words": float,
                       "promoted_words": float, "major_words": float,
                       "heap_words": int, "top_heap_words": int } } | null,
      "stages": [ { "name": string, "count": int, "seconds": float } ],
      "sim_cache": { "hits": int, "misses": int, "lookups": int,
                     "hit_rate": float },
      "layout": { "stages": [ { "name": string, "hits": int,
                                "misses": int, "lookups": int,
                                "seconds": float } ],
                  "hit_rate": float },
      "batch": { "calls": int, "members": int, "cache_hits": int,
                 "simulated": int, "replay_passes": int,
                 "passes_saved": int, "events_replayed": int,
                 "events_saved": int },
      "experiments": [ { "id": string, "seconds": float } ],
      "metrics": { "counters": {..}, "gauges": {..}, "histograms": {..} } }
    v}

    Schema v4 additions: [run.gc] samples [Gc.quick_stat] at emission time
    so allocation pressure is part of the perf trajectory, and [metrics]
    embeds the whole {!Metrics_registry} snapshot (cache lookup counters,
    replay-time histograms, parallel fan-out statistics — see
    {!Metrics_registry.to_json} for the shape).

    The [batch] object aggregates {!Runner.simulate_batch} effectiveness:
    how many sweep members were requested, how many were served from
    {!Sim_cache}, how many were actually simulated, and how many
    (workload x member) replay passes / decoded trace events the fused
    path spent versus what per-member sequential replay would have cost.

    The [layout] object (schema v3) samples {!Layout_cache}: one entry
    per construction stage of the staged layout pipeline (sequences, SCF
    selection, the loop-statistics pass, placement, and the shared C-H
    OS placement), with per-stage hit/miss/lookup counters and the
    wall-clock spent building values on misses.

    Invariants (checked by [icache-opt validate] and the test suite):
    every [seconds] and every [count] is non-negative,
    [sim_cache.hits + sim_cache.misses = sim_cache.lookups], each layout
    stage's [hits + misses = lookups], and
    [batch.cache_hits + batch.simulated <= batch.members]. *)

val time : string -> (unit -> 'a) -> 'a
(** [time stage f] runs [f], adding its wall-clock duration (and one
    invocation) to the per-stage aggregate for [stage]. *)

val record_stage : string -> float -> unit
(** Add [seconds] of one invocation to [stage]'s aggregate directly. *)

val set_run :
  spec_seed:int ->
  spec_digest:string ->
  words:int ->
  seed:int ->
  jobs:int ->
  context_key:string ->
  unit
(** Record the run's identity.  First writer wins: the first (usually
    main) context built in the process defines the run; sub-contexts
    built by individual experiments do not overwrite it. *)

val record_experiment : id:string -> seconds:float -> unit
(** Append one experiment's wall-clock total (in completion order). *)

val record_batch :
  members:int ->
  cache_hits:int ->
  simulated:int ->
  replay_passes:int ->
  passes_saved:int ->
  events_replayed:int ->
  events_saved:int ->
  unit
(** Fold one {!Runner.simulate_batch} call into the aggregate batch
    statistics (and count the call itself). *)

val to_json : unit -> Json.t
(** Snapshot the manifest, sampling {!Sim_cache} counters now. *)

val reset : unit -> unit
(** Clear stages, experiments and the run identity (tests). *)
