type row = {
  workload : string;
  dynamic_pct : float;
  static_executed_pct : float;
  static_pct : float;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let loops = Context.os_loops ctx in
  Array.mapi
    (fun i (w, _) ->
      let p = ctx.Context.os_profiles.(i) in
      {
        workload = w.Workload.name;
        dynamic_pct = 100.0 *. Loopstat.dynamic_share_without_calls g p loops;
        static_executed_pct =
          100.0 *. Loopstat.static_executed_share_without_calls g p loops;
        static_pct = 100.0 *. Loopstat.static_share_without_calls ~profile:p g loops;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left);
        ("Dyn Loops/Dyn OS (%)", Table.Right);
        ("Static Loops/Static Exec'd OS (%)", Table.Right);
        ("Static Loops/Static OS (%)", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      Table.add_row t
        [
          r.workload;
          Table.cell_f ~decimals:1 r.dynamic_pct;
          Table.cell_f ~decimals:1 r.static_executed_pct;
          Table.cell_f ~decimals:1 r.static_pct;
        ])
    rows;
  Result.report ~id:"table3"
    ~section:"Table 3: OS instructions in loops without procedure calls"
    [
      Result.of_table t;
      Result.paper "dynamic 28.9-39.4%; static-executed 2.7-3.9%; static 0.1-0.4%";
    ]

let run ctx = Result.print (report ctx)
