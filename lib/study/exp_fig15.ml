type point = {
  size_kb : int;
  workload : string;
  base_pct : float;
  ch_pct : float;
  opt_s_pct : float;
  speedups : float array;
}

let levels = [| Levels.Base; Levels.CH; Levels.OptS |]

let compute (ctx : Context.t) =
  let sizes = [| 4; 8; 16; 32 |] in
  (* The whole (cache size x level) grid goes through one batch: the Base
     and C-H placements do not depend on the cache size, so their four
     geometries share a single replay pass per workload. *)
  let members =
    Array.concat
      (Array.to_list
         (Array.map
            (fun size_kb ->
              let config = Config.make ~size_kb () in
              let params = Opt.params ~cache_size:(size_kb * 1024) () in
              Array.map
                (fun level -> (Levels.build ctx ~params level, config))
                levels)
            sizes))
  in
  let batch = Runner.simulate_batch ctx ~members () in
  let points = ref [] in
  Array.iteri
    (fun si size_kb ->
      let rates k =
        Array.map
          (fun (r : Runner.run) -> Counters.miss_rate r.Runner.counters)
          batch.((si * Array.length levels) + k)
      in
      let base = rates 0 in
      let ch = rates 1 in
      let opt_s = rates 2 in
      Array.iteri
        (fun i (w, _) ->
          points :=
            {
              size_kb;
              workload = w.Workload.name;
              base_pct = 100.0 *. base.(i);
              ch_pct = 100.0 *. ch.(i);
              opt_s_pct = 100.0 *. opt_s.(i);
              speedups =
                Array.map
                  (fun penalty ->
                    Speedup.speed_increase ~base_miss_rate:base.(i)
                      ~opt_miss_rate:opt_s.(i) ~penalty)
                  Speedup.penalties;
            }
            :: !points)
        ctx.Context.pairs)
    sizes;
  Array.of_list (List.rev !points)

let report ctx =
  let points = compute ctx in
  let t =
    Table.create
      [
        ("Cache", Table.Right); ("Workload", Table.Left);
        ("Base%", Table.Right); ("C-H%", Table.Right); ("OptS%", Table.Right);
        ("spd@10", Table.Right); ("spd@30", Table.Right); ("spd@50", Table.Right);
      ]
  in
  Array.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%dKB" p.size_kb; p.workload;
          Table.cell_f ~decimals:3 p.base_pct;
          Table.cell_f ~decimals:3 p.ch_pct;
          Table.cell_f ~decimals:3 p.opt_s_pct;
          Table.cell_f ~decimals:1 p.speedups.(0);
          Table.cell_f ~decimals:1 p.speedups.(1);
          Table.cell_f ~decimals:1 p.speedups.(2);
        ])
    points;
  Result.report ~id:"fig15"
    ~section:"Figure 15: miss rates and speedups vs cache size (DM, 32B)"
    [
      Result.of_table t;
      Result.paper
        "Base 0.87-6.75%; C-H cuts 39-60%; OptS cuts a further 19-38% below C-H for";
      Result.paper
        "4-16KB, ~equal at 32KB; 30-cycle penalty yields ~10-25% speed increase";
    ]

let run ctx = Result.print (report ctx)
