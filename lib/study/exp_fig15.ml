type point = {
  size_kb : int;
  workload : string;
  base_pct : float;
  ch_pct : float;
  opt_s_pct : float;
  speedups : float array;
}

let compute (ctx : Context.t) =
  let sizes = [| 4; 8; 16; 32 |] in
  let points = ref [] in
  Array.iter
    (fun size_kb ->
      let config = Config.make ~size_kb () in
      let params = Opt.params ~cache_size:(size_kb * 1024) () in
      let rates level =
        let layouts = Levels.build ctx ~params level in
        let runs = Runner.simulate_config ctx ~layouts ~config () in
        Array.map (fun (r : Runner.run) -> Counters.miss_rate r.Runner.counters) runs
      in
      let base = rates Levels.Base in
      let ch = rates Levels.CH in
      let opt_s = rates Levels.OptS in
      Array.iteri
        (fun i (w, _) ->
          points :=
            {
              size_kb;
              workload = w.Workload.name;
              base_pct = 100.0 *. base.(i);
              ch_pct = 100.0 *. ch.(i);
              opt_s_pct = 100.0 *. opt_s.(i);
              speedups =
                Array.map
                  (fun penalty ->
                    Speedup.speed_increase ~base_miss_rate:base.(i)
                      ~opt_miss_rate:opt_s.(i) ~penalty)
                  Speedup.penalties;
            }
            :: !points)
        ctx.Context.pairs)
    sizes;
  Array.of_list (List.rev !points)

let report ctx =
  let points = compute ctx in
  let t =
    Table.create
      [
        ("Cache", Table.Right); ("Workload", Table.Left);
        ("Base%", Table.Right); ("C-H%", Table.Right); ("OptS%", Table.Right);
        ("spd@10", Table.Right); ("spd@30", Table.Right); ("spd@50", Table.Right);
      ]
  in
  Array.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%dKB" p.size_kb; p.workload;
          Table.cell_f ~decimals:3 p.base_pct;
          Table.cell_f ~decimals:3 p.ch_pct;
          Table.cell_f ~decimals:3 p.opt_s_pct;
          Table.cell_f ~decimals:1 p.speedups.(0);
          Table.cell_f ~decimals:1 p.speedups.(1);
          Table.cell_f ~decimals:1 p.speedups.(2);
        ])
    points;
  Result.report ~id:"fig15"
    ~section:"Figure 15: miss rates and speedups vs cache size (DM, 32B)"
    [
      Result.of_table t;
      Result.paper
        "Base 0.87-6.75%; C-H cuts 39-60%; OptS cuts a further 19-38% below C-H for";
      Result.paper
        "4-16KB, ~equal at 32KB; 30-cycle penalty yields ~10-25% speed increase";
    ]

let run ctx = Result.print (report ctx)
