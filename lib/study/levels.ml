type level = Base | CH | OptS | OptL | OptA

let all = [| Base; CH; OptS; OptL; OptA |]

let to_string = function
  | Base -> "Base"
  | CH -> "C-H"
  | OptS -> "OptS"
  | OptL -> "OptL"
  | OptA -> "OptA"

let of_string s =
  match String.lowercase_ascii s with
  | "base" -> Ok Base
  | "ch" | "c-h" -> Ok CH
  | "opts" -> Ok OptS
  | "optl" -> Ok OptL
  | "opta" -> Ok OptA
  | other ->
      Error
        (Printf.sprintf "unknown layout level %S (expected base, ch, opts, optl or opta)"
           other)

(* Layout construction is deterministic in (context, level, params) and
   several experiments rebuild the same five levels, so memoize.  Layouts
   are immutable once built (variants go through with_os_map, which
   copies), so sharing one array across experiments is safe. *)
let memo : (string, Program_layout.t array) Hashtbl.t = Hashtbl.create 16
let memo_lock = Mutex.create ()

let build_uncached (ctx : Context.t) ?jobs ~params level =
  let model = ctx.Context.model in
  let os_profile = ctx.Context.avg_os_profile in
  let build ((w : Workload.t), program) =
    Trace_log.with_span "build_pair"
      ~args:
        [
          ("level", Json.String (to_string level));
          ("workload", Json.String w.Workload.name);
          ("domain", Json.Int (Domain.self () :> int));
        ]
    @@ fun () ->
    match level with
    | Base -> Program_layout.base ~model ~program
    | CH -> Program_layout.chang_hwu ~model ~program ~os_profile
    | OptS -> Program_layout.opt_s ~model ~program ~os_profile ~params ()
    | OptL -> Program_layout.opt_l ~model ~program ~os_profile ~params ()
    | OptA ->
        let app_profiles =
          Array.map ctx.Context.avg_app_profile program.Program.apps
        in
        Program_layout.opt_a ~model ~program ~os_profile ~app_profiles ~params ()
  in
  let pairs = ctx.Context.pairs in
  if Array.length pairs <= 1 then Array.map build pairs
  else begin
    (* Warm the shared OS-side stage caches on the first pair before
       fanning out: every workload of a level shares the same OS
       placement, so without the warm-up each domain would race to
       rebuild it (correct — first store wins — but wasted work).  The
       fan-out then parallelizes only the genuinely per-workload part
       (application placements). *)
    let first = build pairs.(0) in
    let rest =
      Parallel.map_array ?jobs
        (fun _ pair -> build pair)
        (Array.sub pairs 1 (Array.length pairs - 1))
    in
    Array.append [| first |] rest
  end

let build ctx ?(params = Opt.params ()) level =
  (* Base and C-H never consume [params] (see [build_uncached]), so their
     memo key must not include it: a cache-size sweep would otherwise
     rebuild the identical placement once per geometry. *)
  let params_part =
    match level with
    | Base | CH -> "-"
    | OptS | OptL | OptA ->
        Digest.to_hex (Digest.string (Marshal.to_string (params : Opt.params) []))
  in
  let key = Context.key ctx ^ "|" ^ to_string level ^ "|" ^ params_part in
  match Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key) with
  | Some layouts -> layouts
  | None ->
      let layouts =
        Manifest.time "levels_build" (fun () ->
            Trace_log.with_span "levels_build"
              ~args:[ ("level", Json.String (to_string level)) ]
              (fun () -> build_uncached ctx ~params level))
      in
      Mutex.protect memo_lock (fun () ->
          if not (Hashtbl.mem memo key) then Hashtbl.add memo key layouts);
      layouts

let build_opt_s_with ctx ~params = build ctx ~params OptS

let code_maps layouts = Array.map Program_layout.code_map layouts
