type result = {
  loop_count : int;
  iters_le_10_pct : float;
  median_size_bytes : float;
  max_size_bytes : int;
  iteration_bins : (string * int) list;
  size_bins : (string * int) list;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let loops = Context.os_loops ctx in
  let union = Profile.average (Array.to_list ctx.Context.os_profiles) in
  let infos = Loopstat.analyze g union loops in
  let with_calls = snd (Loopstat.split_by_calls infos) in
  let n = List.length with_calls in
  let iters =
    Array.of_list
      (List.map (fun (i : Loopstat.info) -> i.iterations_per_invocation) with_calls)
  in
  let le k = Array.fold_left (fun acc v -> if v <= k then acc + 1 else acc) 0 iters in
  let iter_hist = Histogram.explicit [| 2; 4; 6; 10; 25; 50 |] in
  Array.iter (fun v -> Histogram.add iter_hist (int_of_float v)) iters;
  let sizes =
    Array.of_list
      (List.map
         (fun (i : Loopstat.info) -> float_of_int i.executed_bytes_with_callees)
         with_calls)
  in
  let size_hist = Histogram.explicit [| 256; 512; 1024; 2048; 4096; 8192; 16384 |] in
  Array.iter (fun v -> Histogram.add size_hist (int_of_float v)) sizes;
  {
    loop_count = n;
    iters_le_10_pct = Stats.pct (le 10.0) n;
    median_size_bytes = Stats.median sizes;
    max_size_bytes = int_of_float (if Array.length sizes = 0 then 0.0 else Stats.maximum sizes);
    iteration_bins = Histogram.to_list iter_hist;
    size_bins = Histogram.to_list size_hist;
  }

let report ctx =
  let r = compute ctx in
  Result.report ~id:"fig5" ~section:"Figure 5: loops with procedure calls"
    [
      Result.note "executed loops with calls: %d" r.loop_count;
      Result.series ~label:"  iterations per invocation"
        (List.map (fun (l, c) -> (l, float_of_int c)) r.iteration_bins);
      Result.series ~label:"  executed static size incl. callees (bytes)"
        (List.map (fun (l, c) -> (l, float_of_int c)) r.size_bins);
      Result.note "loops with <= 10 iterations/invocation: %.0f%%" r.iters_le_10_pct;
      Result.note "median executed size incl. callees: %.0f bytes (max %d)"
        r.median_size_bytes r.max_size_bytes;
      Result.paper "71 loops; usually <= 10 iterations; median size 2KB, a few above 16KB";
    ]

let run ctx = Result.print (report ctx)
