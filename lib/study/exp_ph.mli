(** Baseline comparison beyond the paper: Base / Chang-Hwu /
    Pettis-Hansen / OptS miss rates on the 8 KB direct-mapped cache. *)

type row = { workload : string; rates : (string * float) list }

val levels : string list

val compute : Context.t -> row array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
