(* Profile cross-validation.

   The paper builds its layouts from the {e average} profile of all four
   workloads and argues (Figure 2) that the popular OS routines are
   common to all of them.  This experiment quantifies that: an OptS layout
   is built from each single workload's profile and evaluated on every
   workload, normalized to the layout built from the workload's own
   profile.  Values near 1.0 off the diagonal mean profiles transfer. *)

type result = {
  names : string array;
  matrix : float array array;
      (** [matrix.(i).(j)]: misses of workload [j] under the layout built
          from workload [i]'s profile, over workload [j]'s misses under
          its own-profile layout. *)
  average_row : float array;  (** The paper's averaged-profile layout. *)
}

let compute (ctx : Context.t) =
  let model = ctx.Context.model in
  let loops = Context.os_loops ctx in
  let layout_from profile =
    (Opt.os_layout ~model ~profile ~loops (Opt.params ())).Opt.map
  in
  let misses_under os_map =
    let layouts =
      Array.map
        (fun ((_ : Workload.t), program) ->
          Program_layout.with_os_map
            (Program_layout.base ~model ~program)
            ~name:"xval" os_map ~os_meta:None)
        ctx.Context.pairs
    in
    Runner.simulate_config ctx ~layouts ~config:(Config.make ~size_kb:8 ()) ()
    |> Array.map (fun (r : Runner.run) -> Counters.misses r.Runner.counters)
  in
  let n = Context.workload_count ctx in
  let per_profile =
    Array.init n (fun i -> misses_under (layout_from ctx.Context.os_profiles.(i)))
  in
  let own = Array.init n (fun j -> per_profile.(j).(j)) in
  let avg = misses_under (layout_from ctx.Context.avg_os_profile) in
  {
    names = Context.workload_names ctx;
    matrix =
      Array.init n (fun i ->
          Array.init n (fun j -> Stats.ratio per_profile.(i).(j) own.(j)));
    average_row = Array.init n (fun j -> Stats.ratio avg.(j) own.(j));
  }

let report ctx =
  let r = compute ctx in
  let t =
    Table.create
      (("profile \\ evaluated on", Table.Left)
      :: Array.to_list (Array.map (fun n -> (n, Table.Right)) r.names))
  in
  Array.iteri
    (fun i row ->
      Table.add_row t
        (r.names.(i) :: Array.to_list (Array.map Table.cell_f row)))
    r.matrix;
  Table.add_separator t;
  Table.add_row t
    ("average (paper)" :: Array.to_list (Array.map Table.cell_f r.average_row));
  Result.report ~id:"crossval"
    ~section:"Cross-validation: layout from one profile, evaluated on all"
    [
      Result.of_table t;
      Result.note "1.00 on the diagonal by construction; off-diagonal near 1 = profiles";
      Result.note "transfer (the popular routines are shared, Figure 2); the averaged";
      Result.note "profile is the safe choice the paper made";
    ]

let run ctx = Result.print (report ctx)
