type result = { bins : Arcstat.bin array; ge_99 : float; le_01 : float }

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let union = Profile.average (Array.to_list ctx.Context.os_profiles) in
  let bins = Arcstat.distribution union g () in
  {
    bins;
    ge_99 = Arcstat.fraction_at_least bins 0.95;
    le_01 = Arcstat.fraction_at_most bins 0.01;
  }

let report ctx =
  let r = compute ctx in
  let series =
    Array.to_list r.bins
    |> List.map (fun (b : Arcstat.bin) ->
           (Printf.sprintf "(%.2f,%.2f]" b.Arcstat.lo b.Arcstat.hi,
            float_of_int b.Arcstat.count))
  in
  Result.report ~id:"fig3"
    ~section:"Figure 3: outgoing-arc transition-probability distribution"
    [
      Result.series ~label:"  arcs per probability bin" series;
      Result.scalar ~label:"arcs_ge_95_pct" ~value:(100.0 *. r.ge_99)
        ~text:(Printf.sprintf "arcs with probability >= 0.95: %.1f%%" (100.0 *. r.ge_99));
      Result.scalar ~label:"arcs_le_01_pct" ~value:(100.0 *. r.le_01)
        ~text:(Printf.sprintf "arcs with probability <= 0.01: %.1f%%" (100.0 *. r.le_01));
      Result.paper "73.6% of arcs have probability >= 0.99; 6.9% have <= 0.01 (bimodal)";
    ]

let run ctx = Result.print (report ctx)
