type row = {
  workload : string;
  core_pred : Seqstat.predictability;
  core_weight : Seqstat.weight;
  regular_pred : Seqstat.predictability;
  regular_weight : Seqstat.weight;
}

type result = { core : Seqstat.set; regular : Seqstat.set; rows : row array }

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let model = ctx.Context.model in
  let seed_entry c = (Model.seed_for model c).Model.entry in
  let seqs =
    Sequence.build ~graph:g ~profile:ctx.Context.avg_os_profile ~seed_entry
      ~schedule:Schedule.paper ()
  in
  let core = Seqstat.of_sequences g seqs ~budget_bytes:8192 in
  let regular = Seqstat.of_sequences g seqs ~budget_bytes:16384 in
  (* Misses measured under the Base layout, 8 KB DM, 32 B lines. *)
  let layouts = Levels.build ctx Levels.Base in
  let runs =
    (Runner.simulate_batch ctx
       ~members:[| (layouts, Config.make ~size_kb:8 ()) |]
       ~attribute_os:true ())
      .(0)
  in
  let rows =
    Array.mapi
      (fun i (w, _) ->
        let trace = ctx.Context.traces.(i) in
        let p = ctx.Context.os_profiles.(i) in
        let misses = runs.(i).Runner.os_block_misses in
        {
          workload = w.Workload.name;
          core_pred = Seqstat.predictability core ~trace;
          core_weight = Seqstat.weight core ~graph:g ~profile:p ~os_block_misses:misses;
          regular_pred = Seqstat.predictability regular ~trace;
          regular_weight =
            Seqstat.weight regular ~graph:g ~profile:p ~os_block_misses:misses;
        })
      ctx.Context.pairs
  in
  { core; regular; rows }

let report ctx =
  let r = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left);
        ("core P(any)", Table.Right); ("core P(next)", Table.Right);
        ("core BB%", Table.Right); ("core ref%", Table.Right); ("core miss%", Table.Right);
        ("reg P(any)", Table.Right); ("reg P(next)", Table.Right);
        ("reg BB%", Table.Right); ("reg ref%", Table.Right); ("reg miss%", Table.Right);
      ]
  in
  Array.iter
    (fun row ->
      Table.add_row t
        [
          row.workload;
          Table.cell_f row.core_pred.Seqstat.to_any;
          Table.cell_f row.core_pred.Seqstat.to_next;
          Table.cell_f ~decimals:1 row.core_weight.Seqstat.static_pct;
          Table.cell_f ~decimals:1 row.core_weight.Seqstat.refs_pct;
          Table.cell_f ~decimals:1 row.core_weight.Seqstat.misses_pct;
          Table.cell_f row.regular_pred.Seqstat.to_any;
          Table.cell_f row.regular_pred.Seqstat.to_next;
          Table.cell_f ~decimals:1 row.regular_weight.Seqstat.static_pct;
          Table.cell_f ~decimals:1 row.regular_weight.Seqstat.refs_pct;
          Table.cell_f ~decimals:1 row.regular_weight.Seqstat.misses_pct;
        ])
    r.rows;
  Result.report ~id:"table2" ~section:"Table 2: sequence predictability and weight"
    [
      Result.note "core sequences: %d BBs spanning %d routines, %d bytes (budget 8KB)"
        r.core.Seqstat.block_count r.core.Seqstat.routine_count r.core.Seqstat.bytes;
      Result.note "regular sequences: %d BBs spanning %d routines, %d bytes (budget 16KB)"
        r.regular.Seqstat.block_count r.regular.Seqstat.routine_count
        r.regular.Seqstat.bytes;
      Result.of_table t;
      Result.paper
        "core: P(any) 0.95-0.99, P(next) 0.71-0.77, 7-28% BBs, 23-67% refs, 35-75% misses;";
      Result.paper
        "regular: P(any) 0.96-0.98, P(next) 0.77-0.79, 13-38% BBs, 38-74% refs, 57-88% misses";
    ]

let run ctx = Result.print (report ctx)
