(** Replacement-policy sensitivity (beyond the paper): the Base and OptS
    miss rates on a 4-way 8 KB cache under LRU, FIFO and random
    replacement. *)

type row = {
  workload : string;
  rates : (string * float * float) array;  (** policy, Base, OptS. *)
}

val policies : (string * Config.policy) array

val compute : Context.t -> row array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
