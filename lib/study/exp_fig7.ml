type result = {
  bins : (string * int) list;
  within_100_pct : float;
  within_1000_pct : float;
  last_inv_pct : float;
  top_routines : string list;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let union = Profile.average (Array.to_list ctx.Context.os_profiles) in
  let top = Popularity.top_routines union g ~n:10 in
  let routines = List.map fst top in
  let merged = Histogram.explicit Reuse.default_edges in
  let last_inv = ref 0 and calls = ref 0 in
  Array.iter
    (fun trace ->
      let r = Reuse.measure ~trace ~graph:g ~routines () in
      Histogram.merge merged r.Reuse.histogram;
      last_inv := !last_inv + r.Reuse.last_invocation;
      calls := !calls + r.Reuse.calls)
    ctx.Context.traces;
  let events = !calls in
  let cum_le edge_idx = 100.0 *. Histogram.cumulative_fraction_below merged edge_idx in
  (* Edge indices: bucket 2 ends at 100 words, bucket 5 at 1000. *)
  {
    bins = Histogram.to_list merged;
    within_100_pct = cum_le 2 *. float_of_int (Histogram.total merged) /. float_of_int events;
    within_1000_pct = cum_le 5 *. float_of_int (Histogram.total merged) /. float_of_int events;
    last_inv_pct = Stats.pct !last_inv events;
    top_routines = List.map (Model.routine_name ctx.Context.model) routines;
  }

let report ctx =
  let r = compute ctx in
  Result.report ~id:"fig7" ~section:"Figure 7: temporal reuse of the 10 hottest routines"
    [
      Result.note "top routines: %s" (String.concat ", " r.top_routines);
      Result.series ~label:"  words between consecutive calls (same OS invocation)"
        (List.map (fun (l, c) -> (l, float_of_int c)) r.bins);
      Result.note "called again within 100 words: %.0f%% of calls" r.within_100_pct;
      Result.note "called again within 1000 words: %.0f%% of calls" r.within_1000_pct;
      Result.note "not called again in same invocation: %.0f%%" r.last_inv_pct;
      Result.paper
        "~25% of calls recur within 100 words, ~70% within 1000; ~9% are last in invocation";
    ]

let run ctx = Result.print (report ctx)
