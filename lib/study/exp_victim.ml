(* Software layout vs hardware victim cache (Jouppi 1990).

   The paper shows OptS beating higher associativity (Figure 17b) and the
   Sep/Resv organizations (Figure 18).  The victim cache is the remaining
   classic hardware answer to conflict misses: does a few-line
   fully-associative buffer next to the direct-mapped cache make the
   software layout unnecessary?  And do the two compose? *)

type row = {
  workload : string;
  rates : (string * float) list;
      (** setup name -> miss rate, for Base / Base+victim(4/8/16) /
          OptS / OptS+victim(8). *)
}

let setups =
  [
    ("Base", Levels.Base, None);
    ("Base+V4", Levels.Base, Some 4);
    ("Base+V8", Levels.Base, Some 8);
    ("Base+V16", Levels.Base, Some 16);
    ("OptS", Levels.OptS, None);
    ("OptS+V8", Levels.OptS, Some 8);
  ]

let compute (ctx : Context.t) =
  let main = Config.make ~size_kb:8 () in
  (* The two plain unified setups go through one batch up front; the
     victim-cache systems need System.victim and stay on the general path. *)
  let plain =
    Runner.simulate_batch ctx
      ~members:
        [| (Levels.build ctx Levels.Base, main); (Levels.build ctx Levels.OptS, main) |]
      ()
  in
  let rates =
    List.map
      (fun (name, level, entries) ->
        let layouts = Levels.build ctx level in
        let runs =
          match (entries, level) with
          | None, Levels.Base -> plain.(0)
          | None, _ -> plain.(1)
          | Some entries, _ ->
              Runner.simulate ctx ~layouts
                ~system:(fun () -> System.victim ~main ~entries)
                ()
        in
        (name, Array.map (fun (r : Runner.run) -> Counters.miss_rate r.Runner.counters) runs))
      setups
  in
  Array.mapi
    (fun i ((w : Workload.t), _) ->
      { workload = w.Workload.name; rates = List.map (fun (n, r) -> (n, r.(i))) rates })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      (("Workload", Table.Left)
      :: List.map (fun (n, _, _) -> (n ^ " %", Table.Right)) setups)
  in
  Array.iter
    (fun r ->
      Table.add_row t
        (r.workload
        :: List.map (fun (_, rate) -> Table.cell_f ~decimals:3 (100.0 *. rate)) r.rates))
    rows;
  Result.report ~id:"victim"
    ~section:"Victim cache vs software layout (8KB DM main, 32B lines)"
    [
      Result.of_table t;
      Result.note
        "the buffer soaks up ping-pong conflicts cheaply, but OptS removes them at";
      Result.note "the source; the two compose (OptS+V8 is the floor of every row)";
    ]

let run ctx = Result.print (report ctx)
