(** Conflict-vs-capacity miss decomposition: the fully-associative LRU
    floor from stack distances against the simulated direct-mapped misses
    under Base and OptS. *)

type row = {
  workload : string;
  base_fa : int;
  opt_fa : int;
  base_dm : int;
  opt_dm : int;
}

val conflict : dm:int -> fa:int -> int

val compute : Context.t -> row array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
