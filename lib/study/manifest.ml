type run = {
  spec_seed : int;
  spec_digest : string;
  words : int;
  seed : int;
  jobs : int;
  context_key : string;
}

type stage = { mutable count : int; mutable seconds : float }

(* Aggregate effectiveness of Runner.simulate_batch: how many sweep
   members rode a shared replay pass instead of walking the trace alone.
   "Passes" and "events" count (workload x member) replay work; saved =
   what the per-config sequential path would have done minus what the
   fused path actually did. *)
type batch = {
  mutable calls : int;
  mutable members : int;
  mutable cache_hits : int;
  mutable simulated : int;
  mutable replay_passes : int;
  mutable passes_saved : int;
  mutable events_replayed : int;
  mutable events_saved : int;
}

let lock = Mutex.create ()
let run_info : run option ref = ref None
let stages : (string, stage) Hashtbl.t = Hashtbl.create 8
let stage_order : string list ref = ref [] (* reverse first-seen order *)
let experiments : (string * float) list ref = ref [] (* reverse order *)

let batch_stats =
  {
    calls = 0;
    members = 0;
    cache_hits = 0;
    simulated = 0;
    replay_passes = 0;
    passes_saved = 0;
    events_replayed = 0;
    events_saved = 0;
  }

let record_stage name seconds =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt stages name with
      | Some s ->
          s.count <- s.count + 1;
          s.seconds <- s.seconds +. seconds
      | None ->
          Hashtbl.add stages name { count = 1; seconds };
          stage_order := name :: !stage_order)

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record_stage name (Unix.gettimeofday () -. t0)) f

let set_run ~spec_seed ~spec_digest ~words ~seed ~jobs ~context_key =
  Mutex.protect lock (fun () ->
      match !run_info with
      | Some _ -> ()
      | None -> run_info := Some { spec_seed; spec_digest; words; seed; jobs; context_key })

let record_experiment ~id ~seconds =
  Mutex.protect lock (fun () -> experiments := (id, seconds) :: !experiments)

let record_batch ~members ~cache_hits ~simulated ~replay_passes ~passes_saved
    ~events_replayed ~events_saved =
  Mutex.protect lock (fun () ->
      let b = batch_stats in
      b.calls <- b.calls + 1;
      b.members <- b.members + members;
      b.cache_hits <- b.cache_hits + cache_hits;
      b.simulated <- b.simulated + simulated;
      b.replay_passes <- b.replay_passes + replay_passes;
      b.passes_saved <- b.passes_saved + passes_saved;
      b.events_replayed <- b.events_replayed + events_replayed;
      b.events_saved <- b.events_saved + events_saved)

let to_json () =
  let run, stage_rows, experiment_rows, batch =
    Mutex.protect lock (fun () ->
        ( !run_info,
          List.rev_map
            (fun name ->
              let s = Hashtbl.find stages name in
              (name, s.count, s.seconds))
            !stage_order,
          List.rev !experiments,
          { batch_stats with calls = batch_stats.calls } ))
  in
  (* Sample the caches outside the manifest lock: each has its own. *)
  let hits = Sim_cache.hits () and misses = Sim_cache.misses () in
  let layout_stages = Layout_cache.stage_stats () in
  let layout_totals = Layout_cache.totals () in
  let layout_hit_rate =
    let lookups = layout_totals.Layout_cache.hits + layout_totals.Layout_cache.misses in
    if lookups = 0 then 0.0
    else float_of_int layout_totals.Layout_cache.hits /. float_of_int lookups
  in
  (* GC statistics are a point sample taken now (manifest emission), not
     an accumulation: quick_stat is cheap and the emission point is the
     end of the run, so the numbers cover the whole pipeline. *)
  let gc_json =
    let g = Gc.quick_stat () in
    Json.Obj
      [
        ("minor_collections", Json.Int g.Gc.minor_collections);
        ("major_collections", Json.Int g.Gc.major_collections);
        ("compactions", Json.Int g.Gc.compactions);
        ("minor_words", Json.Float g.Gc.minor_words);
        ("promoted_words", Json.Float g.Gc.promoted_words);
        ("major_words", Json.Float g.Gc.major_words);
        ("heap_words", Json.Int g.Gc.heap_words);
        ("top_heap_words", Json.Int g.Gc.top_heap_words);
      ]
  in
  Json.Obj
    [
      ("schema_version", Json.Int 4);
      ( "run",
        match run with
        | None -> Json.Null
        | Some r ->
            Json.Obj
              [
                ("spec_seed", Json.Int r.spec_seed);
                ("spec_digest", Json.String r.spec_digest);
                ("words", Json.Int r.words);
                ("seed", Json.Int r.seed);
                ("jobs", Json.Int r.jobs);
                ("context_key", Json.String r.context_key);
                ("gc", gc_json);
              ] );
      ( "stages",
        Json.List
          (List.map
             (fun (name, count, seconds) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("count", Json.Int count);
                   ("seconds", Json.Float seconds);
                 ])
             stage_rows) );
      ( "sim_cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("lookups", Json.Int (hits + misses));
            ("hit_rate", Json.Float (Sim_cache.hit_rate ()));
          ] );
      ( "layout",
        Json.Obj
          [
            ( "stages",
              Json.List
                (List.map
                   (fun (name, (s : Layout_cache.stats)) ->
                     Json.Obj
                       [
                         ("name", Json.String name);
                         ("hits", Json.Int s.Layout_cache.hits);
                         ("misses", Json.Int s.Layout_cache.misses);
                         ( "lookups",
                           Json.Int (s.Layout_cache.hits + s.Layout_cache.misses) );
                         ("seconds", Json.Float s.Layout_cache.seconds);
                       ])
                   layout_stages) );
            ("hit_rate", Json.Float layout_hit_rate);
          ] );
      ( "batch",
        Json.Obj
          [
            ("calls", Json.Int batch.calls);
            ("members", Json.Int batch.members);
            ("cache_hits", Json.Int batch.cache_hits);
            ("simulated", Json.Int batch.simulated);
            ("replay_passes", Json.Int batch.replay_passes);
            ("passes_saved", Json.Int batch.passes_saved);
            ("events_replayed", Json.Int batch.events_replayed);
            ("events_saved", Json.Int batch.events_saved);
          ] );
      ( "experiments",
        Json.List
          (List.map
             (fun (id, seconds) ->
               Json.Obj [ ("id", Json.String id); ("seconds", Json.Float seconds) ])
             experiment_rows) );
      ("metrics", Metrics_registry.to_json ());
    ]

let reset () =
  Mutex.protect lock (fun () ->
      run_info := None;
      Hashtbl.reset stages;
      stage_order := [];
      experiments := [];
      let b = batch_stats in
      b.calls <- 0;
      b.members <- 0;
      b.cache_hits <- 0;
      b.simulated <- 0;
      b.replay_passes <- 0;
      b.passes_saved <- 0;
      b.events_replayed <- 0;
      b.events_saved <- 0)
