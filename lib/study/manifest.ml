type run = {
  spec_seed : int;
  spec_digest : string;
  words : int;
  seed : int;
  jobs : int;
  context_key : string;
}

type stage = { mutable count : int; mutable seconds : float }

let lock = Mutex.create ()
let run_info : run option ref = ref None
let stages : (string, stage) Hashtbl.t = Hashtbl.create 8
let stage_order : string list ref = ref [] (* reverse first-seen order *)
let experiments : (string * float) list ref = ref [] (* reverse order *)

let record_stage name seconds =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt stages name with
      | Some s ->
          s.count <- s.count + 1;
          s.seconds <- s.seconds +. seconds
      | None ->
          Hashtbl.add stages name { count = 1; seconds };
          stage_order := name :: !stage_order)

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record_stage name (Unix.gettimeofday () -. t0)) f

let set_run ~spec_seed ~spec_digest ~words ~seed ~jobs ~context_key =
  Mutex.protect lock (fun () ->
      match !run_info with
      | Some _ -> ()
      | None -> run_info := Some { spec_seed; spec_digest; words; seed; jobs; context_key })

let record_experiment ~id ~seconds =
  Mutex.protect lock (fun () -> experiments := (id, seconds) :: !experiments)

let to_json () =
  let run, stage_rows, experiment_rows =
    Mutex.protect lock (fun () ->
        ( !run_info,
          List.rev_map
            (fun name ->
              let s = Hashtbl.find stages name in
              (name, s.count, s.seconds))
            !stage_order,
          List.rev !experiments ))
  in
  (* Sample the cache outside the manifest lock: Sim_cache has its own. *)
  let hits = Sim_cache.hits () and misses = Sim_cache.misses () in
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ( "run",
        match run with
        | None -> Json.Null
        | Some r ->
            Json.Obj
              [
                ("spec_seed", Json.Int r.spec_seed);
                ("spec_digest", Json.String r.spec_digest);
                ("words", Json.Int r.words);
                ("seed", Json.Int r.seed);
                ("jobs", Json.Int r.jobs);
                ("context_key", Json.String r.context_key);
              ] );
      ( "stages",
        Json.List
          (List.map
             (fun (name, count, seconds) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("count", Json.Int count);
                   ("seconds", Json.Float seconds);
                 ])
             stage_rows) );
      ( "sim_cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("lookups", Json.Int (hits + misses));
            ("hit_rate", Json.Float (Sim_cache.hit_rate ()));
          ] );
      ( "experiments",
        Json.List
          (List.map
             (fun (id, seconds) ->
               Json.Obj [ ("id", Json.String id); ("seconds", Json.Float seconds) ])
             experiment_rows) );
    ]

let reset () =
  Mutex.protect lock (fun () ->
      run_info := None;
      Hashtbl.reset stages;
      stage_order := [];
      experiments := [])
