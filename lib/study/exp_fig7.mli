(** Figure 7: OS instruction words fetched between two consecutive calls
    to the same routine within one OS invocation, for the 10 most popular
    routines, averaged over the workloads. *)

type result = {
  bins : (string * int) list;
  within_100_pct : float;
  within_1000_pct : float;
  last_inv_pct : float;
  top_routines : string list;
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
