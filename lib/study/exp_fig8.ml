type result = {
  executed_blocks : int;
  peak_pct : float;
  above_3pct : int;
  above_1pct : int;
  below_001pct : int;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let union = Profile.average (Array.to_list ctx.Context.os_profiles) in
  let series = Popularity.block_series_deloop union g (Context.os_loops ctx) in
  let n = Array.length series in
  {
    executed_blocks = n;
    peak_pct = (if n = 0 then 0.0 else series.(0));
    above_3pct = Popularity.count_above series ~threshold:3.0;
    above_1pct = Popularity.count_above series ~threshold:1.0;
    below_001pct =
      Array.fold_left (fun acc v -> if v < 0.01 then acc + 1 else acc) 0 series;
  }

let report ctx =
  let r = compute ctx in
  Result.report ~id:"fig8" ~section:"Figure 8: basic-block invocation skew (loops discounted)"
    [
      Result.note "executed basic blocks (union): %d" r.executed_blocks;
      Result.scalar ~label:"peak_block_pct" ~value:r.peak_pct
        ~text:(Printf.sprintf "hottest block holds %.1f%% of invocations" r.peak_pct);
      Result.note "blocks above 3%%: %d; above 1%%: %d; below 0.01%%: %d"
        r.above_3pct r.above_1pct r.below_001pct;
      Result.paper
        "~8,500 executed BBs; 22 above 3%, 157 above 1%, ~6,000 below 0.01%; peak ~5%";
    ]

let run ctx = Result.print (report ctx)
