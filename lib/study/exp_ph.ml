(* Baseline shoot-out: Base vs Chang-Hwu (the paper's comparison) vs
   Pettis-Hansen (its successor, not in the paper) vs OptS, on the
   standard 8 KB direct-mapped cache.  The interesting question: does the
   paper's systems-code-specific machinery (seeds, sequences crossing
   routine boundaries, SelfConfFree) still beat the stronger generic
   baseline that displaced C-H a year later? *)

type row = { workload : string; rates : (string * float) list }

let levels = [ "Base"; "C-H"; "P-H"; "OptS" ]

let compute (ctx : Context.t) =
  let model = ctx.Context.model in
  let profile = ctx.Context.avg_os_profile in
  let g = Context.os_graph ctx in
  let os_map = function
    | "Base" -> Base.layout g ~order:model.Model.base_order
    | "C-H" -> Chang_hwu.layout g profile
    | "P-H" -> Pettis_hansen.layout g profile
    | "OptS" ->
        (Opt.os_layout ~model ~profile ~loops:(Context.os_loops ctx) (Opt.params ()))
          .Opt.map
    | other -> invalid_arg other
  in
  let layouts_of name =
    let map = os_map name in
    Array.map
      (fun ((_ : Workload.t), program) ->
        Program_layout.with_os_map
          (Program_layout.base ~model ~program)
          ~name map ~os_meta:None)
      ctx.Context.pairs
  in
  let rates =
    List.map
      (fun name ->
        let runs =
          Runner.simulate_config ctx ~layouts:(layouts_of name)
            ~config:(Config.make ~size_kb:8 ()) ()
        in
        (name, Array.map (fun (r : Runner.run) -> Counters.miss_rate r.Runner.counters) runs))
      levels
  in
  Array.mapi
    (fun i ((w : Workload.t), _) ->
      {
        workload = w.Workload.name;
        rates = List.map (fun (name, rs) -> (name, rs.(i))) rates;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      (("Workload", Table.Left)
      :: List.map (fun name -> (name ^ " %", Table.Right)) levels)
  in
  Array.iter
    (fun r ->
      Table.add_row t
        (r.workload
        :: List.map
             (fun (_, rate) -> Table.cell_f ~decimals:3 (100.0 *. rate))
             r.rates))
    rows;
  Result.report ~id:"ph"
    ~section:"Baselines: Base / Chang-Hwu / Pettis-Hansen / OptS (8KB DM)"
    [
      Result.of_table t;
      Result.note
        "P-H improves on C-H's procedure ordering with closest-is-best chains; OptS";
      Result.note
        "should still lead through its OS-specific seeds, sequences and SelfConfFree";
    ]

let run ctx = Result.print (report ctx)
