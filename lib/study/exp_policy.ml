(* Replacement-policy sensitivity (not in the paper, which assumes LRU):
   does the OptS advantage survive weaker replacement?  The layouts are
   evaluated on a 4-way 8 KB cache under LRU, FIFO and random replacement
   (direct-mapped caches have no policy, so associativity is needed to
   expose the difference). *)

type row = {
  workload : string;
  rates : (string * float * float) array;  (** policy, Base, OptS. *)
}

let policies =
  [| ("LRU", Config.Lru); ("FIFO", Config.Fifo); ("random", Config.Random 1234) |]

let compute (ctx : Context.t) =
  let base_layouts = Levels.build ctx Levels.Base in
  let opt_layouts = Levels.build ctx Levels.OptS in
  (* All six (policy x layout) members ride one batch: the three policies
     of a layout share that layout's single replay pass per workload. *)
  let members =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (_name, policy) ->
              let config = Config.make ~size_kb:8 ~assoc:4 ~policy () in
              [| (base_layouts, config); (opt_layouts, config) |])
            policies))
  in
  let batch = Runner.simulate_batch ctx ~members () in
  let rates runs =
    Array.map (fun (r : Runner.run) -> Counters.miss_rate r.Runner.counters) runs
  in
  let per_policy =
    Array.mapi
      (fun pi (name, _) -> (name, rates batch.(2 * pi), rates batch.((2 * pi) + 1)))
      policies
  in
  Array.mapi
    (fun i ((w : Workload.t), _) ->
      {
        workload = w.Workload.name;
        rates = Array.map (fun (n, b, o) -> (n, b.(i), o.(i))) per_policy;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("Policy", Table.Left); ("Base %", Table.Right);
        ("OptS %", Table.Right); ("reduction", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      Array.iteri
        (fun j (policy, base, opt) ->
          Table.add_row t
            [
              (if j = 0 then r.workload else "");
              policy;
              Table.cell_f ~decimals:3 (100.0 *. base);
              Table.cell_f ~decimals:3 (100.0 *. opt);
              Table.cell_pct ~decimals:0 (100.0 *. (1.0 -. (opt /. base)));
            ])
        r.rates;
      Table.add_separator t)
    rows;
  Result.report ~id:"policy" ~section:"Replacement policy: Base vs OptS, 8KB 4-way"
    [
      Result.of_table t;
      Result.note
        "the layout advantage is policy-independent: conflicts removed in software";
      Result.note "stay removed whatever the hardware evicts";
    ]

let run ctx = Result.print (report ctx)
