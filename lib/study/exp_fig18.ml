type bar = {
  setup : string;
  os_misses : int;
  app_misses : int;
  total : int;
  normalized : float;
}

type row = { workload : string; bars : bar array }

let compute (ctx : Context.t) =
  let model = ctx.Context.model in
  let os_profile = ctx.Context.avg_os_profile in
  let unified_config = Config.make ~size_kb:8 () in
  let opt_a_layouts = Levels.build ctx Levels.OptA in
  (* Call: Section 4.4 loop-callee placement on the OS side. *)
  let call_os, _stats = Call_opt.layout ~model ~profile:os_profile () in
  let call_layouts =
    Array.map
      (fun l ->
        Program_layout.with_os_map l ~name:"Call" call_os.Opt.map ~os_meta:(Some call_os))
      opt_a_layouts
  in
  (* The three unified-cache setups share one batch (Sep/Resv need split /
     reserved systems, which stay on the general [Runner.simulate] path). *)
  let batch =
    Runner.simulate_batch ctx
      ~members:
        [|
          (Levels.build ctx Levels.Base, unified_config);
          (opt_a_layouts, unified_config);
          (call_layouts, unified_config);
        |]
      ()
  in
  let base_runs = batch.(0) in
  let opt_a_runs = batch.(1) in
  let call_runs = batch.(2) in
  (* Sep: both halves 4 KB; layouts optimized for 4 KB logical caches. *)
  let sep_layouts = Levels.build ctx ~params:(Opt.params ~cache_size:4096 ()) Levels.OptA in
  let sep_runs =
    Runner.simulate ctx ~layouts:sep_layouts
      ~system:(fun () ->
        System.split
          ~os:(Config.v ~size:4096 ~assoc:1 ~line:32)
          ~app:(Config.v ~size:4096 ~assoc:1 ~line:32))
      ()
  in
  (* Resv: hottest OS code at the bottom of memory feeds a 1 KB cache; the
     OS is laid out without SelfConfFree holes. *)
  let resv_os =
    Opt.os_layout ~model ~profile:os_profile ~loops:(Program_layout.os_loops model)
      (Opt.params ~cache_size:7168 ~scf_holes:false ())
  in
  let hot_limit = max 1 resv_os.Opt.scf_bytes in
  let resv_layouts =
    Array.map
      (fun l ->
        Program_layout.with_os_map l ~name:"Resv" resv_os.Opt.map
          ~os_meta:(Some resv_os))
      opt_a_layouts
  in
  let resv_runs =
    Runner.simulate ctx ~layouts:resv_layouts
      ~system:(fun () ->
        System.reserved
          ~hot:(Config.v ~size:1024 ~assoc:1 ~line:32)
          ~rest:(Config.v ~size:8192 ~assoc:1 ~line:32)
          ~hot_limit)
      ()
  in
  Array.mapi
    (fun i (w, _) ->
      let base_total = Counters.misses base_runs.(i).Runner.counters in
      let bar setup (runs : Runner.run array) =
        let c = runs.(i).Runner.counters in
        {
          setup;
          os_misses = Counters.os_misses c;
          app_misses = Counters.app_misses c;
          total = Counters.misses c;
          normalized = Stats.ratio (Counters.misses c) base_total;
        }
      in
      {
        workload = w.Workload.name;
        bars =
          [|
            bar "Base" base_runs; bar "OptA" opt_a_runs; bar "Sep" sep_runs;
            bar "Resv" resv_runs; bar "Call" call_runs;
          |];
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("Setup", Table.Left);
        ("OS misses", Table.Right); ("App misses", Table.Right);
        ("Total", Table.Right); ("Norm", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      Array.iteri
        (fun j b ->
          Table.add_row t
            [
              (if j = 0 then r.workload else "");
              b.setup;
              Table.cell_i b.os_misses;
              Table.cell_i b.app_misses;
              Table.cell_i b.total;
              Table.cell_f b.normalized;
            ])
        r.bars;
      Table.add_separator t)
    rows;
  Result.report ~id:"fig18"
    ~section:"Figure 18: Sep / Resv / Call setups (8KB total, 32B lines)"
    [
      Result.of_table t;
      Result.paper
        "Sep increases misses over OptA everywhere; Resv is slightly worse than OptA";
      Result.paper
        "(same performance, higher cost); Call raises OS misses 20-100% over OptA";
    ]

let run ctx = Result.print (report ctx)
