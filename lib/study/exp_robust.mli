(** Methodology robustness: the OptS/Base total-miss ratio on the 8 KB
    cache as the traced word budget varies, showing the committed word
    budget is long enough. *)

type point = { words : int; ratio : float }

val budgets_of : int -> int array
(** The sweep points for a committed budget: quarter, half, the budget
    itself and double it. *)

val compute : Context.t -> point array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
