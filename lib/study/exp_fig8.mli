(** Figure 8: normalized invocation counts of basic blocks (union of
    workloads, loop iterations discounted), sorted descending. *)

type result = {
  executed_blocks : int;
  peak_pct : float;  (** Largest normalized value (paper: ~5%). *)
  above_3pct : int;
  above_1pct : int;
  below_001pct : int;
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
