(* Conflict-vs-capacity decomposition via stack distances.

   The fully-associative LRU miss curve depends only on the reference
   stream's line-reuse pattern - under a fixed placement, layout cannot
   change which addresses repeat, but it does change which lines they
   share.  Comparing, per workload:

     - the fully-associative curve under Base and OptS (how much the
       layouts compact the working set into fewer lines), and
     - the direct-mapped simulation against the fully-associative floor
       (how many conflict misses the placement leaves behind),

   demonstrates the paper's claim at the mechanism level: OptS removes
   conflict misses (gap to floor shrinks) and packs hot code into fewer
   lines (the floor itself drops a little). *)

type row = {
  workload : string;
  base_fa : int;  (** Fully-associative misses, 256 lines (8 KB / 32 B). *)
  opt_fa : int;
  base_dm : int;  (** Direct-mapped 8 KB simulated misses. *)
  opt_dm : int;
}

let conflict ~dm ~fa = max 0 (dm - fa)

let compute (ctx : Context.t) =
  let base_layouts = Levels.build ctx Levels.Base in
  let opt_layouts = Levels.build ctx Levels.OptS in
  let fa layout i =
    let t =
      Stack_dist.from_trace ~trace:ctx.Context.traces.(i)
        ~map:(Program_layout.code_map layout) ()
    in
    Stack_dist.misses_at t ~lines:256
  in
  (* No warm-up discount on either side: the stack-distance pass counts
     every reference including cold ones, so the simulation must too. *)
  let dm_batch =
    let config = Config.make ~size_kb:8 () in
    Runner.simulate_batch ctx
      ~members:[| (base_layouts, config); (opt_layouts, config) |]
      ~warmup_fraction:0.0 ()
  in
  let base_dm = dm_batch.(0) in
  let opt_dm = dm_batch.(1) in
  Array.mapi
    (fun i ((w : Workload.t), _) ->
      {
        workload = w.Workload.name;
        base_fa = fa base_layouts.(i) i;
        opt_fa = fa opt_layouts.(i) i;
        base_dm = Counters.misses base_dm.(i).Runner.counters;
        opt_dm = Counters.misses opt_dm.(i).Runner.counters;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("Layout", Table.Left);
        ("FA floor", Table.Right); ("DM simulated", Table.Right);
        ("conflict", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      Table.add_row t
        [
          r.workload; "Base"; Table.cell_i r.base_fa; Table.cell_i r.base_dm;
          Table.cell_i (conflict ~dm:r.base_dm ~fa:r.base_fa);
        ];
      Table.add_row t
        [
          ""; "OptS"; Table.cell_i r.opt_fa; Table.cell_i r.opt_dm;
          Table.cell_i (conflict ~dm:r.opt_dm ~fa:r.opt_fa);
        ];
      Table.add_separator t)
    rows;
  Result.report ~id:"curve"
    ~section:"Stack distances: conflict vs capacity misses (8KB, 32B lines)"
    [
      Result.of_table t;
      Result.note "OptS attacks the conflict column: the simulated misses approach the";
      Result.note "fully-associative floor, and the floor itself drops as hot code packs";
      Result.note "into fewer lines (the spatial-locality effect of sequences)";
    ]

let run ctx = Result.print (report ctx)
