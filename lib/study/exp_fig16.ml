type cell = { variant : string; normalized : float; misses : int }

type row = { size_kb : int; workload : string; cells : cell array }

let variants =
  (* The paper's 3/2/1% cut-offs applied to its (far more concentrated)
     profile gave areas of 376/1286/2514 bytes.  Our cut-offs are
     loop-adjusted executions per OS invocation, chosen to produce areas
     of the same sizes. *)
  [| ("None", None); ("1.00", Some 1.0); ("0.50", Some 0.5); ("0.25", Some 0.25) |]

let scf_area_bytes (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let loops = Context.os_loops ctx in
  Array.map
    (fun (label, cutoff) ->
      match cutoff with
      | None -> (label, 0)
      | Some cutoff ->
          let blocks =
            Scf.select ~graph:g ~profile:ctx.Context.avg_os_profile ~loops ~cutoff
          in
          (label, Scf.bytes g blocks))
    variants

let sizes = [| 4; 8; 16 |]

let compute (ctx : Context.t) =
  (* One batch for the whole (cache size x cut-off) grid; the Base
     placement is shared, so its three geometries ride one replay pass. *)
  let stride = 1 + Array.length variants in
  let members =
    Array.concat
      (Array.to_list
         (Array.map
            (fun size_kb ->
              let config = Config.make ~size_kb () in
              Array.append
                [| (Levels.build ctx Levels.Base, config) |]
                (Array.map
                   (fun (_label, cutoff) ->
                     let params =
                       Opt.params ~cache_size:(size_kb * 1024) ~scf_cutoff:cutoff ()
                     in
                     (Levels.build ctx ~params Levels.OptS, config))
                   variants))
            sizes))
  in
  let batch = Runner.simulate_batch ctx ~members () in
  let rows = ref [] in
  Array.iteri
    (fun si size_kb ->
      let base_runs = batch.(si * stride) in
      let variant_runs =
        Array.mapi
          (fun vi (label, _cutoff) -> (label, batch.((si * stride) + 1 + vi)))
          variants
      in
      Array.iteri
        (fun i (w, _) ->
          let base = Counters.misses base_runs.(i).Runner.counters in
          let cells =
            Array.map
              (fun (label, runs) ->
                let m = Counters.misses runs.(i).Runner.counters in
                { variant = label; normalized = Stats.ratio m base; misses = m })
              variant_runs
          in
          rows := { size_kb; workload = w.Workload.name; cells } :: !rows)
        ctx.Context.pairs)
    sizes;
  Array.of_list (List.rev !rows)

let report ctx =
  let areas =
    Array.to_list (scf_area_bytes ctx)
    |> List.map (fun (label, bytes) ->
           Result.note "cut-off %s -> SelfConfFree area of %d bytes" label bytes)
  in
  let rows = compute ctx in
  let t =
    Table.create
      ([ ("Cache", Table.Right); ("Workload", Table.Left) ]
      @ Array.to_list (Array.map (fun (l, _) -> (l, Table.Right)) variants))
  in
  Array.iter
    (fun r ->
      Table.add_row t
        ([ Printf.sprintf "%dKB" r.size_kb; r.workload ]
        @ Array.to_list (Array.map (fun c -> Table.cell_f c.normalized) r.cells)))
    rows;
  Result.report ~id:"fig16" ~section:"Figure 16: SelfConfFree-area size sweep"
    (areas
    @ [
        Result.of_table t;
        Result.paper
          "paper areas: 0/376/1286/2514 bytes; the 2.0% cut-off (~1KB) wins most often;";
        Result.paper "large areas favor 4KB caches, small ones 16KB caches";
      ])

let run ctx = Result.print (report ctx)
