(* Function-inlining comparison (Section 4.1's rejected alternative).

   The kernel is rewritten with every hot small-leaf call site inlined,
   the four workloads are re-traced on the rewritten kernel, and an OptS
   layout is built for it from its own averaged profile.  The paper's
   argument (after Chen et al.) is that inlining expands the active code
   and increases conflicts, making it unstable next to sequence-based
   placement, which borrows only the callee blocks it needs. *)

type row = {
  workload : string;
  opt_s_rate : float;  (** OptS on the original kernel. *)
  inline_rate : float;  (** OptS on the inlined kernel. *)
}

type result = {
  stats : Inline.stats;
  code_growth_pct : float;
  rows : row array;
}

let compute (ctx : Context.t) =
  let model = ctx.Context.model in
  let inlined, stats =
    Inline.transform ~model ~profile:ctx.Context.avg_os_profile ()
  in
  let growth =
    Stats.pct stats.Inline.added_bytes (Graph.code_bytes model.Model.graph)
  in
  (* Re-trace the four workloads on the inlined kernel and build its OptS
     layout from its own averaged profile, exactly as for the original. *)
  let pairs = Workload.standard_programs inlined in
  let traces = Array.make (Array.length pairs) None in
  let profiles = Array.make (Array.length pairs) None in
  Array.iteri
    (fun i ((w : Workload.t), program) ->
      let profs, sink = Profile.sinks ~program in
      let trace = Trace.create ~capacity:(ctx.Context.words / 4) () in
      let _ =
        Engine.run ~program ~workload:w ~words:ctx.Context.words ~seed:(11 + i)
          ~sink:(Engine.combine_sinks [ sink; Engine.trace_sink trace ])
      in
      traces.(i) <- Some trace;
      profiles.(i) <- Some profs.(0))
    pairs;
  let avg =
    Profile.average (Array.to_list (Array.map Option.get profiles))
  in
  let loops = Loops.find inlined.Model.graph in
  let opt =
    Opt.os_layout ~model:inlined ~profile:avg ~loops (Opt.params ())
  in
  let inline_rate i =
    let _, program = pairs.(i) in
    let layout =
      Program_layout.with_os_map
        (Program_layout.base ~model:inlined ~program)
        ~name:"Inline+OptS" opt.Opt.map ~os_meta:(Some opt)
    in
    let system = System.unified (Config.make ~size_kb:8 ()) in
    let trace = Option.get traces.(i) in
    Replay.run_range ~trace ~map:(Program_layout.code_map layout)
      ~systems:[| system |]
      ~warmup:(Trace.exec_count trace / 5);
    Counters.miss_rate (System.counters system)
  in
  (* Reference: plain OptS on the original kernel, original traces. *)
  let opt_layouts = Levels.build ctx Levels.OptS in
  let reference =
    Runner.simulate_config ctx ~layouts:opt_layouts
      ~config:(Config.make ~size_kb:8 ()) ()
  in
  let rows =
    Array.mapi
      (fun i ((w : Workload.t), _) ->
        {
          workload = w.Workload.name;
          opt_s_rate = Counters.miss_rate reference.(i).Runner.counters;
          inline_rate = inline_rate i;
        })
      ctx.Context.pairs
  in
  { stats; code_growth_pct = growth; rows }

let report ctx =
  let r = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("OptS %", Table.Right);
        ("Inline+OptS %", Table.Right); ("ratio", Table.Right);
      ]
  in
  Array.iter
    (fun row ->
      Table.add_row t
        [
          row.workload;
          Table.cell_f ~decimals:3 (100.0 *. row.opt_s_rate);
          Table.cell_f ~decimals:3 (100.0 *. row.inline_rate);
          Table.cell_f (row.inline_rate /. Float.max 1e-12 row.opt_s_rate);
        ])
    r.rows;
  Result.report ~id:"inline" ~section:"Inlining: OptS vs inline-then-OptS (8KB DM, 32B lines)"
    [
      Result.note
        "inlined %d call sites of %d leaf routines; +%d bytes (%.1f%% of the kernel)"
        r.stats.Inline.sites r.stats.Inline.callees r.stats.Inline.added_bytes
        r.code_growth_pct;
      Result.of_table t;
      Result.paper
        "Chen et al. (cited in 4.1): inlining is not a stable and effective scheme;";
      Result.paper
        "code expansion increases conflicts, so the paper's sequences do not inline";
    ]

let run ctx = Result.print (report ctx)
