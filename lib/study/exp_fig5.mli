(** Figure 5: loops with procedure calls - iterations per invocation and
    static size of the executed part including callee descendants. *)

type result = {
  loop_count : int;
  iters_le_10_pct : float;
  median_size_bytes : float;
  max_size_bytes : int;
  iteration_bins : (string * int) list;
  size_bins : (string * int) list;
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
