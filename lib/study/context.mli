(** Shared experimental state: the generated kernel, the four workloads
    with captured traces, and the per-workload and averaged profiles the
    layouts are built from.  Building a context is the expensive step;
    every experiment then reuses it. *)

type t = {
  model : Model.t;
  pairs : (Workload.t * Program.t) array;  (** Paper order. *)
  traces : Trace.t array;
  stats : Engine.stats array;
  os_profiles : Profile.t array;
  app_profiles : Profile.t array array;
      (** Per workload, indexed by app image - 1. *)
  avg_os_profile : Profile.t;
  avg_app_profile : App_model.t -> Profile.t;
      (** Average profile of an application across the workloads running
          it (physical identity of the app model). *)
  spec : Spec.t;  (** The kernel spec this context was generated from. *)
  words : int;
  seed : int;  (** Engine seed (see {!create}). *)
  key : string;
      (** Trace identity: digest of (spec, words, seed).  Traces (and
          hence every simulation result) are a pure function of these, so
          the key content-addresses this context in {!Sim_cache} keys. *)
}

val create : ?spec:Spec.t -> ?words:int -> ?seed:int -> ?jobs:int -> unit -> t
(** Defaults: the calibrated kernel, 2 M instruction words per workload,
    engine seed 11.  The per-workload trace captures run on up to [jobs]
    domains (default {!Parallel.default_jobs}); the result is bit-identical
    for every job count. *)

val workload_count : t -> int
val key : t -> string
val workload_names : t -> string array
val os_graph : t -> Graph.t
val os_loops : t -> Loops.t list
