type item =
  | Table of {
      title : string option;
      columns : (string * Table.align) list;
      rows : Table.row list;
    }
  | Series of { label : string; points : (string * float) list }
  | Scalar of { label : string; value : float; text : string }
  | Note of string
  | Paper_ref of string

type report = { id : string; section : string; items : item list }

type format = Text | Json | Csv

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let report ~id ~section items = { id; section; items }

let of_table t =
  Table { title = Table.title t; columns = Table.columns t; rows = Table.row_list t }

let series ~label points = Series { label; points }

let scalar ~label ~value ~text = Scalar { label; value; text }

let note fmt = Printf.ksprintf (fun s -> Note s) fmt

let paper s = Paper_ref s

(* ------------------------------------------------------------------ *)
(* Text rendering (byte-identical to the historical printf output)    *)
(* ------------------------------------------------------------------ *)

let section_banner title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s\n" bar title bar

let rebuild_table ~title ~columns ~rows =
  let t = Table.create ?title columns in
  List.iter
    (function
      | Table.Cells cells -> Table.add_row t cells
      | Table.Separator -> Table.add_separator t)
    rows;
  t

let item_text = function
  | Table { title; columns; rows } -> Table.render (rebuild_table ~title ~columns ~rows)
  | Series { label; points } -> Chart.bars ~title:label points
  | Scalar { text; _ } -> Printf.sprintf "  %s\n" text
  | Note s -> Printf.sprintf "  %s\n" s
  | Paper_ref s -> Printf.sprintf "  [paper] %s\n" s

let render_text r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (section_banner r.section);
  List.iter (fun item -> Buffer.add_string buf (item_text item)) r.items;
  Buffer.contents buf

let print r = print_string (render_text r)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let align_to_json = function Table.Left -> Json.String "left" | Table.Right -> Json.String "right"

let item_to_json = function
  | Table { title; columns; rows } ->
      Json.Obj
        [
          ("kind", Json.String "table");
          ("title", match title with None -> Json.Null | Some t -> Json.String t);
          ( "columns",
            Json.List
              (List.map
                 (fun (name, align) ->
                   Json.Obj [ ("name", Json.String name); ("align", align_to_json align) ])
                 columns) );
          ( "rows",
            Json.List
              (List.map
                 (function
                   | Table.Separator -> Json.String "sep"
                   | Table.Cells cells ->
                       Json.Obj
                         [ ("cells", Json.List (List.map (fun c -> Json.String c) cells)) ])
                 rows) );
        ]
  | Series { label; points } ->
      Json.Obj
        [
          ("kind", Json.String "series");
          ("label", Json.String label);
          ( "points",
            Json.List
              (List.map
                 (fun (x, y) -> Json.Obj [ ("x", Json.String x); ("y", Json.Float y) ])
                 points) );
        ]
  | Scalar { label; value; text } ->
      Json.Obj
        [
          ("kind", Json.String "scalar");
          ("label", Json.String label);
          ("value", Json.Float value);
          ("text", Json.String text);
        ]
  | Note s -> Json.Obj [ ("kind", Json.String "note"); ("text", Json.String s) ]
  | Paper_ref s -> Json.Obj [ ("kind", Json.String "paper_ref"); ("text", Json.String s) ]

let to_json r =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("section", Json.String r.section);
      ("items", Json.List (List.map item_to_json r.items));
    ]

(* Parsing back.  Shapes are validated strictly enough that the QCheck
   round-trip property is meaningful, with readable errors for the CI
   validator. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_string what j =
  match Json.to_str j with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: expected a string" what)

let as_float what j =
  match j with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "%s: expected a number" what)

let as_list what j =
  match Json.to_list j with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "%s: expected a list" what)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let align_of_json = function
  | Json.String "left" -> Ok Table.Left
  | Json.String "right" -> Ok Table.Right
  | _ -> Error "column align: expected \"left\" or \"right\""

let item_of_json j =
  let* kind = field "kind" j in
  let* kind = as_string "item kind" kind in
  match kind with
  | "table" ->
      let* title =
        match Json.member "title" j with
        | None | Some Json.Null -> Ok None
        | Some t ->
            let* s = as_string "table title" t in
            Ok (Some s)
      in
      let* columns = field "columns" j in
      let* columns = as_list "table columns" columns in
      let* columns =
        map_result
          (fun c ->
            let* name = field "name" c in
            let* name = as_string "column name" name in
            let* align = field "align" c in
            let* align = align_of_json align in
            Ok (name, align))
          columns
      in
      let* rows = field "rows" j in
      let* rows = as_list "table rows" rows in
      let* rows =
        map_result
          (fun r ->
            match r with
            | Json.String "sep" -> Ok Table.Separator
            | _ ->
                let* cells = field "cells" r in
                let* cells = as_list "row cells" cells in
                let* cells = map_result (as_string "cell") cells in
                Ok (Table.Cells cells))
          rows
      in
      Ok (Table { title; columns; rows })
  | "series" ->
      let* label = field "label" j in
      let* label = as_string "series label" label in
      let* points = field "points" j in
      let* points = as_list "series points" points in
      let* points =
        map_result
          (fun p ->
            let* x = field "x" p in
            let* x = as_string "point x" x in
            let* y = field "y" p in
            let* y = as_float "point y" y in
            Ok (x, y))
          points
      in
      Ok (Series { label; points })
  | "scalar" ->
      let* label = field "label" j in
      let* label = as_string "scalar label" label in
      let* value = field "value" j in
      let* value = as_float "scalar value" value in
      let* text = field "text" j in
      let* text = as_string "scalar text" text in
      Ok (Scalar { label; value; text })
  | "note" ->
      let* text = field "text" j in
      let* text = as_string "note text" text in
      Ok (Note text)
  | "paper_ref" ->
      let* text = field "text" j in
      let* text = as_string "paper_ref text" text in
      Ok (Paper_ref text)
  | other -> Error (Printf.sprintf "unknown item kind %S" other)

let of_json j =
  let* id = field "id" j in
  let* id = as_string "report id" id in
  let* section = field "section" j in
  let* section = as_string "report section" section in
  let* items = field "items" j in
  let* items = as_list "report items" items in
  let* items = map_result item_of_json items in
  Ok { id; section; items }

(* ------------------------------------------------------------------ *)
(* CSV                                                                *)
(* ------------------------------------------------------------------ *)

let csv_field s =
  if
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let csv_of_table columns rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_line (List.map fst columns));
  List.iter
    (function
      | Table.Separator -> ()
      | Table.Cells cells -> Buffer.add_string buf (csv_line cells))
    rows;
  Buffer.contents buf

let item_csv = function
  | Table { title; columns; rows } ->
      (match title with None -> "" | Some t -> "# " ^ t ^ "\n") ^ csv_of_table columns rows
  | Series { label; points } ->
      "# series: " ^ label ^ "\n"
      ^ csv_line [ "label"; "value" ]
      ^ String.concat ""
          (List.map (fun (x, y) -> csv_line [ x; Json.float_repr y ]) points)
  | Scalar { label; value; _ } -> csv_line [ "scalar"; label; Json.float_repr value ]
  | Note s -> "# " ^ s ^ "\n"
  | Paper_ref s -> "# [paper] " ^ s ^ "\n"

let render_csv r =
  (* A single bare table renders with no decoration, so table-shaped
     outputs (the sweep) stay plain machine-readable CSV.  Richer reports
     get comment headers and blank-line-separated item blocks. *)
  match r.items with
  | [ (Table _ as t) ] -> item_csv t
  | items ->
      Printf.sprintf "# %s: %s\n" r.id r.section
      ^ String.concat "\n" (List.map item_csv items)

let render = function
  | Text -> render_text
  | Json -> fun r -> Json.to_string (to_json r) ^ "\n"
  | Csv -> render_csv

let format_of_string s =
  match String.lowercase_ascii s with
  | "text" -> Ok Text
  | "json" -> Ok Json
  | "csv" -> Ok Csv
  | other -> Error (Printf.sprintf "unknown format %S (expected text, json or csv)" other)

let format_to_string = function Text -> "text" | Json -> "json" | Csv -> "csv"

let extension = function Text -> "txt" | Json -> "json" | Csv -> "csv"
