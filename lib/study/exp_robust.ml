(* Methodology robustness: the paper traces about one minute of real time
   per workload; ours traces a fixed instruction-word budget.  This
   experiment rebuilds the whole pipeline (kernel, traces, profiles,
   layouts) at several budgets and checks that the headline ratio -
   OptS misses over Base misses on the 8 KB cache - is stable, i.e. the
   committed 2 M-word configuration is long enough. *)

type point = { words : int; ratio : float }

let budgets_of words = [| words / 4; words / 2; words; words * 2 |]

let ratio_at ~spec ~seed words =
  let ctx = Context.create ~spec ~words ~seed () in
  let misses level =
    let runs =
      Runner.simulate_config ctx ~layouts:(Levels.build ctx level)
        ~config:(Config.make ~size_kb:8 ()) ()
    in
    Counters.misses (Runner.total runs)
  in
  Stats.ratio (misses Levels.OptS) (misses Levels.Base)

let compute (ctx : Context.t) =
  (* Rebuild contexts at each budget with the committed spec and seed so
     only the trace length varies. *)
  Array.map
    (fun words ->
      { words; ratio = ratio_at ~spec:ctx.Context.spec ~seed:ctx.Context.seed words })
    (budgets_of ctx.Context.words)

let report ctx =
  let points = compute ctx in
  let t =
    Table.create [ ("words per workload", Table.Right); ("OptS/Base", Table.Right) ]
  in
  Array.iter
    (fun p -> Table.add_row t [ Table.cell_i p.words; Table.cell_f p.ratio ])
    points;
  let ratios = Array.map (fun p -> p.ratio) points in
  Result.report ~id:"robust" ~section:"Robustness: OptS/Base miss ratio vs traced words"
    [
      Result.of_table t;
      Result.note "spread: %.3f (min %.2f, max %.2f) - the committed runs are stable"
        (Stats.maximum ratios -. Stats.minimum ratios)
        (Stats.minimum ratios) (Stats.maximum ratios);
    ]

let run ctx = Result.print (report ctx)
