(** Victim-cache comparison (beyond the paper): Base and OptS with and
    without a small fully-associative victim buffer next to the 8 KB
    direct-mapped cache. *)

type row = { workload : string; rates : (string * float) list }

val setups : (string * Levels.level * int option) list

val compute : Context.t -> row array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
