type t = { id : string; title : string; compute : Context.t -> Result.report }

let all =
  [
    { id = "table1"; title = "OS reference characteristics"; compute = Exp_table1.report };
    { id = "fig1"; title = "OS miss-address distribution"; compute = Exp_fig1.report };
    { id = "fig2"; title = "OS reference-address distribution"; compute = Exp_fig2.report };
    { id = "fig3"; title = "arc-probability distribution"; compute = Exp_fig3.report };
    { id = "table2"; title = "sequence predictability and weight"; compute = Exp_table2.report };
    { id = "table3"; title = "loops without calls"; compute = Exp_table3.report };
    { id = "fig4"; title = "loops without calls: distributions"; compute = Exp_fig4.report };
    { id = "fig5"; title = "loops with calls: distributions"; compute = Exp_fig5.report };
    { id = "fig6"; title = "routine invocation skew"; compute = Exp_fig6.report };
    { id = "fig7"; title = "temporal reuse of hot routines"; compute = Exp_fig7.report };
    { id = "fig8"; title = "basic-block invocation skew"; compute = Exp_fig8.report };
    { id = "fig9"; title = "worked placement example"; compute = Exp_fig9.report };
    { id = "table4"; title = "threshold schedule"; compute = Exp_table4.report };
    { id = "fig12"; title = "misses by layout level"; compute = Exp_fig12.report };
    { id = "fig13"; title = "refs/misses by region"; compute = Exp_fig13.report };
    { id = "fig14"; title = "miss distribution by layout"; compute = Exp_fig14.report };
    { id = "fig15"; title = "cache-size sweep and speedups"; compute = Exp_fig15.report };
    { id = "fig16"; title = "SelfConfFree-area sweep"; compute = Exp_fig16.report };
    { id = "fig17"; title = "line-size and associativity sweeps"; compute = Exp_fig17.report };
    { id = "fig18"; title = "Sep/Resv/Call setups"; compute = Exp_fig18.report };
    { id = "ablation"; title = "OptS ingredient ablation"; compute = Exp_ablation.report };
    { id = "inline"; title = "inlining vs sequences"; compute = Exp_inline.report };
    { id = "mp"; title = "4-CPU per-processor miss rates"; compute = Exp_mp.report };
    { id = "ph"; title = "Pettis-Hansen baseline comparison"; compute = Exp_ph.report };
    { id = "curve"; title = "conflict vs capacity decomposition"; compute = Exp_curve.report };
    { id = "policy"; title = "replacement-policy sensitivity"; compute = Exp_policy.report };
    { id = "robust"; title = "trace-length robustness"; compute = Exp_robust.report };
    { id = "victim"; title = "victim cache vs software layout"; compute = Exp_victim.report };
    { id = "crossval"; title = "profile cross-validation"; compute = Exp_crossval.report };
    { id = "fallthrough"; title = "fall-through rates by layout"; compute = Exp_fallthrough.report };
    { id = "noise"; title = "profile-noise sensitivity"; compute = Exp_noise.report };
  ]

let find id = List.find (fun e -> e.id = id) all

let compute e ctx =
  let t0 = Unix.gettimeofday () in
  let report = e.compute ctx in
  Manifest.record_experiment ~id:e.id ~seconds:(Unix.gettimeofday () -. t0);
  report

let run e ctx = Result.print (compute e ctx)

let run_all ctx = List.iter (fun e -> run e ctx) all
