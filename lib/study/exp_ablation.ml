(* Ablation study: which ingredients of OptS matter?

   Not a figure of the paper, but a direct test of the design arguments in
   Sections 3-4: (a) the descending threshold schedule places popular
   sequences next to equally popular ones; (b) four seeds expose the four
   invocation classes' paths; (c) crossing routine boundaries (descending
   into callees) is the main difference from Chang-Hwu; (d) the
   SelfConfFree area protects the hottest blocks.  Each variant removes
   one ingredient and is simulated on the paper's 8 KB direct-mapped
   cache. *)

type variant = {
  name : string;
  what : string;
  misses : int;  (** Sum over the four workloads. *)
  vs_base : float;
  vs_opt_s : float;
}

let os_variant (ctx : Context.t) ?schedule ?follow_calls ?(params = Opt.params ()) name =
  let model = ctx.Context.model in
  let r =
    Opt.os_layout ?schedule ?follow_calls ~model ~profile:ctx.Context.avg_os_profile
      ~loops:(Context.os_loops ctx) params
  in
  let layouts =
    Array.map
      (fun ((_ : Workload.t), program) ->
        Program_layout.with_os_map
          (Program_layout.base ~model ~program)
          ~name r.Opt.map ~os_meta:(Some r))
      ctx.Context.pairs
  in
  layouts

let total_misses ctx layouts =
  let runs =
    Runner.simulate_config ctx ~layouts ~config:(Config.make ~size_kb:8 ()) ()
  in
  Counters.misses (Runner.total runs)

let compute (ctx : Context.t) =
  let base = total_misses ctx (Levels.build ctx Levels.Base) in
  let full = total_misses ctx (os_variant ctx "OptS") in
  let variant name what layouts =
    let misses = total_misses ctx layouts in
    {
      name;
      what;
      misses;
      vs_base = Stats.ratio misses base;
      vs_opt_s = Stats.ratio misses full;
    }
  in
  [
    variant "OptS" "full algorithm" (os_variant ctx "OptS");
    variant "-schedule" "flat (0,0) passes, no threshold descent"
      (os_variant ctx ~schedule:Schedule.flat "flat");
    variant "-seeds" "interrupt seed only"
      (os_variant ctx
         ~schedule:(Schedule.restrict [ Service.Interrupt ] Schedule.paper)
         "one-seed");
    variant "-interleave" "sequences stop at routine boundaries"
      (os_variant ctx ~follow_calls:false "no-interleave");
    variant "-scf" "no SelfConfFree area"
      (os_variant ctx ~params:(Opt.params ~scf_cutoff:None ()) "no-scf");
  ]
  |> fun variants -> (base, variants)

let report ctx =
  let base, variants = compute ctx in
  let t =
    Table.create
      [
        ("variant", Table.Left); ("removes", Table.Left); ("misses", Table.Right);
        ("vs Base", Table.Right); ("vs OptS", Table.Right);
      ]
  in
  Table.add_row t
    [ "Base"; "(original layout)"; Table.cell_i base; Table.cell_f 1.0; "" ];
  List.iter
    (fun v ->
      Table.add_row t
        [
          v.name; v.what; Table.cell_i v.misses; Table.cell_f v.vs_base;
          Table.cell_f v.vs_opt_s;
        ])
    variants;
  Result.report ~id:"ablation"
    ~section:"Ablation: removing one OptS ingredient at a time (8KB DM)"
    [
      Result.of_table t;
      Result.note
        "every ingredient should cost misses when removed; the threshold schedule and";
      Result.note
        "caller/callee interleaving are the paper's claimed advantages over C-H";
    ]

let run ctx = Result.print (report ctx)
