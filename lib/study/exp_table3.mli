(** Table 3: fraction of OS instructions in loops without procedure calls
    (dynamic, static-over-executed, static-over-total). *)

type row = {
  workload : string;
  dynamic_pct : float;
  static_executed_pct : float;
  static_pct : float;
}

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
