(** Figure 13: OS references and misses classified by the region the block
    has in the OptL layout (MainSeq / SelfConfFree / Loops / OtherSeq),
    for Base, C-H, OptS and OptL in the 8 KB direct-mapped cache. *)

type split = {
  main_seq : float;
  self_conf_free : float;
  loops : float;
  other_seq : float;
}

type row = {
  workload : string;
  refs : split;  (** Percentages of OS references. *)
  misses : (Levels.level * split) array;  (** Percentages of OS misses. *)
}

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
