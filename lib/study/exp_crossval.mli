(** Profile cross-validation (beyond the paper): OptS layouts built from
    each single workload's profile, evaluated on every workload,
    normalized to each workload's own-profile layout. *)

type result = {
  names : string array;
  matrix : float array array;
  average_row : float array;
}

val compute : Context.t -> result
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
