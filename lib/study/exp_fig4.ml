type result = {
  loop_count : int;
  iters_le_6_pct : float;
  iters_le_25_pct : float;
  max_size_bytes : int;
  iteration_bins : (string * int) list;
  size_bins : (string * int) list;
}

let union_profile (ctx : Context.t) = Profile.average (Array.to_list ctx.Context.os_profiles)

let analyze_plain ctx =
  let g = Context.os_graph ctx in
  let loops = Context.os_loops ctx in
  let infos = Loopstat.analyze g (union_profile ctx) loops in
  fst (Loopstat.split_by_calls infos)

let compute ctx =
  let plain = analyze_plain ctx in
  let iters =
    Array.of_list (List.map (fun (i : Loopstat.info) -> i.iterations_per_invocation) plain)
  in
  let n = Array.length iters in
  let le k = Array.fold_left (fun acc v -> if v <= k then acc + 1 else acc) 0 iters in
  let iter_hist = Histogram.explicit [| 2; 4; 6; 10; 25; 50; 100; 300 |] in
  Array.iter (fun v -> Histogram.add iter_hist (int_of_float v)) iters;
  let size_hist = Histogram.explicit [| 50; 100; 150; 200; 300; 500 |] in
  List.iter
    (fun (i : Loopstat.info) -> Histogram.add size_hist i.executed_body_bytes)
    plain;
  let max_size =
    List.fold_left (fun acc (i : Loopstat.info) -> max acc i.executed_body_bytes) 0 plain
  in
  {
    loop_count = n;
    iters_le_6_pct = Stats.pct (le 6.0) n;
    iters_le_25_pct = Stats.pct (le 25.0) n;
    max_size_bytes = max_size;
    iteration_bins = Histogram.to_list iter_hist;
    size_bins = Histogram.to_list size_hist;
  }

let report ctx =
  let r = compute ctx in
  Result.report ~id:"fig4" ~section:"Figure 4: loops without procedure calls"
    [
      Result.note "executed loops without calls: %d" r.loop_count;
      Result.series ~label:"  iterations per invocation"
        (List.map (fun (l, c) -> (l, float_of_int c)) r.iteration_bins);
      Result.series ~label:"  executed static size (bytes)"
        (List.map (fun (l, c) -> (l, float_of_int c)) r.size_bins);
      Result.note "loops with <= 6 iterations/invocation: %.0f%%" r.iters_le_6_pct;
      Result.note "loops with <= 25 iterations/invocation: %.0f%%" r.iters_le_25_pct;
      Result.note "largest executed loop body: %d bytes" r.max_size_bytes;
      Result.paper "156 loops; 50% run <= 6 iterations, ~75% <= 25; largest spans 300 bytes";
    ]

let run ctx = Result.print (report ctx)
