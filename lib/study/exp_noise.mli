(** Profile-quality sensitivity (beyond the paper): OptS rebuilt from a
    multiplicatively perturbed profile, evaluated on the clean traces,
    as the perturbation spread grows. *)

type point = { label : string; spread : float; ratio : float }

val spreads : float array

val perturb : seed:int -> spread:float -> Profile.t -> Profile.t

val compute : Context.t -> point array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
