type split = {
  main_seq : float;
  self_conf_free : float;
  loops : float;
  other_seq : float;
}

type row = {
  workload : string;
  refs : split;
  misses : (Levels.level * split) array;
}

let classify_split region_of values =
  let acc = [| 0.0; 0.0; 0.0; 0.0 |] in
  Array.iteri
    (fun b v ->
      let slot =
        match region_of b with
        | Address_map.Main_seq -> 0
        | Address_map.Self_conf_free -> 1
        | Address_map.Loop_area -> 2
        | Address_map.Other_seq | Address_map.Cold -> 3
      in
      acc.(slot) <- acc.(slot) +. v)
    values;
  let total = Array.fold_left ( +. ) 0.0 acc in
  let pct i = if total > 0.0 then 100.0 *. acc.(i) /. total else 0.0 in
  { main_seq = pct 0; self_conf_free = pct 1; loops = pct 2; other_seq = pct 3 }

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let config = Config.make ~size_kb:8 () in
  (* Region taxonomy comes from the OptL layout (as in the paper). *)
  let optl = Levels.build ctx Levels.OptL in
  let region_of =
    let m = optl.(0).Program_layout.os_map in
    fun b -> Address_map.region m b
  in
  let levels = [| Levels.Base; Levels.CH; Levels.OptS; Levels.OptL |] in
  let batch =
    Runner.simulate_batch ctx
      ~members:(Array.map (fun level -> (Levels.build ctx level, config)) levels)
      ~attribute_os:true ()
  in
  let runs_per_level = Array.mapi (fun k level -> (level, batch.(k))) levels in
  Array.mapi
    (fun i (w, _) ->
      let p = ctx.Context.os_profiles.(i) in
      let ref_words =
        Array.init (Graph.block_count g) (fun b ->
            p.Profile.block.(b)
            *. float_of_int (Block.instruction_words (Graph.block g b)))
      in
      {
        workload = w.Workload.name;
        refs = classify_split region_of ref_words;
        misses =
          Array.map
            (fun (level, runs) ->
              let m = runs.(i).Runner.os_block_misses in
              (level, classify_split region_of (Array.map float_of_int m)))
            runs_per_level;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("Quantity", Table.Left);
        ("MainSeq", Table.Right); ("SelfConfFree", Table.Right);
        ("Loops", Table.Right); ("OtherSeq", Table.Right);
      ]
  in
  let add name label (s : split) =
    Table.add_row t
      [
        name; label;
        Table.cell_pct s.main_seq; Table.cell_pct s.self_conf_free;
        Table.cell_pct s.loops; Table.cell_pct s.other_seq;
      ]
  in
  Array.iter
    (fun r ->
      add r.workload "refs" r.refs;
      Array.iter
        (fun (level, s) -> add "" ("misses " ^ Levels.to_string level) s)
        r.misses;
      Table.add_separator t)
    rows;
  Result.report ~id:"fig13" ~section:"Figure 13: OS refs and misses by block region (8KB DM)"
    [
      Result.of_table t;
      Result.paper
        "MainSeq+SelfConfFree carry 50-65% of refs (Shell lower) and 67-83% of Base";
      Result.paper
        "misses (33% Shell); loops cause almost no misses; OptS empties SelfConfFree misses";
    ]

let run ctx = Result.print (report ctx)
