(** Multiprocessor validation (the paper's 4-CPU, one-cache-per-processor
    methodology): per-CPU miss rates under Base and OptS with
    cross-processor interrupt coupling. *)

type row = {
  workload : string;
  base_rates : float array;  (** Per CPU. *)
  opt_rates : float array;
  forced_share : float;
}

val cpus : int

val compute : Context.t -> row array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
