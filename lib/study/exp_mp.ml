(* Multiprocessor validation (Section 2's methodology): the paper traces
   four processors, each with its own instruction cache, and reports the
   per-processor average.  This experiment runs the four workloads on a
   4-CPU machine model with cross-processor interrupts, replays each CPU's
   trace through its own 8 KB cache under Base and OptS, and checks that
   (a) per-CPU miss rates are mutually consistent, so averaging is sound,
   and (b) the OptS gain measured on one CPU transfers to the machine. *)

type row = {
  workload : string;
  base_rates : float array;  (** Per CPU. *)
  opt_rates : float array;
  forced_share : float;  (** Cross-processor interrupts / invocations. *)
}

let cpus = 4

let xcall_prob_for (w : Workload.t) =
  (* Parallel scientific loads synchronize constantly; the multiprogrammed
     shell almost never broadcasts. *)
  match w.Workload.name with
  | "TRFD_4" -> 0.5
  | "TRFD+Make" | "ARC2D+Fsck" -> 0.25
  | _ -> 0.03

let compute (ctx : Context.t) =
  let base_layouts = Levels.build ctx Levels.Base in
  let opt_layouts = Levels.build ctx Levels.OptS in
  Array.mapi
    (fun i ((w : Workload.t), program) ->
      let r =
        Multiproc.run ~program ~workload:w ~cpus
          ~words_per_cpu:(ctx.Context.words / cpus)
          ~seed:(97 + i)
          ~xcall_prob:(xcall_prob_for w) ()
      in
      let rates layout =
        Array.map
          (fun (c : Multiproc.cpu) ->
            let system = System.unified (Config.make ~size_kb:8 ()) in
            Replay.run_range ~trace:c.Multiproc.trace
              ~map:(Program_layout.code_map layout)
              ~systems:[| system |]
              ~warmup:(Trace.exec_count c.Multiproc.trace / 5);
            Counters.miss_rate (System.counters system))
          r.Multiproc.cpus
      in
      let invocations =
        Array.fold_left
          (fun acc (c : Multiproc.cpu) ->
            acc + Array.fold_left ( + ) 0 c.Multiproc.invocations)
          0 r.Multiproc.cpus
      in
      let forced =
        Array.fold_left
          (fun acc (c : Multiproc.cpu) -> acc + c.Multiproc.forced)
          0 r.Multiproc.cpus
      in
      {
        workload = w.Workload.name;
        base_rates = rates base_layouts.(i);
        opt_rates = rates opt_layouts.(i);
        forced_share = Stats.ratio forced invocations;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("Layout", Table.Left); ("CPU0 %", Table.Right);
        ("CPU1 %", Table.Right); ("CPU2 %", Table.Right); ("CPU3 %", Table.Right);
        ("avg %", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      let line name rates =
        Table.add_row t
          ([ ""; name ]
          @ Array.to_list
              (Array.map (fun x -> Table.cell_f ~decimals:3 (100.0 *. x)) rates)
          @ [ Table.cell_f ~decimals:3 (100.0 *. Stats.mean rates) ])
      in
      Table.add_row t [ r.workload; ""; ""; ""; ""; ""; "" ];
      line "Base" r.base_rates;
      line "OptS" r.opt_rates;
      Table.add_separator t)
    rows;
  let shares =
    Array.to_list rows
    |> List.map (fun r ->
           Result.note "%-12s cross-processor interrupts: %.0f%% of invocations"
             r.workload (100.0 *. r.forced_share))
  in
  Result.report ~id:"mp" ~section:"Multiprocessor: per-CPU miss rates, 4 CPUs, 8KB DM each"
    ((Result.of_table t :: shares)
    @ [
        Result.paper
          "the paper reports per-processor averages; OptS must win on every CPU,";
        Result.paper "with parallel loads showing heavy cross-processor interrupt shares";
      ])

let run ctx = Result.print (report ctx)
