type entry = { counters : Counters.t; os_block_misses : int array }

type key = string

let key ~context ~layouts ~config ~warmup_fraction ~attribute_os =
  let buf = Buffer.create 256 in
  Buffer.add_string buf context;
  Array.iter
    (fun d ->
      Buffer.add_char buf '|';
      Buffer.add_string buf d)
    layouts;
  Buffer.add_char buf '|';
  (* The runtime representation covers every Config field, including a
     Random policy's seed (Config.to_string does not). *)
  Buffer.add_string buf (Marshal.to_string (config : Config.t) []);
  Buffer.add_string buf (Printf.sprintf "|%.17g|%b" warmup_fraction attribute_os);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let table : (string, entry array) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let hit_count = ref 0
let miss_count = ref 0

(* Mirrored into the metrics registry so the manifest's metrics snapshot
   (and `icache-opt validate`'s hits + misses = lookups check) sees them
   without reaching into this module. *)
let m_hits = Metrics_registry.counter "sim_cache.hits"
let m_misses = Metrics_registry.counter "sim_cache.misses"
let m_lookups = Metrics_registry.counter "sim_cache.lookups"

let copy_entry e =
  {
    counters = Counters.copy e.counters;
    os_block_misses = Array.copy e.os_block_misses;
  }

let find k =
  Metrics_registry.incr m_lookups;
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table k with
      | Some entries ->
          incr hit_count;
          Metrics_registry.incr m_hits;
          Some (Array.map copy_entry entries)
      | None ->
          incr miss_count;
          Metrics_registry.incr m_misses;
          None)

let add k entries =
  let entries = Array.map copy_entry entries in
  Mutex.protect lock (fun () ->
      if not (Hashtbl.mem table k) then Hashtbl.add table k entries)

let hits () = Mutex.protect lock (fun () -> !hit_count)

let misses () = Mutex.protect lock (fun () -> !miss_count)

let hit_rate () =
  Mutex.protect lock (fun () ->
      let total = !hit_count + !miss_count in
      if total = 0 then 0.0 else float_of_int !hit_count /. float_of_int total)

let reset_stats () =
  Mutex.protect lock (fun () ->
      hit_count := 0;
      miss_count := 0)

let clear () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset table;
      hit_count := 0;
      miss_count := 0)
