(* Profile-quality sensitivity.

   Real deployments profile with sampling, partial runs, or stale
   kernels; the counts feeding the layout are never exact.  This
   experiment multiplies every block and arc count by a log-normal-ish
   factor of increasing spread, rebuilds the OptS layout from the noisy
   profile, and evaluates it on the clean traces.  A flat curve means the
   algorithm only needs the profile's order of magnitude - which is what
   its threshold structure (decades of ExecThresh) suggests. *)

type point = { label : string; spread : float; ratio : float }

let spreads = [| 0.0; 0.25; 0.5; 1.0; 2.0 |]

let perturb ~seed ~spread (p : Profile.t) =
  let g = Prng.of_int seed in
  let noisy x =
    if x <= 0.0 then 0.0
    else begin
      (* Multiply by exp(u * spread), u uniform in [-1, 1): spread 1.0
         scatters counts by up to e in both directions. *)
      let u = (2.0 *. Prng.unit_float g) -. 1.0 in
      x *. Float.exp (u *. spread)
    end
  in
  let q =
    {
      Profile.block = Array.map noisy p.Profile.block;
      arc = Array.map noisy p.Profile.arc;
      total_blocks = 0.0;
      invocations = p.Profile.invocations;
    }
  in
  q.Profile.total_blocks <- Array.fold_left ( +. ) 0.0 q.Profile.block;
  q

let compute (ctx : Context.t) =
  let model = ctx.Context.model in
  let loops = Context.os_loops ctx in
  let misses_with os_map =
    let layouts =
      Array.map
        (fun ((_ : Workload.t), program) ->
          Program_layout.with_os_map
            (Program_layout.base ~model ~program)
            ~name:"noise" os_map ~os_meta:None)
        ctx.Context.pairs
    in
    let runs =
      Runner.simulate_config ctx ~layouts ~config:(Config.make ~size_kb:8 ()) ()
    in
    Counters.misses (Runner.total runs)
  in
  let clean =
    misses_with
      (Opt.os_layout ~model ~profile:ctx.Context.avg_os_profile ~loops (Opt.params ()))
        .Opt.map
  in
  Array.map
    (fun spread ->
      let profile = perturb ~seed:31 ~spread ctx.Context.avg_os_profile in
      let m =
        misses_with (Opt.os_layout ~model ~profile ~loops (Opt.params ())).Opt.map
      in
      {
        label = Printf.sprintf "%.2f" spread;
        spread;
        ratio = Stats.ratio m clean;
      })
    spreads

let report ctx =
  let points = compute ctx in
  let t =
    Table.create
      [ ("noise spread (xe^±s)", Table.Right); ("misses vs clean OptS", Table.Right) ]
  in
  Array.iter
    (fun p -> Table.add_row t [ p.label; Table.cell_f p.ratio ])
    points;
  Result.report ~id:"noise"
    ~section:"Profile noise: OptS from a perturbed profile vs the clean one"
    [
      Result.of_table t;
      Result.note "the decade-wide threshold schedule only needs the profile's order of";
      Result.note "magnitude, so moderate profiling error costs little";
    ]

let run ctx = Result.print (report ctx)
