(** Figure 1: misses on OS code in a 16 KB direct-mapped cache as a
    function of code virtual address (TRFD+Make), split into total,
    self-interference and interference-with-application components, in
    1 KB address bins. *)

type result = {
  total_bins : int array;
  self_bins : int array;
  cross_bins : int array;
  self_pct : float;  (** Self-interference share of OS misses. *)
  top2_peak_pct : float;  (** Share of OS misses in the two largest bins. *)
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
