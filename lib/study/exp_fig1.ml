type result = {
  total_bins : int array;
  self_bins : int array;
  cross_bins : int array;
  self_pct : float;
  top2_peak_pct : float;
}

(* TRFD+Make is workload index 1, as in the paper's Figure 1. *)
let compute (ctx : Context.t) =
  let wl = 1 in
  let layouts = Levels.build ctx Levels.Base in
  let config = Config.make ~size_kb:16 () in
  let sys = System.unified config in
  let program = snd ctx.Context.pairs.(wl) in
  let blocks =
    Array.init (Program.image_count program) (fun k ->
        Graph.block_count (Program.graph program k))
  in
  System.enable_block_attribution sys ~images:(Program.image_count program) ~blocks;
  let trace = ctx.Context.traces.(wl) in
  let map = Program_layout.code_map layouts.(wl) in
  let warmup = Trace.exec_count trace / 5 in
  Replay.run_range ~trace ~map ~systems:[| sys |] ~warmup;
  let c = System.counters sys in
  let base_map = layouts.(wl).Program_layout.os_map in
  let positions = Address_map.addr_array base_map in
  let sizes = Address_map.bytes_array base_map in
  let bins misses = Missmap.by_address ~positions ~sizes ~misses ~bin:1024 in
  let total_bins = bins (System.block_misses sys ~image:0) in
  {
    total_bins;
    self_bins = bins (System.block_misses_self sys ~image:0);
    cross_bins = bins (System.block_misses_cross sys ~image:0);
    self_pct = Stats.pct c.Counters.os_self (Counters.os_misses c);
    top2_peak_pct = 100.0 *. Missmap.peak_fraction total_bins ~n:2;
  }

let report ctx =
  let r = compute ctx in
  let peaks =
    List.filter_map
      (fun (bin, count) ->
        if count > 0 then
          Some
            (Result.note "  addr %5dK: total %6d  self %6d  app-interf %6d" bin count
               r.self_bins.(bin) r.cross_bins.(bin))
        else None)
      (Missmap.peaks r.total_bins ~n:8)
  in
  Result.report ~id:"fig1"
    ~section:"Figure 1: OS miss-address distribution (TRFD+Make, 16KB DM)"
    ((Result.note "largest miss peaks (1KB bins of the Base address space):" :: peaks)
    @ [
        Result.scalar ~label:"self_interference_pct" ~value:r.self_pct
          ~text:
            (Printf.sprintf "self-interference share of OS misses: %.1f%%" r.self_pct);
        Result.scalar ~label:"top2_peak_pct" ~value:r.top2_peak_pct
          ~text:
            (Printf.sprintf "two largest peaks hold %.1f%% of OS misses" r.top2_peak_pct);
        Result.paper
          "self-interference accounts for over 90% of OS misses in all workloads;";
        Result.paper "the two dominant peaks hold 12.6% + 8.6% of OS misses in TRFD+Make";
      ])

let run ctx = Result.print (report ctx)
