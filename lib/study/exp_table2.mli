(** Table 2: predictability and weight of core (8 KB) and regular (16 KB)
    sequences per workload. *)

type row = {
  workload : string;
  core_pred : Seqstat.predictability;
  core_weight : Seqstat.weight;
  regular_pred : Seqstat.predictability;
  regular_weight : Seqstat.weight;
}

type result = {
  core : Seqstat.set;
  regular : Seqstat.set;
  rows : row array;
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
