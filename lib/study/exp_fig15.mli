(** Figure 15: (a) total miss rates for 4-32 KB direct-mapped caches with
    32-byte lines under Base, C-H and OptS; (b) estimated execution-speed
    increase of OptS over Base for 10/30/50-cycle miss penalties. *)

type point = {
  size_kb : int;
  workload : string;
  base_pct : float;
  ch_pct : float;
  opt_s_pct : float;
  speedups : float array;  (** Per {!Speedup.penalties}. *)
}

val compute : Context.t -> point array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
