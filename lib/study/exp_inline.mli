(** Function-inlining comparison (the alternative Section 4.1 rejects):
    rewrite the kernel with {!Inline.transform}, re-trace, lay it out with
    OptS, and compare against OptS on the original kernel. *)

type row = {
  workload : string;
  opt_s_rate : float;
  inline_rate : float;
}

type result = {
  stats : Inline.stats;
  code_growth_pct : float;
  rows : row array;
}

val compute : Context.t -> result
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
