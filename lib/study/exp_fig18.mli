(** Figure 18: alternative setups at a fixed 8 KB / 32 B budget -
    [Sep] (split 4 KB OS + 4 KB application caches), [Resv] (1 KB cache
    reserved for the hottest OS code + 7 KB for the rest), and [Call]
    (the Section 4.4 loop-callee placement) - against Base and OptA. *)

type bar = {
  setup : string;
  os_misses : int;
  app_misses : int;
  total : int;
  normalized : float;  (** Over Base. *)
}

type row = { workload : string; bars : bar array }

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
