(** Figure 9: the paper's worked example of sequence placement over four
    timer routines (push_hrtime, read_hrc, check_curtimer, update_hrtimer).

    The flow graph and profile are rebuilt exactly as described; running
    the two threshold passes (0.01, 0.1) then (0, 0) must interleave the
    callees' hot blocks between the caller's blocks in the order the paper
    lists. *)

type result = {
  pass1 : string list;  (** Block labels placed by the (0.01, 0.1) pass. *)
  pass2 : string list;  (** Block labels placed by the (0, 0) pass. *)
}

val expected_pass1 : string list
val expected_pass2 : string list

val compute : unit -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
(** The context is unused (the example is self-contained); kept for
    driver uniformity. *)
