(** The evaluation's layout levels and their per-workload program
    layouts.  OS placements are shared across workloads (the paper builds
    them from the averaged profile); application placements depend on the
    workload's app images. *)

type level = Base | CH | OptS | OptL | OptA

val all : level array
val to_string : level -> string

val of_string : string -> (level, string) result
(** Case-insensitive parse of the {!to_string} names (plus ["ch"] for
    ["C-H"]); [Error] carries a human-readable message listing the valid
    spellings.  The single point of truth for every CLI level argument. *)

val build : Context.t -> ?params:Opt.params -> level -> Program_layout.t array
(** One program layout per workload, in workload order.  Memoized on
    ({!Context.key}, level, params): experiments that rebuild the same
    level share one layout array instead of re-running the placement
    algorithms.  Underneath, construction is staged through
    {!Layout_cache}, so even distinct memo keys (a cache-size sweep, a
    SelfConfFree sweep, OptS vs OptL vs OptA) share the stages whose
    inputs did not change, and the per-workload placements of a miss are
    built in parallel under [--jobs]. *)

val build_uncached :
  Context.t -> ?jobs:int -> params:Opt.params -> level -> Program_layout.t array
(** The construction behind {!build}, bypassing the whole-array memo (the
    staged {!Layout_cache} layer still applies unless disabled).  The
    first workload is built alone to warm the shared OS-side stage
    caches; the rest fan out over [jobs] domains.  Exposed for the
    staged-equals-monolithic equivalence tests. *)

val build_opt_s_with : Context.t -> params:Opt.params -> Program_layout.t array
(** OptS with explicit parameters (SelfConfFree sweeps, cache-size
    variations). *)

val code_maps : Program_layout.t array -> Replay.code_map array
