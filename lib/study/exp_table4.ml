type row = {
  service : Service.t;
  exec_thresh : float;
  branch_thresh : float;
  blocks : int;
  bytes : int;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  let model = ctx.Context.model in
  let seed_entry c = (Model.seed_for model c).Model.entry in
  let seqs =
    Sequence.build ~graph:g ~profile:ctx.Context.avg_os_profile ~seed_entry
      ~schedule:Schedule.paper ()
  in
  Array.of_list
    (List.map
       (fun (s : Sequence.t) ->
         {
           service = s.Sequence.pass.Schedule.service;
           exec_thresh = s.Sequence.pass.Schedule.exec_thresh;
           branch_thresh = s.Sequence.pass.Schedule.branch_thresh;
           blocks = Array.length s.Sequence.blocks;
           bytes = s.Sequence.bytes;
         })
       seqs)

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Seed", Table.Left); ("ExecThresh", Table.Right);
        ("BranchThresh", Table.Right); ("# of BBs", Table.Right);
        ("# of Bytes", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      Table.add_row t
        [
          Service.to_string r.service;
          Printf.sprintf "%g" r.exec_thresh;
          Printf.sprintf "%g" r.branch_thresh;
          Table.cell_i r.blocks;
          Table.cell_i r.bytes;
        ])
    rows;
  Result.report ~id:"table4" ~section:"Table 4: threshold schedule and sequence lengths"
    [
      Result.of_table t;
      Result.paper
        "interrupt seed processed first (1.4%/0.4), others join at lower levels; early";
      Result.paper
        "sequences are hundreds of bytes to a few KB, final sweeps tens of KB";
    ]

let run ctx = Result.print (report ctx)
