(** Figure 4: loops without procedure calls - distribution of iterations
    per invocation (left) and of the static size of the executed part
    (right).  Union of the four workloads. *)

type result = {
  loop_count : int;
  iters_le_6_pct : float;
  iters_le_25_pct : float;
  max_size_bytes : int;
  iteration_bins : (string * int) list;
  size_bins : (string * int) list;
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
