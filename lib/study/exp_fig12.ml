type miss_bar = {
  level : Levels.level;
  os_self : int;
  os_cross : int;
  app_cross : int;
  app_self : int;
  total : int;
  normalized : float;
}

type row = { workload : string; os_ref_pct : float; bars : miss_bar array }

let compute (ctx : Context.t) =
  let config = Config.make ~size_kb:8 () in
  (* The whole level sweep is one batch: every uncached member replays in
     the same fused pass over each workload trace. *)
  let batch =
    Runner.simulate_batch ctx
      ~members:(Array.map (fun level -> (Levels.build ctx level, config)) Levels.all)
      ()
  in
  let per_level = Array.mapi (fun k level -> (level, batch.(k))) Levels.all in
  Array.mapi
    (fun i (w, _) ->
      let base_total =
        let _, runs = per_level.(0) in
        Counters.misses runs.(i).Runner.counters
      in
      let bars =
        Array.map
          (fun (level, runs) ->
            let c = runs.(i).Runner.counters in
            {
              level;
              os_self = c.Counters.os_self + c.Counters.os_cold;
              os_cross = c.Counters.os_cross;
              app_cross = c.Counters.app_cross;
              app_self = c.Counters.app_self + c.Counters.app_cold;
              total = Counters.misses c;
              normalized = Stats.ratio (Counters.misses c) base_total;
            })
          per_level
      in
      let c0 = (snd per_level.(0)).(i).Runner.counters in
      {
        workload = w.Workload.name;
        os_ref_pct = Stats.pct c0.Counters.refs_os (Counters.refs c0);
        bars;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      [
        ("Workload", Table.Left); ("OS refs", Table.Right); ("Level", Table.Left);
        ("OS self", Table.Right); ("OS x-app", Table.Right);
        ("App x-OS", Table.Right); ("App self", Table.Right);
        ("Total", Table.Right); ("Norm", Table.Right);
      ]
  in
  Array.iter
    (fun r ->
      Array.iteri
        (fun j b ->
          Table.add_row t
            [
              (if j = 0 then r.workload else "");
              (if j = 0 then Table.cell_pct r.os_ref_pct else "");
              Levels.to_string b.level;
              Table.cell_i b.os_self;
              Table.cell_i b.os_cross;
              Table.cell_i b.app_cross;
              Table.cell_i b.app_self;
              Table.cell_i b.total;
              Table.cell_f b.normalized;
            ])
        r.bars;
      Table.add_separator t)
    rows;
  Result.report ~id:"fig12" ~section:"Figure 12: misses by layout level (8KB DM, 32B lines)"
    [
      Result.of_table t;
      Result.paper
        "OS is 40-60% of refs (Shell ~100%); C-H drops misses to 0.43-0.62 of Base,";
      Result.paper
        "OptS to 0.24-0.53 (25% below C-H); OptL ~ OptS; OptA another 4-19% lower";
    ]

let run ctx = Result.print (report ctx)
