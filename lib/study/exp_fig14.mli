(** Figure 14: distribution of OS misses over the code (sum of workloads,
    8 KB direct-mapped, 32-byte lines) under Base, C-H and OptS; blocks are
    plotted at their Base-layout addresses so the peaks are comparable. *)

type result = {
  level : Levels.level;
  bins : int array;
  total : int;
  top5_pct : float;
  tallest_peak : int;
}

val compute : Context.t -> result array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
