(* Fall-through rate: a second, fetch-side benefit of layout.

   Beyond cache misses, placing the likely successor textually next turns
   taken branches into fall-throughs, which helps any sequential
   prefetcher or wide fetch unit.  Measured as the fraction of dynamic
   OS block transitions whose successor starts exactly where the current
   block ends. *)

type row = { workload : string; rates : (string * float) list }

let levels = [ ("Base", Levels.Base); ("C-H", Levels.CH); ("OptS", Levels.OptS) ]

let rate ~trace ~(map : Replay.code_map) =
  let transitions = ref 0 and fallthroughs = ref 0 in
  let prev_end = ref (-1) in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Exec { image; block } when Program.is_os image ->
          let addr = map.Replay.addr.(image).(block) in
          if !prev_end >= 0 then begin
            incr transitions;
            if addr = !prev_end then incr fallthroughs
          end;
          prev_end := addr + map.Replay.bytes.(image).(block)
      | Trace.Exec _ -> ()
      | Trace.Invocation_start _ | Trace.Invocation_end -> prev_end := -1);
  Stats.ratio !fallthroughs !transitions

let compute (ctx : Context.t) =
  let per_level =
    List.map
      (fun (name, level) ->
        let layouts = Levels.build ctx level in
        ( name,
          Array.mapi
            (fun i layout ->
              rate ~trace:ctx.Context.traces.(i)
                ~map:(Program_layout.code_map layout))
            layouts ))
      levels
  in
  Array.mapi
    (fun i ((w : Workload.t), _) ->
      {
        workload = w.Workload.name;
        rates = List.map (fun (n, r) -> (n, r.(i))) per_level;
      })
    ctx.Context.pairs

let report ctx =
  let rows = compute ctx in
  let t =
    Table.create
      (("Workload", Table.Left)
      :: List.map (fun (n, _) -> (n, Table.Right)) levels)
  in
  Array.iter
    (fun r ->
      Table.add_row t
        (r.workload
        :: List.map (fun (_, rate) -> Table.cell_pct ~decimals:1 (100.0 *. rate)) r.rates))
    rows;
  Result.report ~id:"fallthrough"
    ~section:"Fall-through rate of dynamic OS block transitions"
    [
      Result.of_table t;
      Result.note "layout straightens control flow: sequences turn the likely path into";
      Result.note "straight-line fetches (the prefetch benefit behind Figure 17a)";
    ]

let run ctx = Result.print (report ctx)
