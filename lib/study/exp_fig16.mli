(** Figure 16: effect of the SelfConfFree-area size.  Layout variants:
    Base, no SelfConfFree area, and cut-offs of 3.0%, 2.0% and 1.0% of the
    loop-adjusted block invocations; caches of 4, 8 and 16 KB
    (direct-mapped, 32-byte lines).  Misses are normalized to Base. *)

type cell = { variant : string; normalized : float; misses : int }

type row = { size_kb : int; workload : string; cells : cell array }

val variants : (string * float option) array
(** (label, cut-off): None = no SelfConfFree area. *)

val scf_area_bytes : Context.t -> (string * int) array
(** The SelfConfFree area size each cut-off produces. *)

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
