(** Figure 17: miss rates of Base, C-H and OptS while varying (a) the line
    size of an 8 KB direct-mapped cache from 16 to 128 bytes, and (b) its
    associativity from 1 to 8 ways. *)

type point = {
  label : string;  (** e.g. "64B" or "4way". *)
  workload : string;
  base_pct : float;
  ch_pct : float;
  opt_s_pct : float;
}

val compute_line_sizes : Context.t -> point array
val compute_associativities : Context.t -> point array

val average_reduction : point array -> label:string -> float
(** Mean OptS miss reduction versus Base over the workloads at [label]. *)

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
