(** Table 1: characteristics of the operating-system instruction
    references - executed code size (bytes, % of code, % of basic blocks)
    and the invocation mix per class. *)

type row = {
  workload : string;
  executed_bytes : int;
  executed_code_pct : float;
  executed_bb_pct : float;
  invocation_pct : float array;  (** Per service class. *)
}

val compute : Context.t -> row array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
