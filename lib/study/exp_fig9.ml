type result = { pass1 : string list; pass2 : string list }

let expected_pass1 =
  [
    "push0"; "push1"; "push4"; "push8"; "read0"; "read1"; "read2"; "read3";
    "push9"; "push10"; "push11"; "push12"; "chk0"; "chk1"; "chk2"; "chk5";
    "push13"; "upd0"; "push14"; "push15"; "push17"; "push18"; "push19";
    "push16";
  ]

let expected_pass2 = [ "push5"; "push7" ]

(* Build the Figure 9 graph: block weights of 100 on the hot path, 30 on
   the push16 side path (so it passes ExecThresh = 0.01), 1 on the cold
   push5/push7 path, 0 on the pruned blocks. *)
let build () =
  let bld = Graph.builder () in
  let push = Graph.declare_routine bld "push_hrtime" in
  let read = Graph.declare_routine bld "read_hrc" in
  let chk = Graph.declare_routine bld "check_curtimer" in
  let upd = Graph.declare_routine bld "update_hrtimer" in
  let labels = Hashtbl.create 32 in
  let blk routine name ?call () =
    let b = Graph.add_block bld ~routine ~size:16 ?call () in
    Hashtbl.replace labels b name;
    b
  in
  let p = Array.init 20 (fun i ->
      let call =
        if i = 8 then Some read else if i = 12 then Some chk
        else if i = 13 then Some upd else None
      in
      blk push (Printf.sprintf "push%d" i) ?call ())
  in
  let r = Array.init 4 (fun i -> blk read (Printf.sprintf "read%d" i) ()) in
  let c = Array.init 6 (fun i -> blk chk (Printf.sprintf "chk%d" i) ()) in
  let u = blk upd "upd0" () in
  let weights = Hashtbl.create 32 in
  let arcs = ref [] in
  let arc src dst count =
    let a = Graph.add_arc bld ~src ~dst Arc.Taken in
    arcs := (a, count) :: !arcs
  in
  let w b v = Hashtbl.replace weights b (float_of_int v) in
  (* push_hrtime hot path. *)
  List.iter (fun i -> w p.(i) 100) [ 0; 1; 4; 8; 9; 10; 11; 12; 13; 14; 15; 17; 18; 19 ];
  w p.(16) 30;
  w p.(5) 1;
  w p.(7) 1;
  (* pruned: push2, push3, push6 stay at weight 0. *)
  arc p.(0) p.(1) 100;
  arc p.(1) p.(4) 100;
  arc p.(4) p.(8) 99;
  arc p.(4) p.(5) 1;
  arc p.(5) p.(7) 1;
  arc p.(8) p.(9) 100;
  arc p.(9) p.(10) 100;
  arc p.(10) p.(11) 100;
  arc p.(11) p.(12) 100;
  arc p.(12) p.(13) 100;
  arc p.(13) p.(14) 100;
  arc p.(14) p.(15) 100;
  arc p.(15) p.(17) 70;
  arc p.(15) p.(16) 30;
  arc p.(16) p.(17) 30;
  arc p.(17) p.(18) 100;
  arc p.(18) p.(19) 100;
  (* pruned arcs to unexecuted blocks. *)
  arc p.(1) p.(2) 0;
  arc p.(2) p.(3) 0;
  arc p.(4) p.(6) 0;
  (* read_hrc. *)
  Array.iter (fun b -> w b 100) r;
  arc r.(0) r.(1) 100;
  arc r.(1) r.(2) 100;
  arc r.(2) r.(3) 100;
  (* check_curtimer: hot 0,1,2,5; 3,4 pruned. *)
  List.iter (fun i -> w c.(i) 100) [ 0; 1; 2; 5 ];
  arc c.(0) c.(1) 100;
  arc c.(1) c.(2) 100;
  arc c.(2) c.(5) 100;
  arc c.(2) c.(3) 0;
  arc c.(3) c.(4) 0;
  (* update_hrtimer is the single block u. *)
  w u 100;
  let g = Graph.freeze bld in
  let profile = Profile.empty g in
  Hashtbl.iter (fun b v ->
      profile.Profile.block.(b) <- v;
      profile.Profile.total_blocks <- profile.Profile.total_blocks +. v)
    weights;
  List.iter (fun (a, count) -> profile.Profile.arc.(a) <- float_of_int count) !arcs;
  (g, profile, labels, p.(0))

let compute () =
  let g, profile, labels, seed = build () in
  let schedule =
    Schedule.uniform ~levels:[ (0.01, 0.1); (0.0, 0.0) ]
  in
  let seqs = Sequence.build ~graph:g ~profile ~seed_entry:(fun _ -> seed) ~schedule () in
  let label b = Hashtbl.find labels b in
  match seqs with
  | [ s1; s2 ] ->
      {
        pass1 = Array.to_list (Array.map label s1.Sequence.blocks);
        pass2 = Array.to_list (Array.map label s2.Sequence.blocks);
      }
  | other ->
      {
        pass1 =
          List.concat_map
            (fun (s : Sequence.t) -> Array.to_list (Array.map label s.Sequence.blocks))
            other;
        pass2 = [];
      }

let report _ctx =
  let r = compute () in
  let ok = r.pass1 = expected_pass1 && r.pass2 = expected_pass2 in
  Result.report ~id:"fig9" ~section:"Figure 9: worked sequence-placement example"
    [
      Result.note "pass (0.01, 0.1): %s" (String.concat " " r.pass1);
      Result.note "pass (0, 0):     %s" (String.concat " " r.pass2);
      Result.note "matches the paper's placement: %s" (if ok then "YES" else "NO");
      Result.paper "0 1 4 8 | read 0 1 2 3 | 9 10 11 12 | chk 0 1 2 5 | 13 | upd 0 |";
      Result.paper "14 15 17 18 19 | 16, then (0,0) places 5 and 7";
    ]

let run ctx = Result.print (report ctx)
