(** Fall-through rate (beyond the paper): the fraction of dynamic OS
    block transitions whose successor is textually adjacent, per layout
    level - the fetch-side benefit of straightened control flow. *)

type row = { workload : string; rates : (string * float) list }

val rate : trace:Trace.t -> map:Replay.code_map -> float

val compute : Context.t -> row array
val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
