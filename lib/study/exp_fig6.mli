(** Figure 6: normalized dynamic invocation counts of OS routines, sorted
    descending - a few routines dominate. *)

type result = {
  workload : string;
  executed_routines : int;
  top5_pct : float;  (** Share of invocations in the 5 hottest routines. *)
  top20_pct : float;
  series_head : float array;  (** First 20 normalized values. *)
}

val compute : Context.t -> result array

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
