(** Figure 3: distribution of the probability that an outgoing arc is used
    given that its source block executes (union of all workloads). *)

type result = {
  bins : Arcstat.bin array;
  ge_99 : float;  (** Fraction of arcs with probability >= 0.99. *)
  le_01 : float;  (** Fraction with probability <= 0.01. *)
}

val compute : Context.t -> result

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
