(** Content-addressed memo table for trace-replay results.

    The ~30 experiments of the evaluation repeatedly simulate identical
    (layout, cache geometry) pairs — Figures 12, 13 and 14 alone replay the
    same five layout levels through the same 8 KB cache.  This table keys a
    whole per-workload [run array] on everything the simulation depends on:
    the trace identity (the context's digest over spec/words/seed), the
    per-workload layout digests ({!Program_layout.digest}), the cache
    geometry, the warm-up fraction and the attribution flag.  Equal keys
    provably replay to equal results, so {!Runner.simulate_config} consults
    this table and the experiment suite stops re-simulating.

    Entries and lookups deep-copy counters and miss arrays, so callers may
    freely mutate what they get back.  The table is domain-safe (a single
    process-wide mutex) and process-global; {!hits}/{!misses} feed the
    bench harness's cache-effectiveness report. *)

type entry = {
  counters : Counters.t;
  os_block_misses : int array;
}
(** One workload's simulation result (mirrors [Runner.run], which lives
    above this module in the dependency order). *)

type key

val key :
  context:string ->
  layouts:string array ->
  config:Config.t ->
  warmup_fraction:float ->
  attribute_os:bool ->
  key
(** Build the content address.  [context] is the trace identity (see
    [Context.key]); [layouts] the per-workload placement digests in
    workload order.  The cache geometry is folded in via its runtime
    representation, so every field — size, associativity, line size and
    replacement policy (including a [Random] policy's seed) — separates
    keys. *)

val find : key -> entry array option
(** Deep copy of the cached runs, or [None].  Counts one hit or miss. *)

val add : key -> entry array -> unit
(** Store a deep copy.  First writer wins; duplicate adds are ignored (the
    results are equal by construction). *)

val hits : unit -> int

val misses : unit -> int

val hit_rate : unit -> float
(** [hits / (hits + misses)]; 0 when no lookups have happened. *)

val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop all entries and reset the statistics (tests). *)
