type t = {
  model : Model.t;
  pairs : (Workload.t * Program.t) array;
  traces : Trace.t array;
  stats : Engine.stats array;
  os_profiles : Profile.t array;
  app_profiles : Profile.t array array;
  avg_os_profile : Profile.t;
  avg_app_profile : App_model.t -> Profile.t;
  spec : Spec.t;
  words : int;
  seed : int;
  key : string;
}

let create ?(spec = Spec.default) ?(words = 2_000_000) ?(seed = 11) ?jobs () =
  let model = Generator.generate spec in
  let pairs = Workload.standard_programs model in
  (* Trace capture is the expensive step and every workload is independent
     (fresh trace buffer, fresh profile arrays, engine PRNG seeded per
     workload), so fan it out across domains.  Results land by index, so
     the context is bit-identical for every job count. *)
  let captures =
    Manifest.time "trace_capture" (fun () ->
        Trace_log.with_span "trace_capture"
          ~args:[ ("workloads", Json.Int (Array.length pairs)) ]
        @@ fun () ->
        Parallel.map_array ?jobs
          (fun i (w, program) ->
            Trace_log.with_span "capture_workload"
              ~args:
                [
                  ("workload", Json.String w.Workload.name);
                  ("words", Json.Int words);
                  ("domain", Json.Int (Domain.self () :> int));
                ]
            @@ fun () ->
            let trace = Trace.create ~capacity:(words / 4) () in
            let profiles, profile_sink = Profile.sinks ~program in
            let sink =
              Engine.combine_sinks [ Engine.trace_sink trace; profile_sink ]
            in
            let s = Engine.run ~program ~workload:w ~words ~seed:(seed + i) ~sink in
            (trace, s, profiles))
          pairs)
  in
  let traces = Array.map (fun (t, _, _) -> t) captures in
  let stats = Array.map (fun (_, s, _) -> s) captures in
  let os_profiles = Array.map (fun (_, _, p) -> p.(0)) captures in
  let app_profiles =
    Array.map (fun (_, _, p) -> Array.sub p 1 (Array.length p - 1)) captures
  in
  (* Merge per-app profiles across workloads sequentially, in workload
     order (the averaging below is order-sensitive only through float
     rounding, so the merge must not depend on domain scheduling). *)
  (* (app, profiles collected for it across workloads) *)
  let app_accum : (App_model.t * Profile.t list ref) list ref = ref [] in
  Array.iteri
    (fun i (_w, program) ->
      Array.iteri
        (fun k app ->
          match List.find_opt (fun (a, _) -> a == app) !app_accum with
          | Some (_, acc) -> acc := app_profiles.(i).(k) :: !acc
          | None -> app_accum := (app, ref [ app_profiles.(i).(k) ]) :: !app_accum)
        program.Program.apps)
    pairs;
  let avg_os_profile = Profile.average (Array.to_list os_profiles) in
  let averaged_apps =
    List.map (fun (app, acc) -> (app, Profile.average !acc)) !app_accum
  in
  let avg_app_profile app =
    match List.find_opt (fun (a, _) -> a == app) averaged_apps with
    | Some (_, p) -> p
    | None -> invalid_arg "Context.avg_app_profile: unknown application"
  in
  let key = Digest.to_hex (Digest.string (Marshal.to_string (spec, words, seed) [])) in
  Manifest.set_run ~spec_seed:spec.Spec.seed
    ~spec_digest:(Digest.to_hex (Digest.string (Marshal.to_string (spec : Spec.t) [])))
    ~words ~seed
    ~jobs:(match jobs with Some j -> j | None -> Parallel.default_jobs ())
    ~context_key:key;
  {
    model;
    pairs;
    traces;
    stats;
    os_profiles;
    app_profiles;
    avg_os_profile;
    avg_app_profile;
    spec;
    words;
    seed;
    key;
  }

let workload_count t = Array.length t.pairs

let workload_names t = Array.map (fun (w, _) -> w.Workload.name) t.pairs

let os_graph t = t.model.Model.graph

let os_loops t = Program_layout.os_loops t.model

let key t = t.key
