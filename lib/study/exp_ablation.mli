(** Ablation study (not a paper figure): remove one OptS ingredient at a
    time - the descending threshold schedule, the four seeds, the
    caller/callee interleaving, the SelfConfFree area - and measure the
    miss cost on the paper's 8 KB direct-mapped cache. *)

type variant = {
  name : string;
  what : string;
  misses : int;  (** Sum over the four workloads. *)
  vs_base : float;
  vs_opt_s : float;
}

val compute : Context.t -> int * variant list
(** (Base misses, variants; the first variant is the full OptS). *)

val report : Context.t -> Result.report
(** Typed report whose text rendering is the classic transcript. *)

val run : Context.t -> unit
