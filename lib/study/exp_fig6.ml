type result = {
  workload : string;
  executed_routines : int;
  top5_pct : float;
  top20_pct : float;
  series_head : float array;
}

let compute (ctx : Context.t) =
  let g = Context.os_graph ctx in
  Array.mapi
    (fun i (w, _) ->
      let p = ctx.Context.os_profiles.(i) in
      let series = Popularity.routine_series p g in
      let prefix n =
        Array.fold_left ( +. ) 0.0 (Array.sub series 0 (min n (Array.length series)))
      in
      {
        workload = w.Workload.name;
        executed_routines = Array.length series;
        top5_pct = prefix 5;
        top20_pct = prefix 20;
        series_head = Array.sub series 0 (min 20 (Array.length series));
      })
    ctx.Context.pairs

let report ctx =
  let results = compute ctx in
  let union =
    let g = Context.os_graph ctx in
    let p = Profile.average (Array.to_list ctx.Context.os_profiles) in
    Popularity.routine_series p g
  in
  let per_workload =
    Array.to_list results
    |> List.map (fun r ->
           Result.note "%-10s: %3d routines invoked; top-5 take %.1f%%, top-20 take %.1f%%"
             r.workload r.executed_routines r.top5_pct r.top20_pct)
  in
  Result.report ~id:"fig6" ~section:"Figure 6: routine invocation skew"
    (per_workload
    @ [
        Result.note "union of workloads: %d distinct routines executed" (Array.length union);
        Result.paper "about 600 routines executed; a few account for most invocations";
      ])

let run ctx = Result.print (report ctx)
