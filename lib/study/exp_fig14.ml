type result = {
  level : Levels.level;
  bins : int array;
  total : int;
  top5_pct : float;
  tallest_peak : int;
}

let compute (ctx : Context.t) =
  let config = Config.make ~size_kb:8 () in
  let g = Context.os_graph ctx in
  let base_map = Base.layout g ~order:ctx.Context.model.Model.base_order in
  let positions = Address_map.addr_array base_map in
  let sizes = Address_map.bytes_array base_map in
  let levels = [| Levels.Base; Levels.CH; Levels.OptS |] in
  let batch =
    Runner.simulate_batch ctx
      ~members:(Array.map (fun level -> (Levels.build ctx level, config)) levels)
      ~attribute_os:true ()
  in
  Array.mapi
    (fun k level ->
      let runs = batch.(k) in
      let misses = Array.make (Graph.block_count g) 0 in
      Array.iter
        (fun (r : Runner.run) ->
          Array.iteri (fun b m -> misses.(b) <- misses.(b) + m) r.Runner.os_block_misses)
        runs;
      let bins = Missmap.by_address ~positions ~sizes ~misses ~bin:1024 in
      {
        level;
        bins;
        total = Array.fold_left ( + ) 0 bins;
        top5_pct = 100.0 *. Missmap.peak_fraction bins ~n:5;
        tallest_peak = (match Missmap.peaks bins ~n:1 with (_, c) :: _ -> c | [] -> 0);
      })
    levels

let report ctx =
  let results = compute ctx in
  let per_level =
    Array.to_list results
    |> List.map (fun r ->
           Result.note
             "%-5s: total OS misses %8d; tallest 1KB peak %6d; top-5 peaks hold %.1f%%"
             (Levels.to_string r.level) r.total r.tallest_peak r.top5_pct)
  in
  Result.report ~id:"fig14"
    ~section:"Figure 14: OS miss distribution by code position (sum of workloads, 8KB DM)"
    (per_level
    @ [
        Result.paper
          "C-H shrinks the Base peaks; OptS flattens them further, leaving only small peaks";
      ])

let run ctx = Result.print (report ctx)
