(** Whole-program placements: one {!Address_map.t} for the OS image and one
    per application image, combinable into a {!Replay.code_map} for cache
    simulation.

    The evaluation's layout levels (Section 5):
    - [base]: original link order for OS and applications;
    - [chang_hwu]: C-H layout for the OS, applications unchanged;
    - [opt_s]: sequences + SelfConfFree area, no loop extraction;
    - [opt_l]: [opt_s] plus loop extraction;
    - [opt_a]: [opt_s] for the OS plus optimized application layouts
      (sequences + loop extraction, placed from the opposite cache side). *)

type t = {
  name : string;
  os_map : Address_map.t;
  app_maps : Address_map.t array;
  os_meta : Opt.result option;  (** Sequence/SCF/loop metadata when built
                                    by the Opt machinery. *)
}

val app_region_base : int
(** Byte address where application image 1 begins (a multiple of every
    simulated cache size, so cache indexing of applications is unaffected
    by the offset). *)

val app_region_stride : int

val base : model:Model.t -> program:Program.t -> t

val chang_hwu : model:Model.t -> program:Program.t -> os_profile:Profile.t -> t

val opt_s :
  model:Model.t -> program:Program.t -> os_profile:Profile.t ->
  ?params:Opt.params -> unit -> t

val opt_l :
  model:Model.t -> program:Program.t -> os_profile:Profile.t ->
  ?params:Opt.params -> unit -> t

val opt_a :
  model:Model.t -> program:Program.t -> os_profile:Profile.t ->
  app_profiles:Profile.t array -> ?params:Opt.params -> unit -> t
(** [app_profiles.(k)] profiles application image [k+1]. *)

val with_os_map : t -> name:string -> Address_map.t -> os_meta:Opt.result option -> t
(** Replace the OS placement (used by the Call/Resv variants). *)

val code_map : t -> Replay.code_map
(** Absolute addresses: OS at 0, application image [k] at
    [app_region_base + (k-1) * app_region_stride]. *)

val digest : t -> string
(** Content digest of the placement exactly as the simulator consumes it
    (the absolute {!code_map} addresses and block sizes, hex-encoded MD5).
    Two layouts with equal digests replay identically under every cache
    configuration, so the digest is a sound memoization key for simulation
    results regardless of how or when the layout was built. *)

val os_loops : Model.t -> Loops.t list
(** Natural loops of the kernel graph ({!Layout_cache.loops} on the
    model's graph: memoized per graph, safe under parallel builds). *)
