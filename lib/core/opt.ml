type params = {
  cache_size : int;
  scf_cutoff : float option;
  extract_loops : bool;
  min_loop_iterations : float;
  start_offset : int;
  scf_holes : bool;
}

let params ?(cache_size = 8192) ?(scf_cutoff = Some 0.5) ?(extract_loops = false)
    ?(scf_holes = true) () =
  {
    cache_size;
    scf_cutoff;
    extract_loops;
    min_loop_iterations = 6.0;
    start_offset = 0;
    scf_holes;
  }

type result = {
  map : Address_map.t;
  sequences : Sequence.t list;
  scf_blocks : Block.id list;
  scf_bytes : int;
  loop_blocks : Block.id list;
}

(* Cursor over memory organized as logical caches of size [cache] whose
   lowest [hole] bytes (beyond the first logical cache) are reserved.
   Records the holes it skips so they can be filled with cold code. *)
type cursor = {
  cache : int;
  hole : int;
  mutable at : int;
  mutable holes : (int * int) list;  (* (start, size), reverse order *)
  seen : (int, unit) Hashtbl.t;  (* hole starts already recorded *)
}

let cursor ~cache ~hole ~start =
  { cache; hole; at = start; holes = []; seen = Hashtbl.create 16 }

let rec fit c size =
  let off = c.at mod c.cache in
  if c.hole > 0 && c.at >= c.cache && off < c.hole then begin
    (* Entering a reserved hole: skip it, remembering the span. *)
    let start = c.at - off in
    if not (Hashtbl.mem c.seen start) then begin
      Hashtbl.add c.seen start ();
      c.holes <- (start, c.hole) :: c.holes
    end;
    c.at <- start + c.hole;
    fit c size
  end
  else if c.hole > 0 && off + size > c.cache then begin
    (* Block would run into the next logical cache's hole. *)
    c.at <- c.at - off + c.cache;
    fit c size
  end
  else begin
    let addr = c.at in
    c.at <- addr + size;
    addr
  end

(* ------------------------------------------------------------------ *)
(* Staged construction                                                *)
(* ------------------------------------------------------------------ *)

(* The layout decomposes into stages with strictly shrinking input sets
   (Layout_cache's doc lists them), each memoized on a digest of exactly
   what it consumes.  Registration order below is pipeline order, which
   is also the order the run manifest reports. *)

module Seq_cache = Layout_cache.Stage (struct
  type value = Sequence.t list

  let name = "sequences"
end)

module Scf_cache = Layout_cache.Stage (struct
  type value = Block.id list

  let name = "scf"
end)

module Loop_mark_cache = Layout_cache.Stage (struct
  type value = Loopstat.info list

  let name = "loop_mark"
end)

module Place_cache = Layout_cache.Stage (struct
  type value = result

  let name = "place"
end)

let digest_key v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* Assemble a layout from the (individually cached) stage outputs.  This
   is the original monolithic construction, with sequence construction,
   raw SCF selection and the Loopstat pass factored out so they can be
   shared across parameter sweeps. *)
let assemble ~graph:g ~profile:p ~sequences ~select_scf ~loop_infos ~exclude params =
  let scf_blocks, scf_bytes =
    match params.scf_cutoff with
    | None -> ([], 0)
    | Some cutoff ->
        let blocks = List.filter (fun b -> not (exclude b)) (select_scf cutoff) in
        (blocks, Scf.bytes g blocks)
  in
  let in_scf = Array.make (Graph.block_count g) false in
  List.iter (fun b -> in_scf.(b) <- true) scf_blocks;
  (* Loop extraction: mark qualifying loops' bodies. *)
  let in_loop_area = Array.make (Graph.block_count g) false in
  if params.extract_loops then begin
    let infos = loop_infos () in
    List.iter
      (fun (i : Loopstat.info) ->
        if i.Loopstat.iterations_per_invocation >= params.min_loop_iterations then
          Array.iter
            (fun b -> if not in_scf.(b) && not (exclude b) then in_loop_area.(b) <- true)
            i.Loopstat.loop.Loops.body)
      infos
  end;
  let map = Address_map.create g in
  (* 1. SelfConfFree area at the bottom of the first logical cache. *)
  let scf_cursor = ref params.start_offset in
  List.iter
    (fun b ->
      Address_map.place map b ~addr:!scf_cursor ~region:Address_map.Self_conf_free;
      scf_cursor := !scf_cursor + (Graph.block g b).Block.size)
    scf_blocks;
  (* 2. Sequences, skipping later logical caches' SelfConfFree holes. *)
  let hole = if params.scf_holes then scf_bytes else 0 in
  let cur =
    cursor ~cache:params.cache_size ~hole ~start:(params.start_offset + scf_bytes)
  in
  let loop_order = ref [] in
  List.iter
    (fun (s : Sequence.t) ->
      let region =
        if s.Sequence.pass.Schedule.exec_thresh >= Schedule.main_seq_exec_thresh then
          Address_map.Main_seq
        else Address_map.Other_seq
      in
      Array.iter
        (fun b ->
          if exclude b || in_scf.(b) then ()
          else if in_loop_area.(b) then loop_order := b :: !loop_order
          else begin
            let size = (Graph.block g b).Block.size in
            Address_map.place map b ~addr:(fit cur size) ~region
          end)
        s.Sequence.blocks)
    sequences;
  (* 3. Loop area at the end of the sequences, same internal order. *)
  let loop_blocks = List.rev !loop_order in
  List.iter
    (fun b ->
      let size = (Graph.block g b).Block.size in
      Address_map.place map b ~addr:(fit cur size) ~region:Address_map.Loop_area)
    loop_blocks;
  (* 4. Cold filler: coldest blocks first into the reserved holes, the
     rest after the end. *)
  let unplaced =
    List.filter
      (fun b -> (not (Address_map.is_placed map b)) && not (exclude b))
      (List.init (Graph.block_count g) Fun.id)
  in
  let coldest =
    List.sort
      (fun a b -> compare (p.Profile.block.(a), a) (p.Profile.block.(b), b))
      unplaced
  in
  let holes = ref (List.rev_map (fun (start, size) -> (start, size)) cur.holes) in
  let place_cold b =
    let size = (Graph.block g b).Block.size in
    let rec try_holes acc = function
      | [] ->
          holes := List.rev acc;
          Address_map.place map b ~addr:(fit cur size) ~region:Address_map.Cold
      | (start, avail) :: rest when avail >= size ->
          Address_map.place map b ~addr:start ~region:Address_map.Cold;
          let remaining = (start + size, avail - size) in
          holes := List.rev_append acc (remaining :: rest)
      | hole :: rest -> try_holes (hole :: acc) rest
    in
    try_holes [] !holes
  in
  List.iter place_cold coldest;
  { map; sequences; scf_blocks; scf_bytes; loop_blocks }

let layout ~graph:g ~profile:p ~loops ~seed_entry ~schedule ?exclude
    ?(follow_calls = true) params =
  let gd = Layout_cache.graph_digest g in
  let pd = Layout_cache.profile_digest p in
  let ld = Layout_cache.loops_digest g loops in
  (* Sequence construction consumes [seed_entry] only through the seed
     block of each pass, so materializing those blocks turns the function
     into digestible data. *)
  let seeds =
    List.map (fun (pass : Schedule.pass) -> seed_entry pass.Schedule.service) schedule
  in
  let seq_key =
    digest_key (gd, pd, (schedule : Schedule.pass list), follow_calls, (seeds : Block.id list))
  in
  let sequences =
    Seq_cache.find_or_build ~key:seq_key (fun () ->
        Sequence.build ~graph:g ~profile:p ~seed_entry ~schedule ~follow_calls ())
  in
  (* SCF selection and the Loopstat pass are cached on their raw
     (exclusion-free) outputs; [assemble] applies the exclusion filter and
     iteration threshold afterwards, so a Call-optimization build with a
     custom [exclude] still shares them. *)
  let select_scf cutoff =
    Scf_cache.find_or_build ~key:(digest_key (gd, pd, ld, cutoff)) (fun () ->
        Scf.select ~graph:g ~profile:p ~loops ~cutoff)
  in
  let loop_infos () =
    Loop_mark_cache.find_or_build ~key:(digest_key (gd, pd, ld)) (fun () ->
        Loopstat.analyze g p loops)
  in
  match exclude with
  | Some exclude ->
      (* The exclusion predicate is opaque, so the assembled result is not
         content-addressable; only the sub-stages are shared. *)
      assemble ~graph:g ~profile:p ~sequences ~select_scf ~loop_infos ~exclude params
  | None ->
      (* [seq_key] covers graph and profile, [ld] the loop set, and the
         parameter record everything geometry-dependent, so together they
         determine the whole placement. *)
      let place_key = digest_key (seq_key, ld, (params : params)) in
      Place_cache.find_or_build ~key:place_key (fun () ->
          let r =
            assemble ~graph:g ~profile:p ~sequences ~select_scf ~loop_infos
              ~exclude:(fun _ -> false)
              params
          in
          (* Validate once per actual construction: a placement served
             from the place cache was validated when it was built.  The
             exclude path above is left unvalidated on purpose — its maps
             are incomplete by design until the caller (Call_opt) places
             the blocks it claimed. *)
          Address_map.validate r.map;
          r)

let os_layout ?(schedule = Schedule.paper) ?(follow_calls = true) ~model ~profile ~loops
    params =
  let seed_entry c = (Model.seed_for model c).Model.entry in
  layout ~graph:model.Model.graph ~profile ~loops ~seed_entry ~schedule ~follow_calls
    params

let app_schedule =
  Schedule.uniform ~levels:[ (1e-3, 0.4); (1e-4, 0.1); (1e-7, 0.01); (0.0, 0.0) ]

let app_layout ~app ~profile ?stagger:(k = 0) ?(addr_skew = 0) params =
  let g = app.App_model.graph in
  let loops = Layout_cache.loops g in
  let entry = Graph.entry_of g app.App_model.main in
  (* Distinct images are staggered within the cache so two compact
     optimized applications time-sharing the processor do not overlap
     set-for-set.  [addr_skew] is the image's load-address offset modulo
     the cache: the start offset compensates for it so the sequences'
     {e effective} cache position is the intended opposite-side slot. *)
  let c = params.cache_size in
  let target = (c / 2) + (k * c / 4 mod (c / 2)) in
  let start = ((target - addr_skew) mod c + c) mod c in
  let params =
    { params with scf_cutoff = None; extract_loops = true; start_offset = start }
  in
  layout ~graph:g ~profile ~loops ~seed_entry:(fun _ -> entry) ~schedule:app_schedule
    params
