(** Assembly of the paper's optimized layouts (Figure 10):

    - the SelfConfFree area occupies the lowest [scf] bytes of the first
      logical cache, holding the hottest loop-adjusted blocks;
    - sequences fill the remaining space, never overlapping the
      SelfConfFree offsets of any logical cache (those holes are later
      filled with seldom-executed code);
    - with [extract_loops] (OptL), loop bodies with enough iterations are
      pulled out of the sequences into a contiguous loop area at their
      end;
    - everything left over (unexecuted special-case code) fills the holes
      and the tail of memory.

    The same machinery lays out applications (OptA): no SelfConfFree area,
    the routine [main] as the only seed, and a non-zero [start_offset] so
    application sequences begin on the opposite side of the cache from the
    OS's hot code.

    Construction is {e staged} through {!Layout_cache}: sequence
    construction, SelfConfFree selection, the loop-statistics pass and
    the final placement each memoize on a digest of exactly the inputs
    they consume.  A geometry sweep (varying [cache_size] or
    [scf_cutoff]) therefore rebuilds only the stages whose inputs
    changed; two calls with equal inputs share one physically-identical
    (immutable) result.  {!Address_map.validate} runs once per actual
    construction, inside the placement stage's build — a cache hit
    returns a map that was validated when it was first built. *)

type params = {
  cache_size : int;  (** Logical-cache granularity. *)
  scf_cutoff : float option;
      (** Loop-adjusted execution-fraction cut-off for the SelfConfFree
          area; [None] disables the area. *)
  extract_loops : bool;  (** OptL. *)
  min_loop_iterations : float;  (** Loops below this stay in sequences. *)
  start_offset : int;  (** First byte used for sequences (app side). *)
  scf_holes : bool;
      (** Reserve the SelfConfFree offsets of every logical cache (the
          normal OptS layout).  The Resv organization disables the holes:
          the hottest blocks still lead the layout (they live in the small
          reserved cache) but memory is packed densely. *)
}

val params :
  ?cache_size:int -> ?scf_cutoff:float option -> ?extract_loops:bool ->
  ?scf_holes:bool -> unit -> params
(** Paper defaults: 8 KB logical caches, a cut-off giving the paper's
    ~1 KB SelfConfFree area (0.5 loop-adjusted executions per
    invocation), no loop extraction, 6-iteration minimum, offset 0. *)

type result = {
  map : Address_map.t;
  sequences : Sequence.t list;
  scf_blocks : Block.id list;
  scf_bytes : int;
  loop_blocks : Block.id list;
}

val layout :
  graph:Graph.t -> profile:Profile.t -> loops:Loops.t list ->
  seed_entry:(Service.t -> Block.id) -> schedule:Schedule.pass list ->
  ?exclude:(Block.id -> bool) -> ?follow_calls:bool ->
  params -> result
(** [exclude] removes blocks from sequence placement entirely (used by the
    Section 4.4 "Call" optimization, which places them itself; excluded
    blocks must be placed into the returned map by the caller before
    validation).  An [exclude] predicate is opaque to the content
    addressing, so such a call bypasses the placement cache (the caller
    may then mutate the returned map safely) while still sharing the
    sequence/SCF/loop sub-stages. *)

val os_layout :
  ?schedule:Schedule.pass list -> ?follow_calls:bool ->
  model:Model.t -> profile:Profile.t -> loops:Loops.t list -> params -> result
(** OptS/OptL for the kernel: seeds from the model, Table 4 schedule by
    default.  [schedule] and [follow_calls] exist for the ablation studies
    (flat schedules, fewer seeds, no caller/callee interleaving). *)

val app_layout :
  app:App_model.t -> profile:Profile.t -> ?stagger:int -> ?addr_skew:int ->
  params -> result
(** Application-side layout for OptA ([main] as seed, loop extraction on,
    sequences starting at [cache_size / 2], shifted by [stagger] quarter
    caches so co-scheduled images do not collide set-for-set).
    [addr_skew] is the image's load-address offset modulo the cache size;
    the start offset compensates so the effective cache position is the
    intended one. *)
