type stats = { hits : int; misses : int; seconds : float }

type counters = {
  name : string;
  mutable hits : int;
  mutable misses : int;
  mutable seconds : float;
}

(* One lock for every table in the module: stage lookups are O(1) hash
   probes and digest memos are short physical-identity scans, so a single
   lock is never contended for long and keeps the invariants (registry
   order, counter consistency) trivial. Builds run OUTSIDE the lock. *)
let lock = Mutex.create ()
let enabled_flag = ref true
let registry : counters list ref = ref [] (* reverse registration order *)
let clearers : (unit -> unit) list ref = ref []

(* Aggregate lookup counters mirrored into the metrics registry (summed
   over every stage), so the manifest metrics snapshot and `icache-opt
   validate` can check hits + misses = lookups without this module. *)
let m_hits = Metrics_registry.counter "layout_cache.hits"
let m_misses = Metrics_registry.counter "layout_cache.misses"
let m_lookups = Metrics_registry.counter "layout_cache.lookups"

let set_enabled b = enabled_flag := b

let enabled () = !enabled_flag

(* ------------------------------------------------------------------ *)
(* Digests and loop detection                                         *)
(* ------------------------------------------------------------------ *)

let md5 v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* Physical-identity memo: the process only ever sees a handful of frozen
   graphs (the kernel plus a few application images), so a linear scan
   beats hashing structures that cannot be hashed physically. *)
let graph_digests : (Graph.t * string) list ref = ref []

let graph_digest g =
  match
    Mutex.protect lock (fun () ->
        List.find_opt (fun (g', _) -> g' == g) !graph_digests)
  with
  | Some (_, d) -> d
  | None ->
      let d = md5 g in
      Mutex.protect lock (fun () ->
          match List.find_opt (fun (g', _) -> g' == g) !graph_digests with
          | Some (_, d') -> d'
          | None ->
              graph_digests := (g, d) :: !graph_digests;
              d)

(* Profiles are mutable (Profile.accumulate, scale_to's sharing of
   freshly-built arrays), so a physical memo could serve a stale digest;
   recompute every time.  The arrays are small next to a single
   Sequence.build, and staleness here would silently alias layouts. *)
let profile_digest (p : Profile.t) =
  md5 (p.Profile.block, p.Profile.arc, p.Profile.total_blocks, p.Profile.invocations)

let loops_tbl : (Graph.t * (Loops.t list * string)) list ref = ref []

let find_loops g = List.find_opt (fun (g', _) -> g' == g) !loops_tbl

let loops g =
  match Mutex.protect lock (fun () -> find_loops g) with
  | Some (_, (l, _)) -> l
  | None ->
      let l = Loops.find g in
      let d = md5 l in
      Mutex.protect lock (fun () ->
          match find_loops g with
          | Some (_, (l', _)) -> l' (* racing detection: share the stored list *)
          | None ->
              loops_tbl := (g, (l, d)) :: !loops_tbl;
              l)

let loops_digest g l =
  match Mutex.protect lock (fun () -> find_loops g) with
  | Some (_, (l', d)) when l' == l -> d
  | Some _ | None -> md5 l

(* ------------------------------------------------------------------ *)
(* Stage tables                                                       *)
(* ------------------------------------------------------------------ *)

module type STAGE = sig
  type value

  val name : string
end

module Stage (S : STAGE) = struct
  let table : (string, S.value) Hashtbl.t = Hashtbl.create 64

  let c =
    Mutex.protect lock (fun () ->
        let c = { name = S.name; hits = 0; misses = 0; seconds = 0.0 } in
        registry := c :: !registry;
        clearers := (fun () -> Hashtbl.reset table) :: !clearers;
        c)

  let find_or_build ~key f =
    if not !enabled_flag then f ()
    else begin
      Metrics_registry.incr m_lookups;
      match
        Mutex.protect lock (fun () ->
            match Hashtbl.find_opt table key with
            | Some v ->
                c.hits <- c.hits + 1;
                Some v
            | None -> None)
      with
      | Some v ->
          Metrics_registry.incr m_hits;
          v
      | None ->
          Metrics_registry.incr m_misses;
          let t0 = Unix.gettimeofday () in
          let v = f () in
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.protect lock (fun () ->
              c.misses <- c.misses + 1;
              c.seconds <- c.seconds +. dt;
              match Hashtbl.find_opt table key with
              | Some v' -> v' (* racing build: everyone shares the stored value *)
              | None ->
                  Hashtbl.add table key v;
                  v)
    end
end

(* ------------------------------------------------------------------ *)
(* Statistics                                                         *)
(* ------------------------------------------------------------------ *)

let stage_stats () =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun c -> (c.name, { hits = c.hits; misses = c.misses; seconds = c.seconds }))
        !registry)

let totals () =
  Mutex.protect lock (fun () ->
      List.fold_left
        (fun (acc : stats) c ->
          {
            hits = acc.hits + c.hits;
            misses = acc.misses + c.misses;
            seconds = acc.seconds +. c.seconds;
          })
        { hits = 0; misses = 0; seconds = 0.0 }
        !registry)

let reset_stats () =
  Mutex.protect lock (fun () ->
      List.iter
        (fun c ->
          c.hits <- 0;
          c.misses <- 0;
          c.seconds <- 0.0)
        !registry)

let clear () =
  Mutex.protect lock (fun () ->
      List.iter (fun f -> f ()) !clearers;
      graph_digests := [];
      loops_tbl := [];
      List.iter
        (fun c ->
          c.hits <- 0;
          c.misses <- 0;
          c.seconds <- 0.0)
        !registry)
