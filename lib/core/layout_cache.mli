(** Content-addressed caches for the staged layout pipeline.

    {!Opt.layout} decomposes into stages with strictly smaller input sets
    than the whole layout:

    - {e sequences} depend only on (graph, profile, schedule, seeds,
      follow_calls) — not on cache geometry, so an entire cache-size or
      SelfConfFree sweep shares one sequence construction;
    - {e scf} selection depends only on (graph, profile, loops, cutoff);
    - {e loop_mark} (the {!Loopstat.analyze} pass behind OptL's loop
      extraction) depends only on (graph, profile, loops);
    - {e place} — the final cursor placement — is the only stage that
      consumes the full parameter record.

    {!Program_layout} registers two more stages on the same registry:
    {e base} (the Base OS placement, keyed on graph and block order) and
    {e chang_hwu} (the C-H placement, keyed on graph and profile) — both
    used to be rebuilt per workload despite identical inputs.

    Each stage memoizes in a process-global, mutex-guarded table keyed on
    a digest of exactly the inputs that stage consumes, with hit/miss
    counters and build-time accounting surfaced in the run manifest
    (schema v3).  Like {!Sim_cache}, racing builders may construct the
    same value twice; the first store wins and both callers observe the
    stored value, so results are independent of domain scheduling.

    The module also owns natural-loop detection for {e both} OS and
    application graphs ({!loops}), replacing the unsynchronized global
    that {!Program_layout} used to mutate from parallel builds. *)

val graph_digest : Graph.t -> string
(** Content digest of a frozen flow graph, memoized on physical identity
    (graphs are immutable after {!Graph.freeze}). *)

val profile_digest : Profile.t -> string
(** Content digest of a profile.  Recomputed on every call — profiles are
    mutable ({!Profile.accumulate}), so physical memoization would be
    unsound. *)

val loops : Graph.t -> Loops.t list
(** [Loops.find g], memoized per graph (physical identity) behind a lock:
    repeated calls return the {e same} list, including across domains. *)

val loops_digest : Graph.t -> Loops.t list -> string
(** Content digest of a loop set.  When [loops] is the canonical
    {!loops}[ g] list the digest is memoized; hand-built loop sets are
    digested on every call. *)

type stats = { hits : int; misses : int; seconds : float }
(** [seconds] is time spent building values on misses (cache management
    overhead is not counted).  On a cold build, an outer stage's seconds
    include the inner stages it triggered (stage timings nest, exactly
    like the manifest's [levels_build] envelope). *)

module type STAGE = sig
  type value

  val name : string
end

module Stage (S : STAGE) : sig
  val find_or_build : key:string -> (unit -> S.value) -> S.value
end
(** A named memo table registered with the module-wide statistics
    registry.  Instantiate once per stage (at module initialization, not
    per call). *)

val set_enabled : bool -> unit
(** Test hook: [set_enabled false] turns every stage into a pass-through
    (no lookups, no stores, no counter updates), so a "monolithic"
    reference build can be produced for comparison.  Default: enabled. *)

val enabled : unit -> bool

val stage_stats : unit -> (string * stats) list
(** Per-stage counters in stage registration order. *)

val totals : unit -> stats

val reset_stats : unit -> unit
(** Zero the counters, keep the cached values. *)

val clear : unit -> unit
(** Drop every cached value (including memoized loops and digests) and
    zero the counters. *)
