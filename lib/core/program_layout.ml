type t = {
  name : string;
  os_map : Address_map.t;
  app_maps : Address_map.t array;
  os_meta : Opt.result option;
}

let app_region_base = 1 lsl 24

let app_region_stride = 1 lsl 23

(* Per-image load-address skew: application text segments start past
   headers at distinct bases, so an application is not systematically
   aligned with cache set 0 (where the OS hot area lives).  Line-aligned
   but not a divisor of any simulated cache size. *)
let app_skew k = (k + 1) * 1184

(* Loop detection over the 40k-block kernel graph is not free; delegate to
   the lock-guarded per-graph memo (the old single-slot ref here was a
   data race under parallel level builds). *)
let os_loops model = Layout_cache.loops model.Model.graph

(* Base application placements depend only on the app image, which is
   physically shared across workloads and identical for every layout
   level, so one map per image serves all five levels of every workload.
   The maps are immutable once built; a racing duplicate build is
   harmless (first store wins, content is equal either way). *)
let base_app_lock = Mutex.create ()
let base_app_maps : (App_model.t * Address_map.t) list ref = ref []

let base_app (app : App_model.t) =
  let find () = List.find_opt (fun (a, _) -> a == app) !base_app_maps in
  match Mutex.protect base_app_lock find with
  | Some (_, m) -> m
  | None ->
      let m = Base.layout app.App_model.graph ~order:app.App_model.base_order in
      Mutex.protect base_app_lock (fun () ->
          match find () with
          | Some (_, m') -> m'
          | None ->
              base_app_maps := (app, m) :: !base_app_maps;
              m)

let base_apps program = Array.map base_app program.Program.apps

(* The Base OS placement depends only on (graph, base order), both frozen
   with the model, yet used to be rebuilt for every workload of every
   Base-level build — on the 40k-block kernel graph that was the single
   largest redundant cost left in levels_build. *)
module Base_cache = Layout_cache.Stage (struct
  type value = Address_map.t

  let name = "base"
end)

let base_os model =
  let g = model.Model.graph in
  let key =
    Digest.to_hex
      (Digest.string
         (Layout_cache.graph_digest g ^ "|"
         ^ Digest.to_hex
             (Digest.string (Marshal.to_string model.Model.base_order []))))
  in
  Base_cache.find_or_build ~key (fun () ->
      Base.layout g ~order:model.Model.base_order)

let base ~model ~program =
  {
    name = "Base";
    os_map = base_os model;
    app_maps = base_apps program;
    os_meta = None;
  }

(* The C-H OS placement depends only on (graph, profile) and is shared by
   every workload of a level build, so it rides the same content-addressed
   cache layer as the staged Opt pipeline. *)
module Ch_cache = Layout_cache.Stage (struct
  type value = Address_map.t

  let name = "chang_hwu"
end)

let chang_hwu ~model ~program ~os_profile =
  let g = model.Model.graph in
  let key =
    Digest.to_hex
      (Digest.string
         (Layout_cache.graph_digest g ^ "|" ^ Layout_cache.profile_digest os_profile))
  in
  {
    name = "C-H";
    os_map = Ch_cache.find_or_build ~key (fun () -> Chang_hwu.layout g os_profile);
    app_maps = base_apps program;
    os_meta = None;
  }

let opt_with ~name ~extract_loops ~model ~program ~os_profile ~params =
  let params = { params with Opt.extract_loops } in
  let r = Opt.os_layout ~model ~profile:os_profile ~loops:(os_loops model) params in
  { name; os_map = r.Opt.map; app_maps = base_apps program; os_meta = Some r }

let opt_s ~model ~program ~os_profile ?(params = Opt.params ()) () =
  opt_with ~name:"OptS" ~extract_loops:false ~model ~program ~os_profile ~params

let opt_l ~model ~program ~os_profile ?(params = Opt.params ()) () =
  opt_with ~name:"OptL" ~extract_loops:true ~model ~program ~os_profile ~params

let opt_a ~model ~program ~os_profile ~app_profiles ?(params = Opt.params ()) () =
  let os = opt_with ~name:"OptA" ~extract_loops:false ~model ~program ~os_profile ~params in
  let app_maps =
    Array.mapi
      (fun k (app : App_model.t) ->
        let r =
          Opt.app_layout ~app ~profile:app_profiles.(k) ~stagger:k
            ~addr_skew:(app_skew k mod params.Opt.cache_size)
            params
        in
        r.Opt.map)
      program.Program.apps
  in
  { os with app_maps }

let with_os_map t ~name os_map ~os_meta = { t with name; os_map; os_meta }

let code_map t =
  let images = 1 + Array.length t.app_maps in
  let addr = Array.make images [||] in
  let bytes = Array.make images [||] in
  addr.(0) <- Address_map.addr_array t.os_map;
  bytes.(0) <- Address_map.bytes_array t.os_map;
  Array.iteri
    (fun k m ->
      let b = app_region_base + (k * app_region_stride) + app_skew k in
      addr.(k + 1) <- Array.map (fun a -> a + b) (Address_map.addr_array m);
      bytes.(k + 1) <- Address_map.bytes_array m)
    t.app_maps;
  { Replay.addr; bytes }

let digest t =
  let m = code_map t in
  Digest.to_hex (Digest.string (Marshal.to_string (m.Replay.addr, m.Replay.bytes) []))
