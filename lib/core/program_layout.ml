type t = {
  name : string;
  os_map : Address_map.t;
  app_maps : Address_map.t array;
  os_meta : Opt.result option;
}

let app_region_base = 1 lsl 24

let app_region_stride = 1 lsl 23

(* Per-image load-address skew: application text segments start past
   headers at distinct bases, so an application is not systematically
   aligned with cache set 0 (where the OS hot area lives).  Line-aligned
   but not a divisor of any simulated cache size. *)
let app_skew k = (k + 1) * 1184

(* Loop detection over the 40k-block kernel graph is not free; memoize per
   model (keyed physically). *)
let loops_cache : (Model.t * Loops.t list) option ref = ref None

let os_loops model =
  match !loops_cache with
  | Some (m, l) when m == model -> l
  | Some _ | None ->
      let l = Loops.find model.Model.graph in
      loops_cache := Some (model, l);
      l

let base_apps program =
  Array.map
    (fun (app : App_model.t) ->
      Base.layout app.App_model.graph ~order:app.App_model.base_order)
    program.Program.apps

let base ~model ~program =
  {
    name = "Base";
    os_map = Base.layout model.Model.graph ~order:model.Model.base_order;
    app_maps = base_apps program;
    os_meta = None;
  }

let chang_hwu ~model ~program ~os_profile =
  {
    name = "C-H";
    os_map = Chang_hwu.layout model.Model.graph os_profile;
    app_maps = base_apps program;
    os_meta = None;
  }

let opt_with ~name ~extract_loops ~model ~program ~os_profile ~params =
  let params = { params with Opt.extract_loops } in
  let r = Opt.os_layout ~model ~profile:os_profile ~loops:(os_loops model) params in
  { name; os_map = r.Opt.map; app_maps = base_apps program; os_meta = Some r }

let opt_s ~model ~program ~os_profile ?(params = Opt.params ()) () =
  opt_with ~name:"OptS" ~extract_loops:false ~model ~program ~os_profile ~params

let opt_l ~model ~program ~os_profile ?(params = Opt.params ()) () =
  opt_with ~name:"OptL" ~extract_loops:true ~model ~program ~os_profile ~params

let opt_a ~model ~program ~os_profile ~app_profiles ?(params = Opt.params ()) () =
  let os = opt_with ~name:"OptA" ~extract_loops:false ~model ~program ~os_profile ~params in
  let app_maps =
    Array.mapi
      (fun k (app : App_model.t) ->
        let r =
          Opt.app_layout ~app ~profile:app_profiles.(k) ~stagger:k
            ~addr_skew:(app_skew k mod params.Opt.cache_size)
            params
        in
        r.Opt.map)
      program.Program.apps
  in
  { os with app_maps }

let with_os_map t ~name os_map ~os_meta = { t with name; os_map; os_meta }

let code_map t =
  let images = 1 + Array.length t.app_maps in
  let addr = Array.make images [||] in
  let bytes = Array.make images [||] in
  addr.(0) <- Address_map.addr_array t.os_map;
  bytes.(0) <- Address_map.bytes_array t.os_map;
  Array.iteri
    (fun k m ->
      let b = app_region_base + (k * app_region_stride) + app_skew k in
      addr.(k + 1) <- Array.map (fun a -> a + b) (Address_map.addr_array m);
      bytes.(k + 1) <- Address_map.bytes_array m)
    t.app_maps;
  { Replay.addr; bytes }

let digest t =
  let m = code_map t in
  Digest.to_hex (Digest.string (Marshal.to_string (m.Replay.addr, m.Replay.bytes) []))
