type t = { pass : Schedule.pass; blocks : Block.id array; bytes : int }

(* Bounded pass-through: while hunting for the next acceptable unvisited
   block we may traverse already-visited blocks, but only this many steps
   without emitting before giving up on the current direction. *)
let max_pass_through = 128

let build ~graph:g ~profile:p ~seed_entry ~schedule ?(follow_calls = true) () =
  let visited = Array.make (Graph.block_count g) false in
  (* Unplaced executed blocks per routine: descending into a callee is
     only useful while it still has something to place.  Without this, a
     pass can burn its whole pass-through slack wandering a fully placed
     callee and lose the caller's continuation. *)
  let unplaced = Array.make (Graph.routine_count g) 0 in
  Graph.iter_blocks g (fun b ->
      if Profile.executed p b.Block.id then
        unplaced.(b.Block.routine) <- unplaced.(b.Block.routine) + 1);
  let build_pass ~final (pass : Schedule.pass) =
    let emitted = ref [] in
    let bytes = ref 0 in
    let acceptable b =
      Profile.block_fraction p b >= pass.Schedule.exec_thresh && Profile.executed p b
    in
    let arc_ok a =
      Profile.arc_probability p g a >= pass.Schedule.branch_thresh
      && p.Profile.arc.(a) > 0.0
    in
    (* Side branches discovered but not taken, best-weight first would be
       ideal; a stack approximates the paper's restart-from-seed scan. *)
    let frontier = ref [] in
    let emit b =
      visited.(b) <- true;
      let r = (Graph.block g b).Block.routine in
      unplaced.(r) <- unplaced.(r) - 1;
      emitted := b :: !emitted;
      bytes := !bytes + (Graph.block g b).Block.size
    in
    (* One walk direction: returns when stuck.  [stack] holds caller blocks
       whose continuation we owe; [slack] bounds pass-through of visited
       blocks. *)
    (* When a direction dies with callers still on the stack, their
       pending continuations would be unreachable (the paper instead
       rescans from the seed): salvage them into the frontier. *)
    let rec salvage stack =
      match stack with
      | [] -> ()
      | c :: rest ->
          Array.iter
            (fun a ->
              if arc_ok a then begin
                let dst = (Graph.arc g a).Arc.dst in
                if acceptable dst && not visited.(dst) then
                  frontier := dst :: !frontier
              end)
            (Graph.out_arcs g c);
          salvage rest
    in
    let rec walk b stack slack =
      let slack =
        if visited.(b) then slack - 1
        else begin
          emit b;
          max_pass_through
        end
      in
      if slack > 0 then step b stack slack else salvage stack
    and step b stack slack =
      (* Descend into an acceptable callee first.  The descent happens
         even when the callee's entry was already placed: an earlier pass
         may have died inside the callee, and its unvisited interior is
         only reachable through the entry.  The pass-through slack bounds
         the wandering over already-placed blocks. *)
      let blk = Graph.block g b in
      match blk.Block.call with
      | Some callee
        when follow_calls
             && unplaced.(callee) > 0
             && acceptable (Graph.entry_of g callee) ->
          walk (Graph.entry_of g callee) (b :: stack) slack
      | Some _ | None -> continue b stack slack
    and continue b stack slack =
      (* Follow the best acceptable arc; stash the others. *)
      let arcs = Graph.out_arcs g b in
      let best = ref None in
      Array.iter
        (fun a ->
          if arc_ok a then begin
            let dst = (Graph.arc g a).Arc.dst in
            if acceptable dst then begin
              let w = p.Profile.arc.(a) in
              match !best with
              | Some (_, w') when w' >= w ->
                  if not visited.(dst) then frontier := dst :: !frontier
              | Some (prev, _) ->
                  if not visited.(prev) then frontier := prev :: !frontier;
                  best := Some (dst, w)
              | None -> best := Some (dst, w)
            end
          end)
        arcs;
      match !best with
      | Some (dst, _) -> walk dst stack slack
      | None -> (
          (* Routine exit (or dead end): resume the caller's continuation. *)
          match stack with
          | caller :: rest when Array.length arcs = 0 -> continue caller rest slack
          | stack -> salvage stack)
    in
    let seed = seed_entry pass.Schedule.service in
    walk seed [] max_pass_through;
    (* Drain side branches discovered during this pass. *)
    let rec drain () =
      match !frontier with
      | [] -> ()
      | b :: rest ->
          frontier := rest;
          if not visited.(b) && acceptable b then walk b [] max_pass_through;
          drain ()
    in
    drain ();
    (* The paper repeats "until all operating system code is selected":
       the final pass of the schedule sweeps every block its thresholds
       accept that the greedy walks missed, hottest first, so no
       acceptable code is ever left to the cold filler. *)
    if final then begin
      let remaining =
        List.filter
          (fun b -> (not visited.(b)) && acceptable b)
          (List.init (Graph.block_count g) Fun.id)
        |> List.sort (fun a b -> compare p.Profile.block.(b) p.Profile.block.(a))
      in
      List.iter
        (fun b ->
          if (not visited.(b)) && acceptable b then walk b [] max_pass_through)
        remaining;
      drain ()
    end;
    let blocks = Array.of_list (List.rev !emitted) in
    { pass; blocks; bytes = !bytes }
  in
  let n = List.length schedule in
  List.mapi (fun i pass -> build_pass ~final:(i = n - 1) pass) schedule
  |> List.filter (fun s -> Array.length s.blocks > 0)

let covered g seqs =
  let marks = Array.make (Graph.block_count g) false in
  List.iter (fun s -> Array.iter (fun b -> marks.(b) <- true) s.blocks) seqs;
  marks

let total_bytes seqs = List.fold_left (fun acc s -> acc + s.bytes) 0 seqs
