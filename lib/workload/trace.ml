type t = { mutable data : int array; mutable len : int; mutable execs : int }

type event =
  | Exec of { image : int; block : Block.id }
  | Invocation_start of Service.t
  | Invocation_end

(* Low 3 bits: image index 0..5 for executions; 6 = invocation end,
   7 = invocation start (block field holds the service class). *)
let tag_end = 6
let tag_start = 7

let encode = function
  | Exec { image; block } -> (block lsl 3) lor image
  | Invocation_start c -> (Service.index c lsl 3) lor tag_start
  | Invocation_end -> tag_end

let decode v =
  let tag = v land 7 in
  let payload = v lsr 3 in
  if tag = tag_start then Invocation_start (Service.of_index payload)
  else if tag = tag_end then Invocation_end
  else Exec { image = tag; block = payload }

let create ?(capacity = 4096) () =
  { data = Array.make (max 16 capacity) 0; len = 0; execs = 0 }

(* Both append paths funnel through here: grow-by-doubling, store the
   packed event, and keep the exec-event count current. *)
let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  if v land 7 < tag_end then t.execs <- t.execs + 1

let append t ev = push t (encode ev)

let length t = t.len

let exec_count t = t.execs

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  decode t.data.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f (decode t.data.(i))
  done

let iter_exec t f =
  let data = t.data in
  for i = 0 to t.len - 1 do
    let v = Array.unsafe_get data i in
    let tag = v land 7 in
    if tag < 6 then f ~image:tag ~block:(v lsr 3)
  done

let raw t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.raw: out of bounds";
  t.data.(i)

let append_raw t v =
  ignore (decode v);
  push t v

let events_to_list t =
  List.init t.len (fun i -> decode t.data.(i))
