(** Compact block-level instruction traces.

    An event is either the execution of a basic block of some image, or an
    OS-invocation boundary marker (used by the temporal-locality analyses,
    which reset across invocations, per Figure 7).  Events pack into single
    OCaml ints, so a captured trace is one growable int array that can be
    replayed against many layouts and cache configurations. *)

type t

type event =
  | Exec of { image : int; block : Block.id }
  | Invocation_start of Service.t
  | Invocation_end

val create : ?capacity:int -> unit -> t

val append : t -> event -> unit

val length : t -> int
(** Total event count, including invocation markers. *)

val exec_count : t -> int
(** Number of [Exec] events only.  Warm-up thresholds for
    {!Replay.run_range} must come from this, not {!length}: the replay
    counter advances only on executions, so a threshold computed from the
    marker-inclusive length would drift with marker density. *)

val get : t -> int -> event

val iter : t -> (event -> unit) -> unit

val iter_exec : t -> (image:int -> block:Block.id -> unit) -> unit
(** Replay only block executions (the common fast path for cache
    simulation). *)

val raw : t -> int -> int
(** The packed integer encoding of event [i] (for serialization). *)

val append_raw : t -> int -> unit
(** Append a packed event.  @raise Invalid_argument if the encoding is
    not decodable. *)

val events_to_list : t -> event list
(** Testing aid; do not use on large traces. *)
