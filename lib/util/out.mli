(** Shared file-or-stdout output helper for the CLI tools. *)

val with_file : string -> (out_channel -> 'a) -> 'a
(** [with_file path f] runs [f] on an output channel for [path].  The
    conventional path ["-"] selects [stdout], which is flushed but left
    open.  Any other path is opened fresh and always closed, including
    when [f] raises — no channel leaks on write failure, and close/flush
    errors surface as exceptions. *)
