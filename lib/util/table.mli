(** ASCII table rendering for the benchmark harness output. *)

type align = Left | Right

type row = Cells of string list | Separator

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from the
    header. *)

val add_separator : t -> unit
(** Append a horizontal rule between rows. *)

val title : t -> string option

val columns : t -> (string * align) list
(** The header cells with their alignments, in column order. *)

val row_list : t -> row list
(** The accumulated rows in insertion order (snapshot for the structured
    report algebra). *)

val render : t -> string
(** The table as a string (trailing newline included). *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell (default 2 decimals). *)

val cell_pct : ?decimals:int -> float -> string
(** Format a percentage cell with a trailing [%]. *)

val cell_i : int -> string
(** Format an int cell with thousands separators. *)
