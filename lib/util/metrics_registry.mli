(** Process-global registry of named metrics: counters, gauges and
    histograms, domain-safe, exported as one JSON snapshot.

    Metrics complement {!Trace_log} spans: spans answer {e when} something
    ran, metrics answer {e how often} and {e how it was distributed}
    (cache hit counters, per-member simulate seconds, per-domain busy
    time).  Unlike tracing, metrics are always on — every recording site
    is far off the simulator's inner loops, so the cost is a handful of
    mutex-protected updates per pipeline stage.

    Handles are get-or-create by name: {!counter}, {!gauge} and
    {!histogram} return the existing metric when the name is already
    registered (a name registered as one kind stays that kind —
    re-registering it as another raises [Invalid_argument]).  Counters
    update with a single atomic add and never lock; gauges and histograms
    take the registry mutex per update.

    Histograms record float observations in fixed units (their [unit_],
    e.g. seconds): each observation is scaled to an integer micro-unit and
    bucketed by binary magnitude through {!Histogram}, from which
    {!Histogram.percentile} answers p50/p90/p99 at export; exact count,
    sum, min and max are kept alongside, so means are exact and only the
    percentiles are bucket-quantized.

    JSON snapshot shape ({!to_json}):
    {v
    { "counters":   { name: int, ... },
      "gauges":     { name: float, ... },
      "histograms": { name: { "unit": string, "count": int,
                              "sum": float, "min": float, "max": float,
                              "mean": float, "p50": float, "p90": float,
                              "p99": float }, ... } }
    v}
    Keys appear in name order, so snapshots are stable across runs and
    domain schedules. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter [name] (initially 0). *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) atomically. *)

val counter_value : counter -> int

val gauge : string -> gauge
(** Get or create the gauge [name] (initially 0.). *)

val set_gauge : gauge -> float -> unit

val histogram : ?unit_:string -> string -> histogram
(** Get or create the histogram [name].  [unit_] (default ["seconds"])
    documents what one observation measures; it is stored on first
    creation and echoed in the JSON snapshot. *)

val observe : histogram -> float -> unit
(** Record one observation.  Negative observations clamp to 0. *)

val percentile : histogram -> float -> float
(** Bucket-interpolated percentile in the histogram's own unit
    (see {!Histogram.percentile}); [0.] when empty. *)

val find_counter : string -> int option
(** The current value of a counter registered under [name], if any
    (for tests and the validate tool; does not create). *)

val to_json : unit -> Json.t
(** Snapshot every registered metric (see the schema above). *)

val reset : unit -> unit
(** Zero every registered metric; registration (names, kinds, units)
    survives.  Tests only — live counters keep whole-process totals. *)
