(** Deterministic fork-join parallelism over OCaml 5 domains.

    The reproduction pipeline replays the same four workload traces through
    dozens of cache configurations; the per-workload work is embarrassingly
    parallel.  {!map_array} fans an indexed map out across worker domains
    and writes each result into its own slot, so the output is bit-identical
    to the sequential [Array.mapi] regardless of the domain count or
    scheduling order — parallelism never changes results, only wall-clock.

    The worker function must be domain-safe: it may freely read shared
    immutable data (graphs, traces, layouts) but must not touch shared
    mutable state.  Everything the simulator mutates ({!System.t} contents,
    counters, walker state) is created per call, so trace capture and cache
    replay both qualify. *)

val default_jobs : unit -> int
(** Worker-domain count used when a call does not pass [?jobs]: the last
    {!set_jobs} value if any, else the [ICACHE_JOBS] environment variable,
    else [Domain.recommended_domain_count ()].  Always at least 1. *)

val set_jobs : int -> unit
(** Override the process-wide default (e.g. from a [--jobs] flag).  Values
    below 1 are clamped to 1. *)

val map_array : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f arr] is [Array.mapi f arr] computed by up to [jobs]
    domains ([default_jobs ()] when omitted; never more than
    [Array.length arr]).  With one job (or on arrays of length <= 1) it runs
    inline without spawning.  Indices are distributed round-robin, each slot
    is written by exactly one domain, and all domains are joined before
    returning.  If any application of [f] raises, the first exception (in
    domain order) is re-raised after every domain has been joined.

    Observability: every fork-out bumps the [parallel.fanouts] and
    [parallel.domains_used] counters and reports each worker's busy
    wall-clock into the [parallel.domain_busy_seconds] histogram (all in
    {!Metrics_registry}), and labels worker [d]'s {!Trace_log} events with
    track [d + 1] so spans recorded inside [f] land on one timeline track
    per worker slot.  The inline path (one job or a short array) records
    none of these — the counters measure actual fan-out. *)
