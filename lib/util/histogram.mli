(** Bucketed counters used for every "distribution" figure in the paper
    (arc probabilities, loop iteration counts, reuse distances, per-address
    miss maps). *)

type t

val linear : lo:int -> hi:int -> bucket:int -> t
(** [linear ~lo ~hi ~bucket] covers [\[lo, hi)] with buckets of width
    [bucket]; samples outside are clamped into the first/last bucket.
    @raise Invalid_argument if the range is empty or [bucket <= 0]. *)

val log2 : max_exp:int -> t
(** [log2 ~max_exp] buckets by binary magnitude: bucket [i] holds samples
    [v] with [2^i <= v+1 < 2^(i+1)] for [i < max_exp]; larger samples fall
    in the last bucket.  Bucket 0 therefore holds [v = 0]. *)

val explicit : int array -> t
(** [explicit edges] uses buckets [(-inf, e0), [e0, e1), ... [e_last, inf)].
    [edges] must be strictly increasing.  There are [length edges + 1]
    buckets. *)

val add : t -> int -> unit
(** Record one sample. *)

val add_many : t -> int -> int -> unit
(** [add_many h v n] records [v] with multiplicity [n]. *)

val bucket_count : t -> int
val count : t -> int -> int
(** [count h i] is the number of samples in bucket [i]. *)

val total : t -> int

val fraction : t -> int -> float
(** Bucket count over total; 0. when empty. *)

val bucket_label : t -> int -> string
(** Human-readable range label for bucket [i]. *)

val to_list : t -> (string * int) list
(** All (label, count) pairs in bucket order. *)

val cumulative_fraction_below : t -> int -> float
(** Fraction of samples in buckets [0 .. i] inclusive. *)

val percentile : t -> float -> float
(** [percentile h p] (with [p] clamped into [\[0,1\]]) estimates the value
    at rank [p * total] by walking the cumulative counts and interpolating
    linearly inside the bucket containing the rank; open-ended buckets
    (below the first explicit edge, at or above the last, the log2
    overflow bucket) answer with their finite boundary.  [0.] on an empty
    histogram.  Exact for single-bucket distributions; otherwise accurate
    to the bucket width. *)

val merge : t -> t -> unit
(** [merge dst src] adds [src]'s counts into [dst].
    @raise Invalid_argument if the bucketings differ. *)

val copy_empty : t -> t
(** Same bucketing, zero counts. *)
