let with_file path f =
  if String.equal path "-" then begin
    let r = f stdout in
    flush stdout;
    r
  end
  else
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let r = f oc in
        (* Close eagerly so flush errors surface as exceptions instead of
           being swallowed by the noerr cleanup. *)
        close_out oc;
        r)
