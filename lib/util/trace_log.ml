type event = {
  seq : int;
  name : string;
  begin_ : bool;
  ts : float;
  track : int;
  args : (string * Json.t) list;
}

(* Grow-on-demand event buffer owned by exactly one domain.  The owning
   domain appends without synchronization; merging only happens after the
   owner has been joined (or from the owner itself), so plain mutation is
   safe.  Buffers of dead domains stay registered: their events are part
   of the run's history. *)
type buffer = { mutable items : event array; mutable len : int }

let enabled_flag = Atomic.make false
let seq_counter = Atomic.make 0
let epoch = Unix.gettimeofday ()

let registry_lock = Mutex.create ()
let registry : buffer list ref = ref []

let dummy_event = { seq = 0; name = ""; begin_ = true; ts = 0.0; track = 0; args = [] }

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { items = Array.make 256 dummy_event; len = 0 } in
      Mutex.protect registry_lock (fun () -> registry := b :: !registry);
      b)

let track_key = Domain.DLS.new_key (fun () -> 0)

let set_track t = Domain.DLS.set track_key t

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let record ~begin_ ~name ~args =
  let b = Domain.DLS.get buffer_key in
  if b.len = Array.length b.items then begin
    let bigger = Array.make (2 * b.len) dummy_event in
    Array.blit b.items 0 bigger 0 b.len;
    b.items <- bigger
  end;
  b.items.(b.len) <-
    {
      seq = Atomic.fetch_and_add seq_counter 1;
      name;
      begin_;
      ts = (Unix.gettimeofday () -. epoch) *. 1e6;
      track = Domain.DLS.get track_key;
      args;
    };
  b.len <- b.len + 1

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    record ~begin_:true ~name ~args;
    Fun.protect ~finally:(fun () -> record ~begin_:false ~name ~args:[]) f
  end

let events () =
  let buffers = Mutex.protect registry_lock (fun () -> !registry) in
  let all =
    List.concat_map
      (fun b -> List.init b.len (fun i -> b.items.(i)))
      buffers
  in
  List.sort (fun a b -> compare a.seq b.seq) all

let span_count () =
  List.fold_left (fun n e -> if e.begin_ then n else n + 1) 0 (events ())

let to_chrome ?(extra = []) () =
  let event_json e =
    Json.Obj
      ([
         ("name", Json.String e.name);
         ("ph", Json.String (if e.begin_ then "B" else "E"));
         ("ts", Json.Float e.ts);
         ("pid", Json.Int 1);
         ("tid", Json.Int e.track);
       ]
      @ if e.args = [] then [] else [ ("args", Json.Obj e.args) ])
  in
  Json.Obj
    ([
       ("traceEvents", Json.List (List.map event_json (events ())));
       ("displayTimeUnit", Json.String "ms");
     ]
    @ extra)

let to_folded () =
  (* Replay each track's begin/end stream against a stack; on every end,
     attribute the span's duration to its full stack.  Events of one track
     are in program order because seq order refines per-domain order and
     successive domains sharing a track never overlap in time. *)
  let totals : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of track =
    match Hashtbl.find_opt stacks track with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks track s;
        s
  in
  List.iter
    (fun e ->
      let stack = stack_of e.track in
      if e.begin_ then stack := (e.name, e.ts) :: !stack
      else
        match !stack with
        | (name, t0) :: rest when name = e.name ->
            stack := rest;
            let frames = List.rev_map fst ((name, t0) :: rest) in
            let key = String.concat ";" frames in
            let dur = e.ts -. t0 in
            Hashtbl.replace totals key
              ((match Hashtbl.find_opt totals key with Some d -> d | None -> 0.0)
              +. dur)
        | _ -> () (* unmatched end: drop rather than corrupt the stack *))
    (events ());
  let lines =
    Hashtbl.fold (fun k d acc -> Printf.sprintf "%s %.0f" k d :: acc) totals []
  in
  String.concat "\n" (List.sort compare lines) ^ if lines = [] then "" else "\n"

let reset () =
  Mutex.protect registry_lock (fun () ->
      List.iter (fun b -> b.len <- 0) !registry)
