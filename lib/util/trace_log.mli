(** Structured span tracing for the reproduction pipeline.

    A process-global, domain-safe recorder of {e where} a run's wall-clock
    time went, at span granularity: {!with_span} brackets a region of code
    with begin/end events carrying a name, optional arguments, a timestamp
    and the recording domain's track.  Events land in per-domain buffers
    (one unsynchronized buffer per domain, created lazily through domain-
    local storage and registered once under a mutex), so recording a span
    never takes a lock — the only synchronized operation per event is one
    atomic fetch-and-add for the global sequence number that orders the
    merged stream.

    Tracing is {e off} by default and costs a single branch per
    {!with_span} when disabled; simulation results are unaffected either
    way because spans only observe.  Buffers are merged at export time
    ({!events}, {!to_chrome}, {!to_folded}), which must happen after all
    worker domains have been joined — {!Parallel.map_array} joins before
    returning, so any point between pipeline stages qualifies.

    Tracks: the main domain records on track 0; {!Parallel.map_array}
    labels each worker domain with its slot index + 1 via {!set_track}, so
    a run under [ICACHE_JOBS=4] shows tracks 0-4 and successive fork-join
    phases reuse the same tracks instead of spraying one per spawned
    domain.

    Exports: {!to_chrome} emits the Chrome trace-event JSON format
    (["traceEvents"] with [ph:"B"/"E"] pairs, microsecond timestamps,
    one [tid] per track) loadable in Perfetto or [chrome://tracing];
    {!to_folded} emits folded flamegraph text ([stack;frames count]). *)

type event = {
  seq : int;  (** global order; within a track this is program order *)
  name : string;
  begin_ : bool;  (** [true] for a span begin, [false] for its end *)
  ts : float;  (** microseconds since process start *)
  track : int;  (** 0 = main domain, 1.. = parallel worker slots *)
  args : (string * Json.t) list;  (** begin events only; ends carry [] *)
}

val set_enabled : bool -> unit
(** Turn recording on or off (off at start-up).  Disabling does not clear
    already-recorded events. *)

val enabled : unit -> bool

val with_span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span ?args name f] runs [f ()], bracketing it with a begin/end
    event pair on the calling domain's track when tracing is enabled (the
    end event is recorded even when [f] raises).  When disabled this is
    [f ()] plus one branch. *)

val set_track : int -> unit
(** Label the calling domain's events with this track id (domain-local;
    worker domains are labelled by {!Parallel.map_array}, everything else
    records on track 0). *)

val events : unit -> event list
(** All recorded events merged across domains, in [seq] order.  Call only
    while no other domain is recording (i.e. between fork-join phases). *)

val span_count : unit -> int
(** Number of {e completed} spans recorded so far (begin/end pairs). *)

val to_chrome : ?extra:(string * Json.t) list -> unit -> Json.t
(** The Chrome trace-event document: [{"traceEvents": [...],
    "displayTimeUnit": "ms", ...extra}].  [extra] fields (for example a
    {!Metrics_registry} snapshot) are appended to the top-level object;
    Chrome and Perfetto ignore keys they do not know. *)

val to_folded : unit -> string
(** Folded flamegraph text: one ["frame;frame;... microseconds"] line per
    distinct stack, aggregated over all tracks and sorted by stack name.
    Feed to [flamegraph.pl] or speedscope. *)

val reset : unit -> unit
(** Drop all recorded events (the enabled flag is left as-is).  Call only
    between fork-join phases, like {!events}. *)
