type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch with header";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let title t = t.title

let columns t = List.combine t.headers t.aligns

let row_list t = List.rev t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row ->
        match row with
        | Separator -> acc
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) acc cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | None -> ()
  | Some title -> Buffer.add_string buf (title ^ "\n"));
  rule ();
  emit_cells t.headers;
  rule ();
  List.iter (function Separator -> rule () | Cells cells -> emit_cells cells) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals x

let cell_i n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
