type shape =
  | Linear of { lo : int; hi : int; bucket : int }
  | Log2 of { max_exp : int }
  | Explicit of int array

type t = { shape : shape; counts : int array; mutable total : int }

let make shape n = { shape; counts = Array.make n 0; total = 0 }

let linear ~lo ~hi ~bucket =
  if hi <= lo then invalid_arg "Histogram.linear: empty range";
  if bucket <= 0 then invalid_arg "Histogram.linear: bucket must be positive";
  let n = ((hi - lo) + bucket - 1) / bucket in
  make (Linear { lo; hi; bucket }) n

let log2 ~max_exp =
  if max_exp <= 0 then invalid_arg "Histogram.log2: max_exp must be positive";
  make (Log2 { max_exp }) (max_exp + 1)

let explicit edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Histogram.explicit: no edges";
  for i = 1 to n - 1 do
    if edges.(i) <= edges.(i - 1) then
      invalid_arg "Histogram.explicit: edges must be strictly increasing"
  done;
  make (Explicit (Array.copy edges)) (n + 1)

let bucket_of t v =
  match t.shape with
  | Linear { lo; hi; bucket } ->
      let v = if v < lo then lo else if v >= hi then hi - 1 else v in
      (v - lo) / bucket
  | Log2 { max_exp } ->
      let v = if v < 0 then 0 else v in
      let rec magnitude x i = if x <= 0 then i else magnitude (x lsr 1) (i + 1) in
      let m = magnitude (v + 1) (-1) in
      if m > max_exp then max_exp else m
  | Explicit edges ->
      let n = Array.length edges in
      (* First bucket i such that v < edges.(i); fall through to bucket n. *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if v < edges.(mid) then search lo mid else search (mid + 1) hi
      in
      search 0 n

let add_many t v n =
  let i = bucket_of t v in
  t.counts.(i) <- t.counts.(i) + n;
  t.total <- t.total + n

let add t v = add_many t v 1

let bucket_count t = Array.length t.counts

let count t i = t.counts.(i)

let total t = t.total

let fraction t i = if t.total = 0 then 0.0 else float_of_int t.counts.(i) /. float_of_int t.total

let bucket_label t i =
  match t.shape with
  | Linear { lo; hi; bucket } ->
      let b_lo = lo + (i * bucket) in
      let b_hi = min hi (b_lo + bucket) in
      Printf.sprintf "[%d,%d)" b_lo b_hi
  | Log2 { max_exp } ->
      if i = 0 then "0"
      else if i >= max_exp then Printf.sprintf ">=%d" ((1 lsl max_exp) - 1)
      else Printf.sprintf "[%d,%d]" ((1 lsl i) - 1) ((1 lsl (i + 1)) - 2)
  | Explicit edges ->
      let n = Array.length edges in
      if i = 0 then Printf.sprintf "<%d" edges.(0)
      else if i = n then Printf.sprintf ">=%d" edges.(n - 1)
      else Printf.sprintf "[%d,%d)" edges.(i - 1) edges.(i)

let to_list t =
  List.init (bucket_count t) (fun i -> (bucket_label t i, t.counts.(i)))

let cumulative_fraction_below t i =
  if t.total = 0 then 0.0
  else begin
    let acc = ref 0 in
    for j = 0 to min i (bucket_count t - 1) do
      acc := !acc + t.counts.(j)
    done;
    float_of_int !acc /. float_of_int t.total
  end

(* Inclusive-lo / exclusive-hi numeric bounds of bucket [i], used for the
   rank interpolation in [percentile].  Open-ended buckets collapse to
   their finite edge so a percentile never invents values outside the
   recorded range's known bounds. *)
let bucket_bounds t i =
  match t.shape with
  | Linear { lo; hi; bucket } ->
      let b_lo = lo + (i * bucket) in
      (float_of_int b_lo, float_of_int (min hi (b_lo + bucket)))
  | Log2 { max_exp } ->
      if i = 0 then (0.0, 1.0)
      else if i >= max_exp then
        let lo = float_of_int ((1 lsl max_exp) - 1) in
        (lo, lo)
      else
        (float_of_int ((1 lsl i) - 1), float_of_int ((1 lsl (i + 1)) - 1))
  | Explicit edges ->
      let n = Array.length edges in
      if i = 0 then (float_of_int edges.(0), float_of_int edges.(0))
      else if i >= n then (float_of_int edges.(n - 1), float_of_int edges.(n - 1))
      else (float_of_int edges.(i - 1), float_of_int edges.(i))

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank = p *. float_of_int t.total in
    let i = ref 0 in
    let cum = ref 0 in
    let n = bucket_count t in
    while !i < n - 1 && float_of_int (!cum + t.counts.(!i)) < rank do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    (* Skip trailing empty buckets the loop may have landed on. *)
    while !i > 0 && t.counts.(!i) = 0 do decr i done;
    (* Rank 0 never advances the walk; if bucket 0 is empty, the answer
       is the first occupied bucket, not the histogram's lower bound. *)
    while !i < n - 1 && t.counts.(!i) = 0 do incr i done;
    let lo, hi = bucket_bounds t !i in
    let c = t.counts.(!i) in
    if c = 0 then lo
    else
      let within = (rank -. float_of_int !cum) /. float_of_int c in
      let within = if within < 0.0 then 0.0 else if within > 1.0 then 1.0 else within in
      lo +. (within *. (hi -. lo))
  end

let same_shape a b =
  match (a.shape, b.shape) with
  | Linear x, Linear y -> x.lo = y.lo && x.hi = y.hi && x.bucket = y.bucket
  | Log2 x, Log2 y -> x.max_exp = y.max_exp
  | Explicit x, Explicit y -> x = y
  | (Linear _ | Log2 _ | Explicit _), _ -> false

let merge dst src =
  if not (same_shape dst src) then invalid_arg "Histogram.merge: shape mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total

let copy_empty t = make t.shape (bucket_count t)
