let clamp n = if n < 1 then 1 else n

let override = ref None

let env_jobs () =
  match Sys.getenv_opt "ICACHE_JOBS" with
  | Some s -> Option.map clamp (int_of_string_opt (String.trim s))
  | None -> None

let default_jobs () =
  match !override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> clamp (Domain.recommended_domain_count ()))

let set_jobs n = override := Some (clamp n)

(* Observability: each fork-join phase counts the domains it spawned and
   reports every worker's busy wall-clock through the metrics registry, so
   domain imbalance (one slot grinding while the rest idle at the join) is
   visible in the metrics snapshot without a profiler attached. *)
let fanouts = Metrics_registry.counter "parallel.fanouts"
let domains_used = Metrics_registry.counter "parallel.domains_used"

let busy_hist =
  Metrics_registry.histogram ~unit_:"seconds" "parallel.domain_busy_seconds"

let map_array ?jobs f arr =
  let n = Array.length arr in
  let j =
    min (match jobs with Some j -> clamp j | None -> default_jobs ()) n
  in
  if j <= 1 || n <= 1 then Array.mapi f arr
  else begin
    let results = Array.make n None in
    Metrics_registry.incr fanouts;
    Metrics_registry.incr ~by:j domains_used;
    (* Round-robin: domain [d] owns indices d, d+j, d+2j, ...; no slot is
       shared, so plain writes need no synchronization before the join. *)
    let worker d () =
      Trace_log.set_track (d + 1);
      let t0 = Unix.gettimeofday () in
      let i = ref d in
      let first_error = ref None in
      while !i < n do
        (try results.(!i) <- Some (f !i arr.(!i))
         with e -> if !first_error = None then first_error := Some e);
        i := !i + j
      done;
      Metrics_registry.observe busy_hist (Unix.gettimeofday () -. t0);
      !first_error
    in
    let domains = List.init j (fun d -> Domain.spawn (worker d)) in
    let errors = List.map Domain.join domains in
    List.iter (function Some e -> raise e | None -> ()) errors;
    Array.map Option.get results
  end
