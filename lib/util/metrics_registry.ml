type counter = { value : int Atomic.t }

type gauge = { mutable g_value : float }

(* Observations are scaled to integer micro-units and bucketed by binary
   magnitude; 2^52 micro-units covers ~4.5e9 whole units, far beyond any
   duration or rate the pipeline records.  Exact sum/min/max ride along so
   only percentiles are bucket-quantized. *)
let micro = 1e6
let hist_max_exp = 52

type histogram = {
  unit_ : string;
  mutable buckets : Histogram.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type metric = Counter of counter | Gauge of gauge | Hist of histogram

let lock = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 32

let register name make kind_label =
  let m =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some m -> m
        | None ->
            let m = make () in
            Hashtbl.add table name m;
            m)
  in
  match (m, kind_label) with
  | Counter _, `C | Gauge _, `G | Hist _, `H -> m
  | _ ->
      invalid_arg
        (Printf.sprintf "Metrics_registry: %S already registered as another kind" name)

let counter name =
  match register name (fun () -> Counter { value = Atomic.make 0 }) `C with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)

let counter_value c = Atomic.get c.value

let gauge name =
  match register name (fun () -> Gauge { g_value = 0.0 }) `G with
  | Gauge g -> g
  | _ -> assert false

let set_gauge g v = Mutex.protect lock (fun () -> g.g_value <- v)

let histogram ?(unit_ = "seconds") name =
  match
    register name
      (fun () ->
        Hist
          {
            unit_;
            buckets = Histogram.log2 ~max_exp:hist_max_exp;
            count = 0;
            sum = 0.0;
            min_v = infinity;
            max_v = neg_infinity;
          })
      `H
  with
  | Hist h -> h
  | _ -> assert false

let observe h v =
  let v = if v < 0.0 then 0.0 else v in
  Mutex.protect lock (fun () ->
      Histogram.add h.buckets (int_of_float (v *. micro));
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v)

let percentile h p =
  Mutex.protect lock (fun () -> Histogram.percentile h.buckets p /. micro)

let find_counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Counter c) -> Some (Atomic.get c.value)
      | _ -> None)

let to_json () =
  let snapshot =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [])
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) snapshot in
  let pick f = List.filter_map f sorted in
  let counters =
    pick (function n, Counter c -> Some (n, Json.Int (Atomic.get c.value)) | _ -> None)
  in
  let gauges =
    pick (function n, Gauge g -> Some (n, Json.Float g.g_value) | _ -> None)
  in
  let hists =
    pick (function
      | n, Hist h ->
          let empty = h.count = 0 in
          let pct p = Histogram.percentile h.buckets p /. micro in
          Some
            ( n,
              Json.Obj
                [
                  ("unit", Json.String h.unit_);
                  ("count", Json.Int h.count);
                  ("sum", Json.Float h.sum);
                  ("min", Json.Float (if empty then 0.0 else h.min_v));
                  ("max", Json.Float (if empty then 0.0 else h.max_v));
                  ( "mean",
                    Json.Float (if empty then 0.0 else h.sum /. float_of_int h.count) );
                  ("p50", Json.Float (pct 0.5));
                  ("p90", Json.Float (pct 0.9));
                  ("p99", Json.Float (pct 0.99));
                ] )
      | _ -> None)
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists) ]

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.value 0
          | Gauge g -> g.g_value <- 0.0
          | Hist h ->
              h.buckets <- Histogram.copy_empty h.buckets;
              h.count <- 0;
              h.sum <- 0.0;
              h.min_v <- infinity;
              h.max_v <- neg_infinity)
        table)
