type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let float_repr f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    (* Shortest of %.15g/%.16g/%.17g that survives a parse. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(minify = false) v =
  let buf = Buffer.create 1024 in
  let newline indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let sep () = if minify then Buffer.add_char buf ':' else Buffer.add_string buf ": " in
  let rec emit indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            newline (indent + 2);
            emit (indent + 2) item)
          items;
        newline indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            newline (indent + 2);
            escape_string buf k;
            sep ();
            emit (indent + 2) item)
          fields;
        newline indent;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> fail "bad \\u escape"
              in
              (* Encode the code point as UTF-8 (code points we emit are
                 always < 0x20, i.e. single bytes). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "unknown escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digit () =
      match peek () with
      | Some ('0' .. '9') -> advance (); true
      | _ -> false
    in
    while digit () do () done;
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      while digit () do () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while digit () do () done
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if tok = "" || tok = "-" then fail "expected number";
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_str = function String s -> Some s | _ -> None
