(** Minimal JSON values: enough for the structured experiment reports and
    the run manifest, with no external dependency.

    The emitter/parser pair is designed to round-trip: for every value [v]
    built from finite floats, [of_string (to_string v) = Ok v]
    (test/test_report.ml checks this with QCheck).  Strings are treated as
    byte sequences: bytes below [0x20] are escaped as [\u00XX], everything
    else is passed through verbatim, so arbitrary OCaml strings survive a
    round-trip even when they are not valid UTF-8.  Non-finite floats have
    no JSON spelling and are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize.  Default is pretty-printed with two-space indentation;
    [~minify:true] emits a single line with no spaces. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Numbers
    without a fraction or exponent become [Int]; others become [Float].
    The error string carries a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] on anything else. *)

val to_float : t -> float option
(** [Float f] or [Int i] (as a float); [None] otherwise. *)

val to_int : t -> int option

val to_list : t -> t list option

val to_str : t -> string option

val float_repr : float -> string
(** The shortest decimal spelling that parses back to exactly the same
    float; always contains ['.'], ['e'] or ["inf"/"nan"], so emitted
    floats never collide with ints.  (Exposed for the CSV renderer.) *)
