(* The replacement policy is resolved once at [create] into this dispatch
   so the per-access hot path never re-examines [Config.policy].  With one
   way there is nothing to age, so every deterministic policy collapses to
   [Direct]: a single tag compare, no way search, no blit. *)
type kernel =
  | Direct
  | Lru_assoc
  | Fifo_assoc
  | Random_assoc of Prng.t

type t = {
  config : Config.t;
  kernel : kernel;
  sets : int;
  assoc : int;
  line_shift : int;
  tags : int array;
      (** [sets * assoc], -1 = invalid.  Under LRU slot 0 is MRU and the
          last slot the victim; under FIFO slot 0 is the newest insertion
          (hits do not reorder); under Random insertion also fills slot 0
          but the victim way is drawn uniformly. *)
  counters : Counters.t;
  mutable evicted_by_os : Bytes.t;
      (** Per line: '\000' = never evicted, '\001' = last evictor was OS,
          '\002' = last evictor was the application.  Indexed by line
          number and grown by doubling — line numbers are bounded by the
          layout extent over the line size, so this stays a few tens of
          KB while replacing two hashtable probes on every miss. *)
  mutable attr : int array array;  (** per image: per block miss counts *)
  mutable attr_self : int array array;
  mutable attr_cross : int array array;
  mutable attribution : bool;
}

let log2 n =
  let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
  go n 0

let create config =
  let sets = Config.sets config in
  {
    config;
    kernel =
      (match config.Config.policy with
      | Config.Random seed -> Random_assoc (Prng.of_int seed)
      | Config.Lru when config.Config.assoc = 1 -> Direct
      | Config.Fifo when config.Config.assoc = 1 -> Direct
      | Config.Lru -> Lru_assoc
      | Config.Fifo -> Fifo_assoc);
    sets;
    assoc = config.Config.assoc;
    line_shift = log2 config.Config.line;
    tags = Array.make (sets * config.Config.assoc) (-1);
    counters = Counters.create ();
    evicted_by_os = Bytes.make 4096 '\000';
    attr = [||];
    attr_self = [||];
    attr_cross = [||];
    attribution = false;
  }

let config t = t.config

let counters t = t.counters

let enable_block_attribution t ~images ~blocks =
  if images <> Array.length blocks then
    invalid_arg "Sim.enable_block_attribution: images/blocks mismatch";
  t.attr <- Array.map (fun n -> Array.make n 0) blocks;
  t.attr_self <- Array.map (fun n -> Array.make n 0) blocks;
  t.attr_cross <- Array.map (fun n -> Array.make n 0) blocks;
  t.attribution <- true

let block_misses t ~image =
  if not t.attribution then
    invalid_arg "Sim.block_misses: attribution not enabled";
  t.attr.(image)

let block_misses_self t ~image =
  if not t.attribution then
    invalid_arg "Sim.block_misses_self: attribution not enabled";
  t.attr_self.(image)

let block_misses_cross t ~image =
  if not t.attribution then
    invalid_arg "Sim.block_misses_cross: attribution not enabled";
  t.attr_cross.(image)

let record_eviction t line os =
  let n = Bytes.length t.evicted_by_os in
  if line >= n then begin
    let rec grow n = if line < n then n else grow (2 * n) in
    let b = Bytes.make (grow (2 * n)) '\000' in
    Bytes.blit t.evicted_by_os 0 b 0 n;
    t.evicted_by_os <- b
  end;
  Bytes.unsafe_set t.evicted_by_os line (if os then '\001' else '\002')

(* Returns true on hit.  On miss, installs the line as MRU and records the
   victim's evictor domain. *)
let access_line t ~os line =
  match t.kernel with
  | Direct ->
      (* One way: the set holds exactly one line, so hit/miss is a single
         tag compare and replacement is an unconditional store. *)
      let set = line land (t.sets - 1) in
      let tags = t.tags in
      let cur = Array.unsafe_get tags set in
      if cur = line then true
      else begin
        if cur >= 0 then record_eviction t cur os;
        Array.unsafe_set tags set line;
        false
      end
  | (Lru_assoc | Fifo_assoc | Random_assoc _) as kernel ->
      let set = line land (t.sets - 1) in
      let base = set * t.assoc in
      let assoc = t.assoc in
      let tags = t.tags in
      (* Find the way holding [line]. *)
      let rec find i = if i = assoc then -1 else if tags.(base + i) = line then i else find (i + 1) in
      let way = find 0 in
      if way >= 0 then begin
        (* LRU refreshes on hit; FIFO and Random do not. *)
        (match kernel with
        | Lru_assoc ->
            if way > 0 then begin
              let v = tags.(base + way) in
              Array.blit tags base tags (base + 1) way;
              tags.(base) <- v
            end
        | Direct | Fifo_assoc | Random_assoc _ -> ());
        true
      end
      else begin
        (* Pick the victim way per policy, then insert at slot 0 so age order
           is maintained for LRU/FIFO. *)
        let victim_way =
          match kernel with
          | Random_assoc g ->
              (* Prefer an invalid way; otherwise uniform. *)
              let rec invalid i =
                if i = assoc then None
                else if tags.(base + i) < 0 then Some i
                else invalid (i + 1)
              in
              (match invalid 0 with Some i -> i | None -> Prng.int g assoc)
          | Direct | Lru_assoc | Fifo_assoc -> assoc - 1
        in
        let victim = tags.(base + victim_way) in
        if victim >= 0 then record_eviction t victim os;
        Array.blit tags base tags (base + 1) victim_way;
        tags.(base) <- line;
        false
      end

(* Returns: 0 = cold, 1 = self-interference, 2 = cross-interference. *)
let classify t ~os line =
  let c = t.counters in
  let tag =
    if line < Bytes.length t.evicted_by_os then
      Bytes.unsafe_get t.evicted_by_os line
    else '\000'
  in
  match tag with
  | '\000' ->
      if os then c.Counters.os_cold <- c.Counters.os_cold + 1
      else c.Counters.app_cold <- c.Counters.app_cold + 1;
      0
  | '\001' ->
      (* Last evictor was the OS. *)
      if os then begin
        c.Counters.os_self <- c.Counters.os_self + 1;
        1
      end
      else begin
        c.Counters.app_cross <- c.Counters.app_cross + 1;
        2
      end
  | _ ->
      (* Last evictor was the application. *)
      if os then begin
        c.Counters.os_cross <- c.Counters.os_cross + 1;
        2
      end
      else begin
        c.Counters.app_self <- c.Counters.app_self + 1;
        1
      end

let access t ~os ~image ~block ~addr ~bytes =
  let words = if bytes <= 4 then 1 else bytes lsr 2 in
  let c = t.counters in
  if os then c.Counters.refs_os <- c.Counters.refs_os + words
  else c.Counters.refs_app <- c.Counters.refs_app + words;
  let first = addr lsr t.line_shift in
  let last = (addr + bytes - 1) lsr t.line_shift in
  for line = first to last do
    if not (access_line t ~os line) then begin
      let kind = classify t ~os line in
      if t.attribution then begin
        let a = t.attr.(image) in
        a.(block) <- a.(block) + 1;
        if kind = 1 then begin
          let a = t.attr_self.(image) in
          a.(block) <- a.(block) + 1
        end
        else if kind = 2 then begin
          let a = t.attr_cross.(image) in
          a.(block) <- a.(block) + 1
        end
      end
    end
  done

let probe t ~addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.assoc in
  let rec find i =
    if i = t.assoc then false
    else if t.tags.(base + i) = line then true
    else find (i + 1)
  in
  find 0

let reset_counters t =
  Counters.reset t.counters;
  if t.attribution then begin
    Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.attr;
    Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.attr_self;
    Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.attr_cross
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Bytes.fill t.evicted_by_os 0 (Bytes.length t.evicted_by_os) '\000';
  reset_counters t
