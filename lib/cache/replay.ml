type code_map = { addr : int array array; bytes : int array array }

(* The systems fan-out is an array so the per-event loop neither allocates
   nor chases list links: a whole configuration sweep rides one trace
   decode (see Runner.simulate_batch). *)
let feed map systems ~image ~block =
  let addr = map.addr.(image).(block) in
  let bytes = map.bytes.(image).(block) in
  let os = image = 0 in
  for k = 0 to Array.length systems - 1 do
    System.access (Array.unsafe_get systems k) ~os ~image ~block ~addr ~bytes
  done

let run ~trace ~map ~systems = Trace.iter_exec trace (feed map systems)

let run_range ~trace ~map ~systems ~warmup =
  let i = ref 0 in
  Trace.iter_exec trace (fun ~image ~block ->
      feed map systems ~image ~block;
      incr i;
      if !i = warmup then
        (* Keep cache contents, drop the counters gathered so far. *)
        Array.iter System.reset_counters systems)
