(** Replaying a captured block-level trace through one or more cache
    systems under a given code placement.

    Feeding several systems through one call replays the trace {e once}:
    every decoded event fans out to each system in array order, so a
    whole sweep of cache configurations shares a single trace decode and
    code-map resolution.  Systems are mutually independent, so the
    result for each is bit-identical to a solo replay. *)

type code_map = {
  addr : int array array;  (** Per image: block id -> byte address. *)
  bytes : int array array;  (** Per image: block id -> block size. *)
}

val run : trace:Trace.t -> map:code_map -> systems:System.t array -> unit
(** Feed every execution event to every system.  Systems accumulate
    counters; call {!System.reset} first to reuse one. *)

val run_range :
  trace:Trace.t -> map:code_map -> systems:System.t array ->
  warmup:int -> unit
(** Like {!run} but resets all counters after the first [warmup]
    {e execution} events (invocation markers do not advance the warm-up
    counter — compute thresholds from {!Trace.exec_count}), so reported
    numbers exclude the initial cold start (the paper's traces are
    mid-execution snapshots with negligible first-time misses). *)
