(* Benchmark harness: regenerates every table and figure of the paper
   (Torrellas, Xia, Daigle - HPCA 1995) on the synthetic kernel, then
   times the pipeline's hot stages with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- all experiments + timing
     dune exec bench/main.exe -- table1 fig12 -- selected experiments
     dune exec bench/main.exe -- --no-timing  -- skip the Bechamel section
     ICACHE_WORDS=4000000 dune exec bench/main.exe -- longer traces
     ICACHE_JOBS=4 dune exec bench/main.exe     -- worker-domain count

   Each experiment line reports wall-clock time and the Sim_cache hit/miss
   delta, so redundant (layout, geometry) re-simulation shows up as hits. *)

let words_from_env () =
  match Sys.getenv_opt "ICACHE_WORDS" with
  | Some s -> ( try int_of_string s with Failure _ -> 2_000_000)
  | None -> 2_000_000

(* Wall clock, not Sys.time: with --jobs > 1 the cpu clock counts every
   domain and would overstate the elapsed time we are trying to shrink. *)
let wall = Unix.gettimeofday

let run_experiments ctx ids =
  let exps =
    match ids with
    | [] -> Experiments.all
    | ids ->
        List.filter_map
          (fun id ->
            match Experiments.find id with
            | e -> Some e
            | exception Not_found ->
                Printf.printf "unknown experiment %S; known: %s\n" id
                  (String.concat ", "
                     (List.map (fun e -> e.Experiments.id) Experiments.all));
                None)
          ids
  in
  let t_suite = wall () in
  List.iter
    (fun (e : Experiments.t) ->
      let h0 = Sim_cache.hits () and m0 = Sim_cache.misses () in
      let l0 = Layout_cache.totals () in
      let t0 = wall () in
      Experiments.run e ctx;
      let l1 = Layout_cache.totals () in
      Printf.printf
        "  [bench] %-12s %6.2fs wall   sim-cache %d hit / %d miss   layout-cache %d hit / %d miss\n%!"
        e.Experiments.id
        (wall () -. t0)
        (Sim_cache.hits () - h0)
        (Sim_cache.misses () - m0)
        (l1.Layout_cache.hits - l0.Layout_cache.hits)
        (l1.Layout_cache.misses - l0.Layout_cache.misses))
    exps;
  let lt = Layout_cache.totals () in
  let layout_lookups = lt.Layout_cache.hits + lt.Layout_cache.misses in
  Printf.printf
    "\n=== %d experiments: %.2fs wall | sim-cache %d hits / %d misses (%.1f%% hit rate) | %d jobs ===\n%!"
    (List.length exps)
    (wall () -. t_suite)
    (Sim_cache.hits ()) (Sim_cache.misses ())
    (100.0 *. Sim_cache.hit_rate ())
    (Parallel.default_jobs ());
  Printf.printf "=== layout stages:%s | %d hits / %d misses (%.1f%% hit rate) ===\n%!"
    (String.concat ""
       (List.map
          (fun (name, (s : Layout_cache.stats)) ->
            Printf.sprintf " %s %.2fs" name s.Layout_cache.seconds)
          (Layout_cache.stage_stats ())))
    lt.Layout_cache.hits lt.Layout_cache.misses
    (if layout_lookups = 0 then 0.0
     else 100.0 *. float_of_int lt.Layout_cache.hits /. float_of_int layout_lookups);
  (* Allocation pressure of the whole run, so a GC regression shows up in
     the transcript as well as the manifest's run.gc object. *)
  let g = Gc.quick_stat () in
  Printf.printf
    "=== gc: %d minor / %d major collections | %.0fM minor words, %.0fM promoted | peak heap %.1fMB ===\n%!"
    g.Gc.minor_collections g.Gc.major_collections
    (g.Gc.minor_words /. 1e6) (g.Gc.promoted_words /. 1e6)
    (float_of_int g.Gc.top_heap_words *. float_of_int (Sys.word_size / 8) /. 1e6);
  (* Machine-readable counterpart of the lines above: per-stage wall
     clock, Sim_cache counters, per-experiment timings and (schema v4)
     the metrics-registry snapshot plus GC statistics. *)
  let manifest_path = "BENCH_repro.json" in
  Out.with_file manifest_path (fun oc ->
      output_string oc (Json.to_string (Manifest.to_json ()));
      output_char oc '\n');
  Printf.printf "run manifest written to %s\n%!" manifest_path;
  (* The span timeline of the same run, viewable in Perfetto and
     summarized by `icache-opt trace-summary`. *)
  let trace_path = "BENCH_trace.json" in
  Out.with_file trace_path (fun oc ->
      output_string oc
        (Json.to_string ~minify:true
           (Trace_log.to_chrome
              ~extra:[ ("metrics", Metrics_registry.to_json ()) ]
              ()));
      output_char oc '\n');
  Printf.printf "span trace written to %s (%d spans)\n%!" trace_path
    (Trace_log.span_count ())

let timing ctx =
  let open Bechamel in
  let model = ctx.Context.model in
  let profile = ctx.Context.avg_os_profile in
  let loops = Program_layout.os_loops model in
  let program = snd ctx.Context.pairs.(0) in
  let workload = fst ctx.Context.pairs.(0) in
  let layouts = Levels.build ctx Levels.OptS in
  let map = Program_layout.code_map layouts.(0) in
  let trace = ctx.Context.traces.(0) in
  let tests =
    [
      Test.make ~name:"kernel-generation"
        (Staged.stage (fun () -> ignore (Generator.generate Spec.small)));
      Test.make ~name:"trace-100k-words"
        (Staged.stage (fun () ->
             ignore
               (Engine.run ~program ~workload ~words:100_000 ~seed:3
                  ~sink:Engine.null_sink)));
      Test.make ~name:"sequence-construction"
        (Staged.stage (fun () ->
             ignore
               (Sequence.build ~graph:model.Model.graph ~profile
                  ~seed_entry:(fun c -> (Model.seed_for model c).Model.entry)
                  ~schedule:Schedule.paper ())));
      Test.make ~name:"opt-s-layout"
        (Staged.stage (fun () ->
             ignore (Opt.os_layout ~model ~profile ~loops (Opt.params ()))));
      Test.make ~name:"chang-hwu-layout"
        (Staged.stage (fun () -> ignore (Chang_hwu.layout model.Model.graph profile)));
      Test.make ~name:"pettis-hansen-layout"
        (Staged.stage (fun () ->
             ignore (Pettis_hansen.layout model.Model.graph profile)));
      Test.make ~name:"inline-transform"
        (Staged.stage (fun () -> ignore (Inline.transform ~model ~profile ())));
      Test.make ~name:"stack-distance-pass"
        (Staged.stage (fun () ->
             ignore (Stack_dist.from_trace ~trace ~map ~os_only:true ())));
      Test.make ~name:"cache-replay-8KB"
        (Staged.stage (fun () ->
             let sys = System.unified (Config.make ~size_kb:8 ()) in
             Replay.run ~trace ~map ~systems:[| sys |]));
    ]
  in
  print_newline ();
  print_endline "=== Bechamel timing (monotonic clock, ns/run) ===";
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ())
          Toolkit.Instance.[ monotonic_clock ]
          test
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      Hashtbl.iter
        (fun name raws ->
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raws in
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %14.0f\n%!" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_timing = List.mem "--no-timing" args in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let words = words_from_env () in
  Printf.printf "Reproduction harness: %d instruction words per workload, %d jobs\n%!"
    words (Parallel.default_jobs ());
  (* Record the span timeline for BENCH_trace.json; spans only observe,
     and the per-span cost is far below Bechamel's noise floor. *)
  Trace_log.set_enabled true;
  let t0 = wall () in
  let ctx = Context.create ~words () in
  Printf.printf "context built in %.1fs (wall)\n%!" (wall () -. t0);
  run_experiments ctx ids;
  if not no_timing then timing ctx
